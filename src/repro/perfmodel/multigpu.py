"""Multi-GPU performance prediction (implementation (v)).

Trials are block-partitioned over homogeneous devices; each device stages
the full ELT tables plus its YET slice and runs the optimised kernel.
The modeled time is the fork-join makespan — the slowest (largest) slice —
matching both the paper's architecture and our simulated engine.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List

from repro.data.presets import WorkloadSpec
from repro.engines.gpu_common import (
    OPTIMIZED_REGISTERS_PER_THREAD,
    OptimizationFlags,
    modeled_activity_profile,
    optimized_barrier_intensity,
    optimized_mlp,
    optimized_shared_bytes_per_block,
    record_optimized_traffic,
)
from repro.gpusim.costmodel import estimate_kernel_seconds
from repro.gpusim.device import DeviceSpec, TESLA_M2090
from repro.gpusim.hierarchy import KernelLaunch
from repro.gpusim.memory import DeviceCounters
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.transfer import TransferModel
from repro.perfmodel.result import PerfPrediction
from repro.plan.staging import (
    STAGING_OVERLAP,
    check_staging,
    overlap_pipeline_seconds,
)
from repro.utils.timer import ACTIVITY_OTHER
from repro.utils.validation import check_positive


def predict_multi_gpu(
    spec: WorkloadSpec,
    n_devices: int = 4,
    device: DeviceSpec = TESLA_M2090,
    threads_per_block: int = 32,
    chunk_events: int = 96,
    flags: OptimizationFlags | None = None,
    staging: str = "serial",
    shared_tables: bool = False,
) -> PerfPrediction:
    """Modeled time of the optimised kernel over ``n_devices`` GPUs.

    Raises ``ValueError`` for infeasible block sizes (shared-memory
    overflow), which is how the Figure 4 sweep's truncation beyond 64
    threads per block is represented.

    ``staging="overlap"`` prices the plan-level transfer schedule
    instead of the paper's stage-then-compute baseline: each device
    streams the next layer's tables while the current layer's kernel
    runs (:func:`repro.plan.staging.overlap_pipeline_seconds`).
    ``shared_tables`` additionally models a portfolio whose layers all
    reference one ELT set, so the broadcast is deduped to a single
    staged table block (``staging="serial"`` restages per layer
    regardless, matching the simulated engine's serial mode).
    """
    check_positive("n_devices", n_devices)
    check_staging(staging)
    flags = flags if flags is not None else OptimizationFlags.all()
    word_bytes = 4 if flags.float32 else 8

    # The largest slice dominates the makespan.
    trials_max = math.ceil(spec.n_trials / n_devices)
    occ_max = trials_max * spec.events_per_trial
    trial_fraction = trials_max / spec.n_trials

    counters = DeviceCounters(device=device)
    for _ in range(spec.n_layers):
        record_optimized_traffic(
            counters,
            n_occ=occ_max,
            n_trials=trials_max,
            n_elts=spec.elts_per_layer,
            word=word_bytes,
            flags=flags,
            chunk_events=chunk_events,
        )
    launch = KernelLaunch(
        n_threads_total=trials_max,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=optimized_shared_bytes_per_block(
            threads_per_block, chunk_events, word_bytes, flags
        ),
        registers_per_thread=OPTIMIZED_REGISTERS_PER_THREAD,
    )
    launch.validate_against(device)
    occupancy = compute_occupancy(device, launch)
    if not occupancy.launchable:
        raise ValueError(
            f"infeasible launch: {threads_per_block} threads/block with "
            f"{launch.shared_bytes_per_block} B shared "
            f"(limited by {occupancy.limiting_resource})"
        )
    cost = estimate_kernel_seconds(
        device,
        launch,
        counters,
        mlp=optimized_mlp(flags, chunk_events),
        barrier_intensity=optimized_barrier_intensity(flags),
    )

    # Per-device staging: full tables + its YET slice in, its YLT out.
    transfers = TransferModel(device=device)
    table_bytes_layer = (
        spec.catalog_size + 1
    ) * word_bytes * spec.elts_per_layer
    table_bytes = table_bytes_layer * spec.n_layers
    n_staged = spec.n_layers
    if staging == STAGING_OVERLAP:
        # Plan-level schedule: the YET slice lands first, then each
        # layer's table broadcast streams behind the previous layer's
        # kernel (per-layer ops, so each broadcast pays its own PCIe
        # latency); shared_tables dedupes to one staged block.
        n_staged = 1 if shared_tables else spec.n_layers
        yet_seconds = transfers.h2d(
            spec.n_occurrences * 4 * trial_fraction, "yet_slice"
        )
        kernel_layer = cost.total / spec.n_layers
        stage: List[float] = []
        compute: List[float] = []
        for i in range(spec.n_layers):
            stage.append(
                transfers.h2d(table_bytes_layer, f"elt_tables_layer{i}")
                if i < n_staged
                else 0.0
            )
            compute.append(
                kernel_layer
                + transfers.d2h(
                    spec.n_trials * 8 * trial_fraction, f"ylt_layer{i}"
                )
            )
        total = yet_seconds + overlap_pipeline_seconds(stage, compute)
    else:
        transfers.h2d(table_bytes, "elt_tables")
        transfers.h2d(spec.n_occurrences * 4 * trial_fraction, "yet_slice")
        transfers.d2h(
            spec.n_trials * 8 * trial_fraction * spec.n_layers, "ylt_slice"
        )
        total = cost.total + transfers.total_seconds
    profile = modeled_activity_profile(
        counters, cost.bandwidth_s, cost.compute_s
    )
    leftover = total - profile.total
    if leftover > 0:
        profile.charge(ACTIVITY_OTHER, leftover)

    meta: Dict[str, Any] = {
        "device": device.name,
        "n_devices": n_devices,
        "threads_per_block": threads_per_block,
        "chunk_events": chunk_events,
        "flags": flags.describe(),
        "trials_per_device": trials_max,
        "occupancy": cost.occupancy.occupancy,
        "blocks_per_sm": cost.occupancy.blocks_per_sm,
        "limiting_resource": cost.occupancy.limiting_resource,
        "kernel_seconds": cost.total,
        "transfer_seconds": transfers.total_seconds,
        "staging": staging,
        "tables_staged": n_staged,
        "tables_deduped": spec.n_layers - n_staged,
    }
    return PerfPrediction(
        implementation="multi-gpu",
        total_seconds=total,
        profile=profile,
        meta=meta,
    )


def scaling_curve(
    spec: WorkloadSpec,
    device_counts: List[int] = [1, 2, 3, 4],
    device: DeviceSpec = TESLA_M2090,
    threads_per_block: int = 32,
    chunk_events: int = 96,
) -> List[Dict[str, float]]:
    """Figure 3: time and efficiency vs number of GPUs.

    Efficiency is speedup over the 1-GPU point divided by device count —
    the paper reports ~100% because trials decompose perfectly and each
    device's staging shrinks with its slice.
    """
    baseline = None
    rows: List[Dict[str, float]] = []
    for n in device_counts:
        prediction = predict_multi_gpu(
            spec,
            n_devices=n,
            device=device,
            threads_per_block=threads_per_block,
            chunk_events=chunk_events,
        )
        if baseline is None:
            baseline = prediction.total_seconds
        speedup = baseline / prediction.total_seconds
        rows.append(
            {
                "n_gpus": n,
                "seconds": prediction.total_seconds,
                "speedup_vs_1gpu": speedup,
                "efficiency": speedup / (n / device_counts[0]),
            }
        )
    return rows
