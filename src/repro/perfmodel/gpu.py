"""Single-GPU performance predictions (basic and optimised kernels).

These predictions execute *no* kernel: they build the same traffic ledger
the simulated kernels record (via the shared recorders in
:mod:`repro.engines.gpu_common`) for the whole workload at once, then
price it with the gpusim cost model plus PCIe staging.  By construction a
prediction equals the modeled seconds the corresponding engine reports on
the same workload (up to per-batch rounding of coalesced transactions) —
property-tested in ``tests/perfmodel``.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.core.kernels import occ_chunk_for
from repro.data.presets import WorkloadSpec
from repro.engines.gpu_common import (
    BASIC_REGISTERS_PER_THREAD,
    OPTIMIZED_REGISTERS_PER_THREAD,
    OptimizationFlags,
    modeled_activity_profile,
    optimized_barrier_intensity,
    optimized_mlp,
    optimized_shared_bytes_per_block,
    record_basic_traffic,
    record_optimized_traffic,
    record_ragged_traffic,
)
from repro.gpusim.costmodel import estimate_kernel_seconds
from repro.gpusim.device import DeviceSpec, TESLA_C2075
from repro.gpusim.hierarchy import KernelLaunch
from repro.gpusim.memory import DeviceCounters
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.transfer import TransferModel
from repro.perfmodel.result import PerfPrediction
from repro.utils.timer import ACTIVITY_OTHER


def _staging_seconds(
    spec: WorkloadSpec,
    device: DeviceSpec,
    table_word_bytes: int,
    trial_fraction: float = 1.0,
) -> tuple[float, Dict[str, float]]:
    """PCIe staging time: ELT tables + YET slice in, YLT slice out."""
    transfers = TransferModel(device=device)
    table_bytes = (
        (spec.catalog_size + 1) * table_word_bytes * spec.elts_per_layer
    ) * spec.n_layers
    yet_bytes = spec.n_occurrences * 4 * trial_fraction
    ylt_bytes = spec.n_trials * 8 * trial_fraction * spec.n_layers
    transfers.h2d(table_bytes, "elt_tables")
    transfers.h2d(yet_bytes, "yet")
    transfers.d2h(ylt_bytes, "ylt")
    detail = {
        "table_bytes": table_bytes,
        "yet_bytes": yet_bytes,
        "ylt_bytes": ylt_bytes,
        "transfer_seconds": transfers.total_seconds,
    }
    return transfers.total_seconds, detail


def predict_gpu_basic(
    spec: WorkloadSpec,
    device: DeviceSpec = TESLA_C2075,
    threads_per_block: int = 256,
    word_bytes: int = 8,
) -> PerfPrediction:
    """Modeled time of the basic CUDA implementation (iii).

    ``word_bytes=8``: the basic kernel works in double precision.
    """
    counters = DeviceCounters(device=device)
    for _ in range(spec.n_layers):
        record_basic_traffic(
            counters,
            n_occ=spec.n_occurrences,
            n_trials=spec.n_trials,
            n_elts=spec.elts_per_layer,
            word=word_bytes,
        )
    launch = KernelLaunch(
        n_threads_total=spec.n_trials,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=0,
        registers_per_thread=BASIC_REGISTERS_PER_THREAD,
    )
    launch.validate_against(device)
    cost = estimate_kernel_seconds(device, launch, counters, mlp=1.0)
    staging, detail = _staging_seconds(spec, device, word_bytes)
    total = cost.total + staging

    profile = modeled_activity_profile(
        counters, cost.bandwidth_s, cost.compute_s
    )
    leftover = total - profile.total
    if leftover > 0:
        profile.charge(ACTIVITY_OTHER, leftover)
    meta: Dict[str, Any] = {
        "device": device.name,
        "threads_per_block": threads_per_block,
        "occupancy": cost.occupancy.occupancy,
        "blocks_per_sm": cost.occupancy.blocks_per_sm,
        "limiting_resource": cost.occupancy.limiting_resource,
        "kernel_seconds": cost.total,
        "memory_bound": cost.memory_bound,
        **detail,
    }
    return PerfPrediction(
        implementation="gpu", total_seconds=total, profile=profile, meta=meta
    )


def predict_gpu_optimized(
    spec: WorkloadSpec,
    device: DeviceSpec = TESLA_C2075,
    threads_per_block: int = 256,
    chunk_events: int = 24,
    flags: OptimizationFlags | None = None,
) -> PerfPrediction:
    """Modeled time of the optimised CUDA implementation (iv).

    Raises ``ValueError`` when the launch is infeasible on the device
    (shared-memory overflow) — the condition that truncates Figure 4.
    """
    flags = flags if flags is not None else OptimizationFlags.all()
    word_bytes = 4 if flags.float32 else 8
    counters = DeviceCounters(device=device)
    for _ in range(spec.n_layers):
        record_optimized_traffic(
            counters,
            n_occ=spec.n_occurrences,
            n_trials=spec.n_trials,
            n_elts=spec.elts_per_layer,
            word=word_bytes,
            flags=flags,
            chunk_events=chunk_events,
        )
    launch = KernelLaunch(
        n_threads_total=spec.n_trials,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=optimized_shared_bytes_per_block(
            threads_per_block, chunk_events, word_bytes, flags
        ),
        registers_per_thread=OPTIMIZED_REGISTERS_PER_THREAD,
    )
    launch.validate_against(device)
    occupancy = compute_occupancy(device, launch)
    if not occupancy.launchable:
        raise ValueError(
            f"infeasible launch: {threads_per_block} threads/block with "
            f"{launch.shared_bytes_per_block} B shared "
            f"(limited by {occupancy.limiting_resource})"
        )
    cost = estimate_kernel_seconds(
        device,
        launch,
        counters,
        mlp=optimized_mlp(flags, chunk_events),
        barrier_intensity=optimized_barrier_intensity(flags),
    )
    staging, detail = _staging_seconds(spec, device, word_bytes)
    total = cost.total + staging

    profile = modeled_activity_profile(
        counters, cost.bandwidth_s, cost.compute_s
    )
    leftover = total - profile.total
    if leftover > 0:
        profile.charge(ACTIVITY_OTHER, leftover)
    meta: Dict[str, Any] = {
        "device": device.name,
        "threads_per_block": threads_per_block,
        "chunk_events": chunk_events,
        "flags": flags.describe(),
        "occupancy": cost.occupancy.occupancy,
        "blocks_per_sm": cost.occupancy.blocks_per_sm,
        "limiting_resource": cost.occupancy.limiting_resource,
        "kernel_seconds": cost.total,
        "memory_bound": cost.memory_bound,
        **detail,
    }
    return PerfPrediction(
        implementation="gpu-optimized",
        total_seconds=total,
        profile=profile,
        meta=meta,
    )


def predict_gpu_ragged(
    spec: WorkloadSpec,
    device: DeviceSpec = TESLA_C2075,
    threads_per_block: int = 256,
    optimized: bool = False,
    flags: OptimizationFlags | None = None,
    chunk_events: int = 24,
    secondary: bool = False,
) -> PerfPrediction:
    """Modeled time of the *fused ragged* kernel at paper scale.

    Prices the :func:`~repro.engines.gpu_common.record_ragged_traffic`
    ledger — the coalesced CSR streams, the single fused gather per
    (event, ELT) pair, and the one-pass segment reduction — with the
    same cost model as the dense predictions, so paper-scale projections
    show the fusion win the measured ``KERNEL-ABLATE`` benchmark
    demonstrates at container scale.

    ``optimized=False`` mirrors the basic engine running the ragged
    kernel (:class:`~repro.engines.gpu_common.ARABasicKernel`'s
    footprint: no shared staging, ``mlp=1``); ``optimized=True`` mirrors
    :class:`~repro.engines.gpu_common.ARAOptimizedKernel` (``flags``
    default all four optimisations, chunked staging with ``chunk_events``
    loads in flight).  ``secondary`` adds the fused secondary-uncertainty
    path's quantile-table reads and counter-RNG arithmetic.
    """
    if optimized:
        flags = flags if flags is not None else OptimizationFlags.all()
    else:
        if flags is not None:
            raise ValueError(
                "flags apply only to optimized=True: the basic engine "
                "runs the ragged kernel with no optimisations "
                "(ARABasicKernel records flags=none), so a flagged "
                "basic-ragged projection would model a kernel that "
                "does not exist"
            )
        flags = OptimizationFlags.none()
    word_bytes = 4 if flags.float32 else 8
    # The fused gather's occurrence-chunk depth, exactly as the kernel
    # classes derive it (the ragged ledger's constant-traffic input).
    occ_chunk = occ_chunk_for(max(1, spec.elts_per_layer), word_bytes)
    counters = DeviceCounters(device=device)
    for _ in range(spec.n_layers):
        record_ragged_traffic(
            counters,
            n_occ=spec.n_occurrences,
            n_trials=spec.n_trials,
            n_elts=spec.elts_per_layer,
            word=word_bytes,
            flags=flags,
            occ_chunk=occ_chunk,
            secondary=secondary,
        )
    launch = KernelLaunch(
        n_threads_total=spec.n_trials,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=(
            optimized_shared_bytes_per_block(
                threads_per_block, chunk_events, word_bytes, flags
            )
            if optimized
            else 0
        ),
        registers_per_thread=(
            OPTIMIZED_REGISTERS_PER_THREAD
            if optimized
            else BASIC_REGISTERS_PER_THREAD
        ),
    )
    launch.validate_against(device)
    occupancy = compute_occupancy(device, launch)
    if not occupancy.launchable:
        raise ValueError(
            f"infeasible launch: {threads_per_block} threads/block with "
            f"{launch.shared_bytes_per_block} B shared "
            f"(limited by {occupancy.limiting_resource})"
        )
    cost = estimate_kernel_seconds(
        device,
        launch,
        counters,
        mlp=optimized_mlp(flags, chunk_events) if optimized else 1.0,
        barrier_intensity=(
            optimized_barrier_intensity(flags) if optimized else 0.0
        ),
    )
    staging, detail = _staging_seconds(spec, device, word_bytes)
    total = cost.total + staging

    profile = modeled_activity_profile(
        counters, cost.bandwidth_s, cost.compute_s
    )
    leftover = total - profile.total
    if leftover > 0:
        profile.charge(ACTIVITY_OTHER, leftover)
    meta: Dict[str, Any] = {
        "device": device.name,
        "threads_per_block": threads_per_block,
        "kernel": "ragged",
        "optimized": optimized,
        "flags": flags.describe(),
        "occ_chunk": occ_chunk,
        "secondary": secondary,
        "occupancy": cost.occupancy.occupancy,
        "blocks_per_sm": cost.occupancy.blocks_per_sm,
        "limiting_resource": cost.occupancy.limiting_resource,
        "kernel_seconds": cost.total,
        "memory_bound": cost.memory_bound,
        **detail,
    }
    return PerfPrediction(
        implementation="gpu-ragged" if not optimized else "gpu-optimized-ragged",
        total_seconds=total,
        profile=profile,
        meta=meta,
    )
