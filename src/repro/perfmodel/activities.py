"""Figure 6 support: per-activity time breakdown across implementations.

The paper's Figure 6 plots, for each of the five implementations, the
time (and percentage) spent (a) fetching events, (b) looking up loss
sets in the direct access table, (c) computing financial terms,
(d) computing layer terms.  This module assembles that table from the
per-implementation predictions.
"""

from __future__ import annotations

from typing import Dict, List

from repro.data.presets import WorkloadSpec
from repro.perfmodel.cpu import predict_multicore, predict_sequential
from repro.perfmodel.gpu import predict_gpu_basic, predict_gpu_optimized
from repro.perfmodel.multigpu import predict_multi_gpu
from repro.perfmodel.result import PerfPrediction
from repro.utils.timer import (
    ACTIVITY_FETCH,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_LOOKUP,
    ACTIVITY_OTHER,
)

REPORT_ACTIVITIES = (
    ACTIVITY_FETCH,
    ACTIVITY_LOOKUP,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_OTHER,
)


def predict_all(spec: WorkloadSpec) -> Dict[str, PerfPrediction]:
    """All five implementation predictions for one workload (Figure 5)."""
    return {
        "sequential": predict_sequential(spec),
        "multicore": predict_multicore(spec, n_cores=8),
        "gpu": predict_gpu_basic(spec),
        "gpu-optimized": predict_gpu_optimized(spec),
        "multi-gpu": predict_multi_gpu(spec),
    }


def activity_breakdown_table(spec: WorkloadSpec) -> List[Dict[str, float]]:
    """One row per implementation: seconds and share per activity.

    Row keys: ``implementation``, ``total``, ``<activity>`` (seconds) and
    ``<activity>_pct`` (percentage of total).
    """
    rows: List[Dict[str, float]] = []
    for name, prediction in predict_all(spec).items():
        fractions = prediction.profile.fractions()
        row: Dict[str, float] = {
            "implementation": name,  # type: ignore[dict-item]
            "total": prediction.total_seconds,
        }
        for activity in REPORT_ACTIVITIES:
            row[activity] = prediction.profile.seconds.get(activity, 0.0)
            row[f"{activity}_pct"] = 100.0 * fractions.get(activity, 0.0)
        rows.append(row)
    return rows
