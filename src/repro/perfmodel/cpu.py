"""CPU performance models: sequential baseline and multicore saturation.

See :mod:`repro.perfmodel.calibration` for where every constant comes
from.  Predictions work for *any* :class:`~repro.data.presets.WorkloadSpec`
— time is linear in lookups/flops/fetches (the paper's own Section IV.A
observation: runtime grows linearly in events, trials, ELTs and layers),
so the model extrapolates cleanly from the paper workload it was
calibrated on.
"""

from __future__ import annotations

from repro.data.presets import WorkloadSpec
from repro.engines.gpu_common import (
    FLOPS_ACCUM_PER_LOOKUP,
    FLOPS_FINANCIAL_PER_LOOKUP,
    FLOPS_LAYER_PER_EVENT,
)
from repro.perfmodel.calibration import (
    MULTICORE_FETCH_SERIAL_FRACTION,
    MULTICORE_LOOKUP_SERIAL_FRACTION,
    OVERSUB_EXPONENT,
    OVERSUB_T1,
    OVERSUB_TINF,
    SEQ_FETCH_SECONDS,
    SEQ_FLOP_SECONDS,
    SEQ_LOOKUP_SECONDS,
)
from repro.perfmodel.result import PerfPrediction
from repro.utils.timer import (
    ACTIVITY_FETCH,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_LOOKUP,
    ActivityProfile,
)
from repro.utils.validation import check_positive


def _workload_operations(spec: WorkloadSpec) -> tuple[float, float, float, float]:
    """(lookups, financial flops, layer flops, fetches) for a workload."""
    lookups = float(spec.n_lookups)
    financial_flops = (
        FLOPS_FINANCIAL_PER_LOOKUP + FLOPS_ACCUM_PER_LOOKUP
    ) * lookups
    layer_flops = FLOPS_LAYER_PER_EVENT * spec.n_occurrences * spec.n_layers
    fetches = float(spec.n_occurrences) * spec.n_layers
    return lookups, financial_flops, layer_flops, fetches


def predict_sequential(spec: WorkloadSpec) -> PerfPrediction:
    """Modeled single-core CPU time for ``spec``.

    On the paper workload this reproduces the published breakdown by
    construction (the constants were derived from it); on other workloads
    it extrapolates linearly.
    """
    lookups, financial_flops, layer_flops, fetches = _workload_operations(spec)
    profile = ActivityProfile()
    profile.charge(ACTIVITY_LOOKUP, lookups * SEQ_LOOKUP_SECONDS)
    profile.charge(ACTIVITY_FINANCIAL, financial_flops * SEQ_FLOP_SECONDS)
    profile.charge(ACTIVITY_LAYER, layer_flops * SEQ_FLOP_SECONDS)
    profile.charge(ACTIVITY_FETCH, fetches * SEQ_FETCH_SECONDS)
    return PerfPrediction(
        implementation="sequential",
        total_seconds=profile.total,
        profile=profile,
        meta={"n_cores": 1},
    )


def _amdahl(seconds: float, n: int, serial_fraction: float) -> float:
    """Time after scaling to ``n`` workers with a serialised share."""
    return seconds * ((1.0 - serial_fraction) / n + serial_fraction)


def predict_multicore(spec: WorkloadSpec, n_cores: int = 8) -> PerfPrediction:
    """Modeled multicore CPU time (Figure 1a's axis).

    Numeric term work scales with cores; lookups and fetches saturate
    against the shared memory system (no cache locality to exploit — the
    paper's stated reason for the limited speedup).
    """
    check_positive("n_cores", n_cores)
    base = predict_sequential(spec)
    profile = ActivityProfile()
    profile.charge(
        ACTIVITY_LOOKUP,
        _amdahl(
            base.profile.seconds[ACTIVITY_LOOKUP],
            n_cores,
            MULTICORE_LOOKUP_SERIAL_FRACTION,
        ),
    )
    profile.charge(
        ACTIVITY_FINANCIAL, base.profile.seconds[ACTIVITY_FINANCIAL] / n_cores
    )
    profile.charge(
        ACTIVITY_LAYER, base.profile.seconds[ACTIVITY_LAYER] / n_cores
    )
    profile.charge(
        ACTIVITY_FETCH,
        _amdahl(
            base.profile.seconds[ACTIVITY_FETCH],
            n_cores,
            MULTICORE_FETCH_SERIAL_FRACTION,
        ),
    )
    return PerfPrediction(
        implementation="multicore",
        total_seconds=profile.total,
        profile=profile,
        meta={
            "n_cores": n_cores,
            "lookup_serial_fraction": MULTICORE_LOOKUP_SERIAL_FRACTION,
            "fetch_serial_fraction": MULTICORE_FETCH_SERIAL_FRACTION,
        },
    )


def predict_multicore_oversubscribed(
    spec: WorkloadSpec, threads_per_core: int, n_cores: int = 8
) -> PerfPrediction:
    """Modeled 8-core time vs threads per core (Figure 1b's axis).

    Oversubscription overlaps memory latency: each extra thread per core
    gives another outstanding miss, with strongly diminishing returns —
    modeled as ``T(t) = T_inf + (T_1 − T_inf) · t^(−0.6)``, calibrated to
    the paper's quoted endpoints (135 s at 1 thread/core, ~125 s at 256).
    The paper-workload curve is rescaled linearly for other workloads.
    """
    check_positive("threads_per_core", threads_per_core)
    base = predict_multicore(spec, n_cores=n_cores)
    paper_curve = OVERSUB_TINF + (OVERSUB_T1 - OVERSUB_TINF) * (
        float(threads_per_core) ** -OVERSUB_EXPONENT
    )
    scale = paper_curve / OVERSUB_T1
    # Oversubscription only helps the latency-bound activities; numeric
    # work is already core-bound.  Apply the gain to lookup+fetch.
    profile = ActivityProfile()
    for activity, seconds in base.profile.seconds.items():
        if activity in (ACTIVITY_LOOKUP, ACTIVITY_FETCH):
            profile.charge(activity, seconds * scale)
        else:
            profile.charge(activity, seconds)
    return PerfPrediction(
        implementation="multicore",
        total_seconds=profile.total,
        profile=profile,
        meta={
            "n_cores": n_cores,
            "threads_per_core": threads_per_core,
            "total_threads": n_cores * threads_per_core,
            "oversubscription_scale": scale,
        },
    )
