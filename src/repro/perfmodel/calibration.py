"""Calibration constants: the paper's published numbers and derived costs.

Everything taken verbatim from the paper is collected here, with the
section/figure it came from, so the rest of the model can cite a single
source of truth and EXPERIMENTS.md can print paper-vs-model tables.

Derived CPU per-operation costs
-------------------------------
The paper's sequential run (Section IV.A / Figure 6) splits 337.47 s into
222.61 s of loss lookups, 104.67 s of financial+layer numeric work and
~10.19 s of event fetching, over a workload of 15e9 lookups, ~99e9 flops
(6 per (event, ELT) pair + 9 per event) and 1e9 event fetches.  Dividing
gives per-operation costs that are physically sensible for a 3.4 GHz
i7-2600: ~14.8 ns per random DRAM lookup (one cache-missing access), ~1.06
ns per flop through the scalar term pipeline, ~10.2 ns per fetched event.

Multicore saturation fractions
------------------------------
Figure 1a's speedups (1.5x / 2.2x / 2.6x on 2 / 4 / 8 cores) are modeled
per activity with Amdahl-style serialisation: numeric work scales with
cores; lookups and fetches saturate against the shared memory system with
serial fractions fitted once against the 8-core total (123.5 s).
"""

from __future__ import annotations

from repro.engines.gpu_common import (
    FLOPS_ACCUM_PER_LOOKUP,
    FLOPS_FINANCIAL_PER_LOOKUP,
    FLOPS_LAYER_PER_EVENT,
)
from repro.data.presets import PAPER

# ----------------------------------------------------------------------
# Verbatim paper numbers
# ----------------------------------------------------------------------
PAPER_SEQ_BREAKDOWN = {
    "total": 337.47,  # Figure 5
    "loss_lookup": 222.61,  # Section V
    "financial_and_layer": 104.67,  # Section V
    "fetch_events": 10.19,  # residual; Section V says "over 10 seconds"
}
"""Sequential CPU breakdown (seconds) on the paper workload."""

PAPER_FIG5_SECONDS = {
    "sequential": 337.47,
    "multicore": 123.5,
    "gpu": 38.49,
    "gpu-optimized": 20.63,
    "multi-gpu": 4.35,
}
"""Figure 5: average total seconds per implementation."""

PAPER_MULTICORE_SPEEDUPS = {1: 1.0, 2: 1.5, 4: 2.2, 8: 2.6}
"""Figure 1a: multicore speedup over one core."""

PAPER_FIG1B = {
    "threads_per_core_1": 135.0,
    "threads_per_core_256": 125.0,
}
"""Figure 1b: 8-core runtime vs oversubscription (endpoints quoted)."""

PAPER_MULTIGPU = {
    "lookup_seconds": 4.25,  # Section IV.C
    "terms_seconds": 0.02,
    "total_seconds": 4.35,
    "lookup_fraction": 0.9754,  # "97.54% of the total time is look-up"
    "single_gpu_lookup_seconds": 20.1,
}
"""Multi-GPU component times (Sections IV.C and V)."""

PAPER_SPEEDUP_OVERALL = 77.0
"""Headline result: multi-GPU vs sequential CPU."""


# ----------------------------------------------------------------------
# Derived per-operation CPU costs (documented derivation above)
# ----------------------------------------------------------------------
def _paper_flops() -> float:
    per_pair = FLOPS_FINANCIAL_PER_LOOKUP + FLOPS_ACCUM_PER_LOOKUP
    return per_pair * PAPER.n_lookups + FLOPS_LAYER_PER_EVENT * PAPER.n_occurrences


SEQ_LOOKUP_SECONDS = PAPER_SEQ_BREAKDOWN["loss_lookup"] / PAPER.n_lookups
"""Seconds per random ELT lookup on one CPU core (~14.8 ns)."""

SEQ_FLOP_SECONDS = PAPER_SEQ_BREAKDOWN["financial_and_layer"] / _paper_flops()
"""Seconds per scalar term-pipeline flop on one CPU core (~1.06 ns)."""

SEQ_FETCH_SECONDS = PAPER_SEQ_BREAKDOWN["fetch_events"] / PAPER.n_occurrences
"""Seconds per YET event fetched on one CPU core (~10.2 ns)."""


# ----------------------------------------------------------------------
# Multicore Amdahl fractions (fitted once; see module docstring)
# ----------------------------------------------------------------------
MULTICORE_FETCH_SERIAL_FRACTION = 0.53
"""Serialised share of event fetching (streaming saturates quickly)."""


def _fit_lookup_serial_fraction() -> float:
    """Solve the 8-core total for the lookup serial fraction.

    With numeric work scaling 1/n and fetch using the fraction above, the
    lookup fraction is pinned by Figure 1a's 8-core total of 123.5 s.
    """
    n = 8
    target = PAPER_FIG5_SECONDS["multicore"]
    numeric = PAPER_SEQ_BREAKDOWN["financial_and_layer"] / n
    g = MULTICORE_FETCH_SERIAL_FRACTION
    fetch = PAPER_SEQ_BREAKDOWN["fetch_events"] * ((1 - g) / n + g)
    lookup_scaled = target - numeric - fetch
    ratio = lookup_scaled / PAPER_SEQ_BREAKDOWN["loss_lookup"]
    # ratio = (1-f)/n + f  →  f = (ratio - 1/n) / (1 - 1/n)
    return (ratio - 1 / n) / (1 - 1 / n)


MULTICORE_LOOKUP_SERIAL_FRACTION = _fit_lookup_serial_fraction()
"""Serialised share of random lookups under core scaling (~0.39)."""

# Figure 1b: oversubscription overlaps memory latency with diminishing
# returns: T(t) = T_inf + (T_1 - T_inf) * t**(-OVERSUB_EXPONENT).
OVERSUB_T1 = PAPER_FIG1B["threads_per_core_1"]
OVERSUB_TINF = 124.5
OVERSUB_EXPONENT = 0.6
