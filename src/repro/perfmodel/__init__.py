"""Analytic performance model: paper-scale time predictions.

The real engines run scaled-down workloads in this container; the paper's
1M-trial benchmark on its 2013 testbed is predicted analytically instead:

* CPU predictions (:mod:`repro.perfmodel.cpu`) use per-operation costs
  *calibrated once* from the paper's published sequential breakdown
  (337.47 s = 222.61 s lookup + 104.67 s numeric + 10.19 s fetch) and a
  per-activity Amdahl saturation model fitted to the multicore figures.
* GPU predictions (:mod:`repro.perfmodel.gpu`,
  :mod:`repro.perfmodel.multigpu`) are *not* fitted to the paper's GPU
  numbers: they reuse the exact traffic recorders the simulated kernels
  execute (:mod:`repro.engines.gpu_common`) and the gpusim cost model
  with datasheet constants.  That the predictions land near the paper's
  38.47 / 20.63 / 4.35 seconds is a result, not an input — and the shape
  claims (block-size optima, scaling efficiency, activity shares) follow
  from the model mechanics.
"""

from repro.perfmodel.result import PerfPrediction
from repro.perfmodel.calibration import (
    PAPER_FIG5_SECONDS,
    PAPER_MULTICORE_SPEEDUPS,
    PAPER_SEQ_BREAKDOWN,
)
from repro.perfmodel.cpu import (
    predict_multicore,
    predict_multicore_oversubscribed,
    predict_sequential,
)
from repro.perfmodel.gpu import predict_gpu_basic, predict_gpu_optimized
from repro.perfmodel.multigpu import predict_multi_gpu
from repro.perfmodel.activities import activity_breakdown_table

__all__ = [
    "PerfPrediction",
    "PAPER_FIG5_SECONDS",
    "PAPER_MULTICORE_SPEEDUPS",
    "PAPER_SEQ_BREAKDOWN",
    "predict_sequential",
    "predict_multicore",
    "predict_multicore_oversubscribed",
    "predict_gpu_basic",
    "predict_gpu_optimized",
    "predict_multi_gpu",
    "activity_breakdown_table",
]
