"""Common result type of the analytic performance model."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.utils.timer import ActivityProfile


@dataclass
class PerfPrediction:
    """Modeled end-to-end time of one implementation on one workload.

    Attributes
    ----------
    implementation:
        Engine registry name the prediction corresponds to.
    total_seconds:
        Modeled wall-clock seconds of the full analysis.
    profile:
        Modeled per-activity breakdown (Figure 6 categories); activity
        seconds sum to ``total_seconds``.
    meta:
        Model internals worth reporting (occupancy, transfer seconds,
        per-device splits, Amdahl factors, ...).
    """

    implementation: str
    total_seconds: float
    profile: ActivityProfile
    meta: Dict[str, Any] = field(default_factory=dict)

    def speedup_over(self, baseline: "PerfPrediction") -> float:
        """Baseline time over this prediction's time (>1 = faster)."""
        if self.total_seconds <= 0:
            raise ValueError("cannot compute speedup of a zero-time prediction")
        return baseline.total_seconds / self.total_seconds

    def fraction(self, activity: str) -> float:
        """Share of total time spent in one activity (0 if unknown)."""
        return self.profile.fractions().get(activity, 0.0)
