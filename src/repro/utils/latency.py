"""Latency percentile tracking: the signal behind hedging and SLOs.

Two small, dependency-free pieces shared by the serving tier and the
store:

* :func:`percentile` — nearest-rank percentile over a sample list (the
  convention open-loop load reports use: p99 of 100 samples is the
  99th-ranked observation, not an interpolation that can invent values
  no request ever saw);
* :class:`LatencyTracker` — a thread-safe ring buffer of recent
  latencies with percentile queries.  :class:`~repro.store.filestore.
  TieredStore` keeps one per tier and uses the tracked percentile as
  its hedge trigger ("this get has outlived p95 — issue a hedge to the
  next tier"), and the serve front-end keeps one per lane for its
  ``stats()`` surface.

Bounded by construction: the ring keeps the last ``maxlen`` samples,
so a long-lived service tracks *recent* behaviour (a tier that got
slow an hour ago and recovered stops biasing the trigger).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Dict, Optional, Sequence


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in (0, 1])."""
    if not samples:
        raise ValueError("percentile of an empty sample set")
    if not 0.0 < q <= 1.0:
        raise ValueError(f"q must be in (0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


class LatencyTracker:
    """Ring buffer of recent operation latencies with percentile queries.

    Thread-safe; ``record`` is one deque append under a lock, cheap
    enough to sit on every store ``get``.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen < 1:
            raise ValueError(f"maxlen must be >= 1, got {maxlen}")
        self._samples: "deque[float]" = deque(maxlen=int(maxlen))
        self._lock = threading.Lock()
        self.count = 0

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the retained window, or ``None``
        when nothing has been recorded yet."""
        with self._lock:
            if not self._samples:
                return None
            samples = list(self._samples)
        return percentile(samples, q)

    def summary(self) -> Dict[str, float]:
        """p50/p95/p99 + mean/max over the retained window (stats surface)."""
        with self._lock:
            samples = list(self._samples)
            count = self.count
        if not samples:
            return {"count": count, "window": 0}
        return {
            "count": count,
            "window": len(samples),
            "mean_seconds": sum(samples) / len(samples),
            "p50_seconds": percentile(samples, 0.50),
            "p95_seconds": percentile(samples, 0.95),
            "p99_seconds": percentile(samples, 0.99),
            "max_seconds": max(samples),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LatencyTracker(window={len(self)}, count={self.count})"
