"""Bounded retries with exponential backoff and decorrelated jitter.

One retry policy for the whole execution stack: store fetches, worker
``get_or_compute`` calls and assembler reads all fail the same ways
(transient IO errors, torn reads healing into misses) and should all
recover the same way — a few bounded attempts, spaced by exponential
backoff with *decorrelated jitter* (each delay is drawn uniformly from
``[base, 3 * previous]``, the AWS architecture-blog variant that avoids
synchronised retry storms better than plain full jitter), capped per
attempt and by an overall deadline.

Determinism matters here as much as in the kernels: a
:class:`RetryPolicy` accepts an injectable ``rng`` and ``sleep`` so
tests (and the seeded chaos harness) can fix the jitter sequence and
run without wall-clock waits.  The policy object is frozen and
reusable; per-call state lives in :func:`retry_call`.

End-to-end budgets are a separate object: a :class:`Deadline` is
created once at the request boundary (the serving tier) and threaded
through every nested layer — quote scheduling, plan caches, store
fetches, retries — so no layer retries or sleeps past the *caller's*
budget, and expired work raises the typed :class:`DeadlineExceeded`
instead of being computed.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Optional, Tuple, Type, TypeVar

T = TypeVar("T")


class DeadlineExceeded(TimeoutError):
    """A caller's end-to-end budget ran out before the work completed.

    Typed — never a silent timeout: every layer that gives up on a
    deadline raises (or records) this, so a shed request is always
    distinguishable from a crashed one.
    """


class Deadline:
    """A monotonic end-to-end budget shared by every nested layer.

    Unlike :attr:`RetryPolicy.deadline_seconds` (which restarts at each
    ``retry_call``), a ``Deadline`` is created once at the request
    boundary and *passed down* — through ``quote_async``, the plan
    caches, store fetches and nested retries — so the sum of all sleeps
    and waits below never exceeds the caller's budget.

    ``clock`` is injectable (monotonic seconds) so tests advance time
    explicitly; :meth:`remaining` never goes negative.
    """

    __slots__ = ("total_seconds", "_expires_at", "_clock")

    def __init__(
        self,
        seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds <= 0:
            raise ValueError(f"deadline seconds must be > 0, got {seconds}")
        self.total_seconds = float(seconds)
        self._clock = clock
        self._expires_at = clock() + self.total_seconds

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now (readable call-site spelling)."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left in the budget (clamped at 0.0)."""
        return max(0.0, self._expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return self._clock() >= self._expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent.

        Layers call this *before* starting expensive work, so expired
        requests are cancelled rather than computed.
        """
        if self.expired:
            raise DeadlineExceeded(
                f"{what} abandoned: deadline of {self.total_seconds:.3f}s "
                "exhausted"
            )

    def clamp(self, seconds: float) -> float:
        """``seconds`` bounded by the remaining budget (for sleeps/waits)."""
        return min(float(seconds), self.remaining())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Deadline(total={self.total_seconds:.3f}s, "
            f"remaining={self.remaining():.3f}s)"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """How many times, how long apart, and on which errors to retry.

    Parameters
    ----------
    max_attempts:
        Total tries (first call included); ``1`` disables retrying.
    base_delay:
        Lower bound of every backoff draw, seconds.
    max_delay:
        Upper cap of any single backoff draw, seconds.
    deadline_seconds:
        Overall per-operation budget: once elapsed time plus the next
        planned delay would exceed it, the last error is raised instead
        of sleeping again.  ``None`` means attempts alone bound the
        operation.
    retry_on:
        Exception types that trigger a retry; anything else propagates
        immediately (a ``ValueError`` from a bad key is not transient).
    """

    max_attempts: int = 3
    base_delay: float = 0.02
    max_delay: float = 1.0
    deadline_seconds: Optional[float] = None
    retry_on: Tuple[Type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay, got "
                f"{self.base_delay}/{self.max_delay}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )

    def with_(self, **changes) -> "RetryPolicy":
        """A copy with ``changes`` applied (policies are frozen)."""
        return replace(self, **changes)

    def delays(self, rng: random.Random) -> "list[float]":
        """The full backoff schedule one call would draw from ``rng``.

        Decorrelated jitter: ``d_0 = base``, then each
        ``d_i ~ Uniform(base, 3 * d_{i-1})`` clamped to ``max_delay``.
        Exposed for tests asserting the schedule's bounds.
        """
        delays = []
        previous = self.base_delay
        for _ in range(self.max_attempts - 1):
            drawn = min(
                self.max_delay,
                rng.uniform(self.base_delay, max(self.base_delay, previous * 3)),
            )
            delays.append(drawn)
            previous = drawn
        return delays


#: the stack-wide default: 3 attempts, 20ms-1s decorrelated backoff.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: store-fetch flavour: one extra attempt, tighter deadline — a fetch
#: that cannot be served in a few hundred ms should fall back to
#: recompute, not stall the assembler.
STORE_FETCH_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.01, max_delay=0.25, deadline_seconds=5.0
)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    sleep: Callable[[float], None] = time.sleep,
    rng: random.Random | None = None,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, BaseException, float], None] | None = None,
    deadline: Deadline | None = None,
) -> T:
    """Call ``fn`` under ``policy``; return its value or raise its last error.

    ``on_retry(attempt, error, delay)`` fires before each backoff sleep
    (attempt is 1-based), letting callers count retries in their stats.
    ``rng`` defaults to a fresh unseeded generator; pass a seeded
    ``random.Random`` for reproducible jitter.

    ``deadline`` is the caller's *shared* end-to-end budget: nested
    retries all draw from the same :class:`Deadline` instead of each
    restarting a fresh ``policy.deadline_seconds``.  An already-expired
    deadline raises :class:`DeadlineExceeded` without calling ``fn``;
    once a planned backoff would sleep past it, the last error is
    raised immediately — this function never sleeps past either budget.
    """
    if deadline is not None:
        deadline.check("retried call")
    rng = rng if rng is not None else random.Random()
    started = clock()
    previous_delay = policy.base_delay
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn()
        except policy.retry_on as exc:
            if isinstance(exc, DeadlineExceeded):
                raise  # an exhausted budget below us is never transient
            if attempt >= policy.max_attempts:
                raise
            delay = min(
                policy.max_delay,
                rng.uniform(
                    policy.base_delay,
                    max(policy.base_delay, previous_delay * 3),
                ),
            )
            if (
                policy.deadline_seconds is not None
                and clock() - started + delay > policy.deadline_seconds
            ):
                raise
            if deadline is not None and delay > deadline.remaining():
                raise
            if on_retry is not None:
                on_retry(attempt, exc, delay)
            sleep(delay)
            previous_delay = delay
    raise AssertionError("unreachable")  # pragma: no cover


def retrying(
    policy: RetryPolicy = DEFAULT_RETRY_POLICY,
    **call_kwargs,
) -> Callable[[Callable[..., T]], Callable[..., T]]:
    """Decorator form of :func:`retry_call` for fixed-policy helpers."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args, **kwargs) -> T:
            return retry_call(
                lambda: fn(*args, **kwargs), policy, **call_kwargs
            )

        wrapper.__name__ = getattr(fn, "__name__", "retrying")
        wrapper.__doc__ = fn.__doc__
        return wrapper

    return decorate


class CircuitBreaker:
    """Consecutive-failure circuit breaker (one per protected resource).

    After ``failure_threshold`` consecutive failures the breaker
    *opens* for ``cooldown_seconds``: :meth:`allow` answers ``False``
    and the caller routes around the resource (the
    :class:`~repro.store.filestore.TieredStore` skips the tier).  After
    the cooldown one probe call is allowed through (half-open); success
    closes the breaker, failure re-opens it for another cooldown.

    ``clock`` is injectable so tests advance time explicitly.  Not
    thread-safe by itself — callers serialise through their own lock
    (the stores already hold one for stats).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ValueError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self.consecutive_failures = 0
        self.total_failures = 0
        self.trips = 0
        self._open_until: float | None = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        if self._open_until is None:
            return "closed"
        if self._clock() >= self._open_until:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May the caller use the resource right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._open_until = None

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            if self.state != "open":
                self.trips += 1
            self._open_until = self._clock() + self.cooldown_seconds

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "trips": self.trips,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}/{self.failure_threshold})"
        )
