"""Shared utilities: timing, RNG, validation and parallel helpers."""

from repro.utils.bufpool import ScratchBufferPool
from repro.utils.timer import ActivityProfile, Stopwatch, timed
from repro.utils.rng import default_rng, spawn_rngs
from repro.utils.validation import (
    check_dtype,
    check_in_range,
    check_nonnegative,
    check_positive,
    check_same_length,
)
from repro.utils.parallel import (
    available_cpu_count,
    chunk_ranges,
    run_threaded,
)

__all__ = [
    "ScratchBufferPool",
    "ActivityProfile",
    "Stopwatch",
    "timed",
    "default_rng",
    "spawn_rngs",
    "check_dtype",
    "check_in_range",
    "check_nonnegative",
    "check_positive",
    "check_same_length",
    "available_cpu_count",
    "chunk_ranges",
    "run_threaded",
]
