"""Timing utilities used across engines and benchmarks.

The paper (Section V, Figure 6) reports a per-activity breakdown of the
aggregate analysis run: fetching events from memory, loss lookup in the
direct access table, financial-term computations and layer-term
computations.  :class:`ActivityProfile` is the container every engine in
:mod:`repro.engines` fills in so that Figure 6 can be regenerated from any
implementation.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator

# Canonical activity names, in presentation order used by the paper's
# Figure 6.  "fetch" is reading events of a trial from the YET, "lookup" is
# the random access into the ELT loss tables, "financial" and "layer" are
# the two numerical term-application phases.
ACTIVITY_FETCH = "fetch_events"
ACTIVITY_LOOKUP = "loss_lookup"
ACTIVITY_FINANCIAL = "financial_terms"
ACTIVITY_LAYER = "layer_terms"
ACTIVITY_OTHER = "other"

ACTIVITIES = (
    ACTIVITY_FETCH,
    ACTIVITY_LOOKUP,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_OTHER,
)


class Stopwatch:
    """A simple monotonic stopwatch.

    >>> sw = Stopwatch()
    >>> sw.start()
    >>> _ = sum(range(100))
    >>> elapsed = sw.stop()
    >>> elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._started: float | None = None
        self.elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._started = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started
        self._started = None
        return self.elapsed

    def reset(self) -> None:
        self._started = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._started is not None


@contextmanager
def timed() -> Iterator[Stopwatch]:
    """Context manager yielding a running :class:`Stopwatch`.

    >>> with timed() as sw:
    ...     _ = [i * i for i in range(10)]
    >>> sw.elapsed > 0
    True
    """

    sw = Stopwatch().start()
    try:
        yield sw
    finally:
        if sw.running:
            sw.stop()


@dataclass
class ActivityProfile:
    """Accumulates wall-clock (or modeled) seconds per activity.

    Engines charge time against the canonical activities while running so
    that the Figure 6 breakdown can be reported for any implementation.
    Both measured engines (real seconds) and the analytic performance model
    (modeled seconds) produce this same structure.
    """

    seconds: Dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in ACTIVITIES}
    )

    def charge(self, activity: str, seconds: float) -> None:
        """Add ``seconds`` against ``activity`` (creating it if unknown)."""
        if seconds < 0:
            raise ValueError(f"cannot charge negative time: {seconds!r}")
        self.seconds[activity] = self.seconds.get(activity, 0.0) + seconds

    @contextmanager
    def track(self, activity: str) -> Iterator[None]:
        """Context manager charging elapsed wall-clock time to ``activity``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.charge(activity, time.perf_counter() - start)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fractions(self) -> Dict[str, float]:
        """Fraction of total time per activity (empty profile → all zeros)."""
        total = self.total
        if total <= 0.0:
            return {name: 0.0 for name in self.seconds}
        return {name: secs / total for name, secs in self.seconds.items()}

    def merged(self, other: "ActivityProfile") -> "ActivityProfile":
        """Return a new profile summing ``self`` and ``other``."""
        out = ActivityProfile()
        for name, secs in self.seconds.items():
            out.charge(name, secs)
        for name, secs in other.seconds.items():
            out.charge(name, secs)
        return out

    def scaled(self, factor: float) -> "ActivityProfile":
        """Return a new profile with every activity scaled by ``factor``.

        Used to extrapolate a measured profile on a scaled-down workload to
        a larger trial count (time is linear in trials for this algorithm).
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        out = ActivityProfile()
        for name, secs in self.seconds.items():
            out.seconds[name] = secs * factor
        return out

    def as_row(self) -> Dict[str, float]:
        """Flat dict (activity → seconds) plus ``total``, for reporting."""
        row = dict(self.seconds)
        row["total"] = self.total
        return row
