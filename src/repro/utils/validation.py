"""Input-validation helpers shared by the data model and engines.

These raise early with actionable messages rather than letting bad shapes
propagate into vectorised kernels where the failure mode is an opaque
broadcast error three modules away.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_nonnegative(name: str, value: float) -> float:
    """Require ``value >= 0`` (layer retentions/limits, times, counts)."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_in_range(
    name: str, value: float, low: float, high: float, *, inclusive: bool = True
) -> float:
    """Require ``low <= value <= high`` (or strict if ``inclusive=False``)."""
    ok = low <= value <= high if inclusive else low < value < high
    if not ok:
        bracket = "[]" if inclusive else "()"
        raise ValueError(
            f"{name} must be in {bracket[0]}{low}, {high}{bracket[1]}, got {value!r}"
        )
    return value


def check_same_length(**named_sequences: Sequence[Any]) -> int:
    """Require all keyword sequences share one length; return it."""
    lengths = {name: len(seq) for name, seq in named_sequences.items()}
    unique = set(lengths.values())
    if len(unique) > 1:
        raise ValueError(f"length mismatch: {lengths}")
    return unique.pop() if unique else 0


def check_dtype(name: str, array: np.ndarray, dtype: Any) -> np.ndarray:
    """Require ``array.dtype == dtype`` exactly (no silent casts in kernels)."""
    expected = np.dtype(dtype)
    if array.dtype != expected:
        raise TypeError(f"{name} must have dtype {expected}, got {array.dtype}")
    return array


def check_sorted(name: str, array: np.ndarray) -> np.ndarray:
    """Require a 1-D array be sorted in non-decreasing order."""
    arr = np.asarray(array)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.size > 1 and np.any(arr[1:] < arr[:-1]):
        raise ValueError(f"{name} must be sorted in non-decreasing order")
    return array


def check_unique(name: str, values: Iterable[Any]) -> None:
    """Require all values be distinct (e.g. event ids within an ELT)."""
    seen = set()
    for value in values:
        if value in seen:
            raise ValueError(f"{name} contains duplicate value {value!r}")
        seen.add(value)
