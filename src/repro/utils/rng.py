"""Seeded random-number-generation helpers.

All stochastic inputs in this package (YET/ELT/portfolio generators,
secondary-uncertainty sampling) accept either a seed or a
``numpy.random.Generator``; these helpers normalise that and provide
independent child streams for parallel workers.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for any seed-like input.

    Passing an existing generator returns it unchanged, so library code can
    accept ``seed`` arguments uniformly without re-seeding caller state.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Return ``n`` statistically independent child generators.

    Uses ``SeedSequence.spawn`` so parallel workers (e.g. the multicore
    engine's per-thread workload generators) never share a stream.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.SeedSequence):
        seq = seed
    elif isinstance(seed, np.random.Generator):
        # Derive a fresh sequence from the generator's bit stream.
        seq = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_hash_seed(*parts: Union[int, str]) -> int:
    """Deterministically derive a 63-bit seed from mixed int/str parts.

    Used by generators to give every (trial chunk, ELT id, ...) a
    reproducible stream independent of generation order.
    """
    acc = np.uint64(1469598103934665603)  # FNV-1a offset basis
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for part in parts:
            data: Sequence[int]
            if isinstance(part, str):
                data = part.encode("utf-8")
            else:
                data = int(part).to_bytes(8, "little", signed=True)
            for byte in data:
                acc = np.uint64(acc ^ np.uint64(byte)) * prime
    return int(acc & np.uint64(0x7FFF_FFFF_FFFF_FFFF))
