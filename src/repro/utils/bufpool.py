"""Scratch-buffer pool: reusable working arrays for the fused kernels.

The legacy dense kernel allocates fresh intermediates on every batch and
every ELT (a gather result, several term-application temporaries, a
combined block) — at 15 ELTs that is ~45 full-size allocations per batch,
all garbage a few microseconds later.  The fused ragged kernel in
:mod:`repro.core.kernels` instead borrows working arrays from a
:class:`ScratchBufferPool` and returns them when the batch is done, so a
multi-batch (or multi-layer) run touches the allocator a handful of times
total and peak intermediate memory is measurable rather than incidental.

Buffers are stored flat (1-D) per dtype and handed out as reshaped views
of the smallest free buffer with enough capacity, so one pool serves the
last (short) batch of a run as well as the full-size ones.  The pool also
keeps the peak number of bytes simultaneously lent out — the number the
``KERNEL-ABLATE`` benchmark reports as peak intermediate memory.

A pool is *not* thread-safe; concurrent workers (the multicore engine's
chunk tasks) each use their own pool.

:func:`stream_batches` builds on the pool to double-buffer a batched run:
two slot pools plus a one-deep background prefetch, so the fetch of batch
``N + 1`` (the CSR slice and gather indices) overlaps the reduce of batch
``N`` — the CPU mirror of the paper's chunk-prefetch scheme, which keeps
a staging buffer filling while the previous chunk computes.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, Iterator, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def _capacity(shape: Sequence[int] | int) -> int:
    if isinstance(shape, (int, np.integer)):
        return int(shape)
    n = 1
    for dim in shape:
        if dim < 0:
            raise ValueError(f"negative dimension in shape {tuple(shape)}")
        n *= int(dim)
    return n


class ScratchBufferPool:
    """Pool of reusable flat scratch arrays, keyed by dtype.

    Usage::

        pool = ScratchBufferPool()
        buf = pool.take((n_elts, n_occ), np.float64)   # uninitialised!
        ... use buf ...
        pool.give(buf)                                  # recycle

    ``take`` returns an *uninitialised* view (like ``np.empty``); callers
    that need zeros must fill them.  ``give`` accepts exactly the view
    that ``take`` returned; giving an unknown array is a silent no-op so
    callers may free unconditionally in ``finally`` blocks.
    """

    def __init__(self) -> None:
        # dtype.str -> free flat buffers (unordered; take() picks best fit)
        self._free: Dict[str, List[np.ndarray]] = {}
        # id(lent view) -> backing flat buffer
        self._lent: Dict[int, np.ndarray] = {}
        self._lent_bytes = 0
        #: peak bytes simultaneously lent out over the pool's lifetime
        self.peak_bytes = 0
        #: total bytes ever allocated (cache-miss allocations)
        self.allocated_bytes = 0
        #: take() calls served from a free buffer / by a new allocation
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def take(
        self, shape: Sequence[int] | int, dtype: np.dtype | type = np.float64
    ) -> np.ndarray:
        """Borrow an uninitialised array of ``shape``/``dtype``."""
        dt = np.dtype(dtype)
        n = _capacity(shape)
        bucket = self._free.get(dt.str, [])
        best = -1
        for i, buf in enumerate(bucket):
            if buf.size >= n and (best < 0 or buf.size < bucket[best].size):
                best = i
        if best >= 0:
            base = bucket.pop(best)
            self.hits += 1
        else:
            base = np.empty(max(n, 1), dtype=dt)
            self.allocated_bytes += base.nbytes
            self.misses += 1
        view = base[:n].reshape(shape)
        # A caller that dropped a borrowed view without give() may free its
        # id for reuse; evict any stale entry so accounting stays exact.
        stale = self._lent.pop(id(view), None)
        if stale is not None:
            self._lent_bytes -= stale.nbytes
        self._lent[id(view)] = base
        self._lent_bytes += base.nbytes
        self.peak_bytes = max(self.peak_bytes, self._lent_bytes)
        return view

    def give(self, view: np.ndarray | None) -> None:
        """Return a borrowed array to the pool (no-op for unknown arrays)."""
        if view is None:
            return
        base = self._lent.pop(id(view), None)
        if base is None:
            return
        self._lent_bytes -= base.nbytes
        self._free.setdefault(base.dtype.str, []).append(base)

    # ------------------------------------------------------------------
    @property
    def lent_bytes(self) -> int:
        """Bytes currently lent out."""
        return self._lent_bytes

    @property
    def free_bytes(self) -> int:
        """Bytes currently retained in free buffers."""
        return sum(b.nbytes for bucket in self._free.values() for b in bucket)

    def release_all(self) -> None:
        """Return every outstanding loan to the free lists.

        The double-buffer streamer uses this to retire a whole batch slot
        at once: each slot pool serves exactly one in-flight batch, so
        when the consumer advances past that batch every buffer the fetch
        staged can be reclaimed without tracking individual views.
        """
        for base in self._lent.values():
            self._free.setdefault(base.dtype.str, []).append(base)
        self._lent.clear()
        self._lent_bytes = 0

    def clear(self) -> None:
        """Drop all retained free buffers (outstanding loans unaffected)."""
        self._free.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for benchmark reports."""
        return {
            "peak_bytes": self.peak_bytes,
            "allocated_bytes": self.allocated_bytes,
            "lent_bytes": self._lent_bytes,
            "free_bytes": self.free_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScratchBufferPool(peak_bytes={self.peak_bytes}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def stream_batches(
    fetch: Callable[[int, ScratchBufferPool], T],
    n_batches: int,
    pools: Tuple[ScratchBufferPool, ScratchBufferPool] | None = None,
) -> Iterator[T]:
    """Double-buffered batch stream: fetch ``N + 1`` while ``N`` computes.

    ``fetch(i, pool)`` prepares batch ``i``'s inputs (a CSR slice, staged
    gather indices, ...), borrowing any staging arrays it needs from
    ``pool``.  Batches alternate between the two slot pools; a slot's
    loans are reclaimed wholesale (:meth:`ScratchBufferPool.release_all`)
    once the consumer advances past its batch, so at most two batches of
    staging are ever live — the "two-slot pool" of a classic double
    buffer.

    The next batch's fetch runs on one background thread and is submitted
    *before* the current batch is yielded, so it overlaps the consumer's
    compute.  With a single batch (or zero) no thread is spawned at all —
    degenerate runs pay nothing for the machinery.

    Exceptions from ``fetch`` propagate to the consumer at the batch they
    belong to; abandoning the iterator (``break``/exception) drains the
    in-flight fetch before returning, so no worker outlives the stream.
    """
    if n_batches < 0:
        raise ValueError(f"n_batches must be >= 0, got {n_batches}")
    if n_batches == 0:
        return
    slots = pools if pools is not None else (ScratchBufferPool(), ScratchBufferPool())
    if n_batches == 1:
        yield fetch(0, slots[0])
        slots[0].release_all()
        return
    with ThreadPoolExecutor(max_workers=1) as executor:
        pending = executor.submit(fetch, 0, slots[0])
        for i in range(n_batches):
            current = pending.result()
            if i + 1 < n_batches:
                # Slot (i + 1) % 2 was released when the consumer advanced
                # past batch i - 1, so the background fetch stages into a
                # quiescent pool while the consumer computes batch i.
                pending = executor.submit(fetch, i + 1, slots[(i + 1) % 2])
            yield current
            slots[i % 2].release_all()
