"""Thread-parallel helpers used by the multicore and multi-GPU engines.

The paper's OpenMP implementation assigns one logical thread per trial and
lets the runtime schedule them over cores; its multi-GPU implementation uses
one CPU thread per GPU.  NumPy releases the GIL inside fancy-indexing and
ufunc loops, so plain OS threads over *chunks of trials* give real
wall-clock parallelism here without the serialisation cost of pickling the
ELTs to worker processes (which would dominate at our workload sizes).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Sequence, Tuple, TypeVar

import numpy as np

T = TypeVar("T")


def available_cpu_count() -> int:
    """Number of CPUs usable by this process (honours affinity masks)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def chunk_ranges(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_chunks`` contiguous ``(start, stop)``.

    Chunks differ in size by at most one item; empty chunks are dropped so
    the result never contains degenerate ranges.

    >>> chunk_ranges(10, 3)
    [(0, 4), (4, 7), (7, 10)]
    """
    if n_items < 0:
        raise ValueError(f"n_items must be non-negative, got {n_items}")
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    base, extra = divmod(n_items, n_chunks)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        ranges.append((start, start + size))
        start += size
    return ranges


def balanced_chunk_ranges(
    offsets: Sequence[int] | np.ndarray, n_chunks: int
) -> List[Tuple[int, int]]:
    """Split a CSR-delimited item space into chunks of ~equal *weight*.

    ``offsets`` is a CSR offset array (``offsets[i]:offsets[i+1]``
    delimits item ``i``, e.g. a YET trial's occurrences); the split cuts
    at the item boundaries closest to equal cumulative weight, so ragged
    workloads hand every worker a near-equal share of actual work rather
    than of item counts.  This is the partitioning rule of the multi-GPU
    engine's ``balance="events"`` mode, shared here so the multicore
    engine's ragged path load-balances the same way.

    Degenerates to :func:`chunk_ranges` when all weights are zero; like
    it, empty chunks are dropped, so the result may have fewer than
    ``n_chunks`` entries but always covers ``[0, n_items)`` exactly.
    """
    if n_chunks <= 0:
        raise ValueError(f"n_chunks must be positive, got {n_chunks}")
    offs = np.asarray(offsets)
    if offs.ndim != 1 or offs.size < 1:
        raise ValueError("offsets must be 1-D with at least one entry")
    n_items = offs.size - 1
    total = int(offs[-1]) - int(offs[0])
    if n_items == 0:
        return []
    if total == 0:
        return chunk_ranges(n_items, n_chunks)
    targets = int(offs[0]) + np.arange(1, n_chunks) * (total / n_chunks)
    cuts = np.searchsorted(offs[1:], targets, side="left") + 1
    boundaries = [0]
    for cut in cuts:
        boundaries.append(int(min(max(cut, boundaries[-1] + 1), n_items)))
    boundaries.append(n_items)
    return [
        (start, stop)
        for start, stop in zip(boundaries, boundaries[1:])
        if stop > start
    ]


def run_threaded(
    tasks: Sequence[Callable[[], T]], max_workers: int | None = None
) -> List[T]:
    """Run callables on a thread pool, returning results in task order.

    Exceptions raised by any task propagate to the caller (after all tasks
    have been submitted), mirroring the fail-fast behaviour of a fork-join
    parallel region.
    """
    if not tasks:
        return []
    workers = max_workers or min(len(tasks), available_cpu_count())
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task) for task in tasks]
        return [future.result() for future in futures]
