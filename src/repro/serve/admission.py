"""Admission control: shed early, shed typed, protect the interactive lane.

The quote service melts gracefully only if overload is refused at the
*front door*: once requests queue unboundedly, every request's latency
grows without bound and the SLO is lost for all of them.  The gate here
implements the standard discipline:

* a **token bucket** bounds sustained request *rate* (burst-tolerant);
* an **in-flight cap** bounds queue depth (admitted-but-unfinished
  requests), which — by Little's law — bounds the latency of every
  admitted request at roughly ``depth / service_rate``;
* **priority lanes**: interactive quotes may use the whole gate, while
  batch work (sweep segments, bulk re-pricing) is capped at a
  configurable share, scaled down further by the brownout controller —
  so interactive traffic preempts batch work under pressure instead of
  queueing behind it.

Rejections raise :class:`Overloaded` — a *typed* response carrying the
reason and lane, never a silent timeout: the client learns immediately
that it should back off, and the shed is counted per reason in
:meth:`AdmissionGate.stats`.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional

#: the two admission lanes.
LANE_INTERACTIVE = "interactive"
LANE_BATCH = "batch"
LANES = (LANE_INTERACTIVE, LANE_BATCH)


class Overloaded(Exception):
    """Typed early-shed response: the service refused this request.

    Carries why (``reason``: ``"rate"``, ``"depth"``, ``"batch-depth"``,
    ``"sweeps-paused"``) and for which lane, so clients and load
    generators can distinguish shed-by-policy from failure.
    """

    def __init__(self, reason: str, lane: str = LANE_INTERACTIVE) -> None:
        super().__init__(f"overloaded ({reason}, lane={lane})")
        self.reason = reason
        self.lane = lane


class TokenBucket:
    """Sustained-rate limiter: ``rate`` tokens/second, ``burst`` capacity.

    ``try_take`` is non-blocking (admission never queues — that is the
    point); ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        if self.burst < 1.0:
            raise ValueError(f"burst must be >= 1, got {self.burst}")
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def try_take(self, n: float = 1.0) -> bool:
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._refilled_at) * self.rate
            )
            self._refilled_at = now
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class AdmissionGate:
    """Token-bucket + depth admission with priority lanes.

    Parameters
    ----------
    max_inflight:
        Total admitted-but-unfinished requests across both lanes (the
        queue-depth bound).
    batch_share:
        Fraction of ``max_inflight`` the batch lane may occupy (at
        least one slot when > 0).  The effective share is further
        multiplied by ``batch_factor()`` — the brownout controller's
        throttle, 1.0 in normal operation, smaller (down to 0.0) under
        sustained overload.
    bucket:
        Optional :class:`TokenBucket` bounding sustained rate; ``None``
        leaves rate unbounded (depth alone gates).
    batch_factor:
        Zero-argument callable polled at batch admission time.
    """

    def __init__(
        self,
        max_inflight: int,
        batch_share: float = 0.5,
        bucket: TokenBucket | None = None,
        batch_factor: Callable[[], float] | None = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        if not 0.0 <= batch_share <= 1.0:
            raise ValueError(
                f"batch_share must be in [0, 1], got {batch_share}"
            )
        self.max_inflight = int(max_inflight)
        self.batch_share = float(batch_share)
        self.bucket = bucket
        self._batch_factor = batch_factor or (lambda: 1.0)
        self._lock = threading.Lock()
        self._inflight: Dict[str, int] = {lane: 0 for lane in LANES}
        self.admitted: Dict[str, int] = {lane: 0 for lane in LANES}
        self.shed: Dict[str, int] = {}
        self.peak_inflight = 0

    # ------------------------------------------------------------------
    def batch_limit(self) -> int:
        """Current batch-lane depth cap (brownout-scaled)."""
        factor = max(0.0, min(1.0, float(self._batch_factor())))
        raw = self.max_inflight * self.batch_share * factor
        if raw <= 0.0:
            return 0
        return max(1, int(raw))

    def _shed(self, reason: str, lane: str) -> "Overloaded":
        with self._lock:
            self.shed[reason] = self.shed.get(reason, 0) + 1
        return Overloaded(reason, lane)

    def try_acquire(self, lane: str = LANE_INTERACTIVE) -> str:
        """Admit one request on ``lane`` or raise :class:`Overloaded`.

        Returns the lane (the "lease") to pass back to :meth:`release`.
        Rate is checked first — a rate-shed consumes no depth — then
        lane depth.  The token bucket only meters the batch lane when
        interactive traffic alone is within rate, i.e. batch requests
        draw tokens but an interactive request is never rate-shed in
        favour of earlier batch work beyond the bucket's burst.
        """
        if lane not in self._inflight:
            raise ValueError(f"unknown lane {lane!r} (use one of {LANES})")
        if self.bucket is not None and not self.bucket.try_take():
            raise self._shed("rate", lane)
        with self._lock:
            total = sum(self._inflight.values())
            if total >= self.max_inflight:
                pass  # fall through to the shed below (outside the lock)
            elif lane == LANE_BATCH and (
                self._inflight[LANE_BATCH] >= self.batch_limit()
            ):
                raise self._shed_locked("batch-depth", lane)
            else:
                self._inflight[lane] += 1
                self.admitted[lane] += 1
                self.peak_inflight = max(
                    self.peak_inflight, total + 1
                )
                return lane
        raise self._shed("depth", lane)

    def _shed_locked(self, reason: str, lane: str) -> "Overloaded":
        # already holding self._lock
        self.shed[reason] = self.shed.get(reason, 0) + 1
        return Overloaded(reason, lane)

    def release(self, lease: str) -> None:
        with self._lock:
            if self._inflight.get(lease, 0) < 1:
                raise RuntimeError(
                    f"release without acquire on lane {lease!r}"
                )
            self._inflight[lease] -= 1

    # ------------------------------------------------------------------
    def inflight(self, lane: str | None = None) -> int:
        with self._lock:
            if lane is not None:
                return self._inflight[lane]
            return sum(self._inflight.values())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "inflight": dict(self._inflight),
                "peak_inflight": self.peak_inflight,
                "admitted": dict(self.admitted),
                "shed": dict(self.shed),
                "batch_limit": self.batch_limit(),
                "tokens": (
                    self.bucket.tokens if self.bucket is not None else None
                ),
            }
