"""Open-loop load generation against the quote front-end.

A *closed-loop* driver (issue, wait, issue) can never overload the
system under test — its arrival rate collapses to the service rate, and
the measured "latency" flatters the server exactly when it is slowest.
SLO numbers therefore come from an **open-loop** generator: arrivals
are scheduled at absolute timestamps from the offered rate alone, and a
late generator fires immediately rather than silently stretching the
schedule (coordinated omission would under-count the tail otherwise).

:func:`run_open_loop` drives a :class:`~repro.serve.service.
QuoteFrontEnd` at a fixed offered rate and classifies every outcome —
served, shed (typed :class:`~repro.serve.admission.Overloaded`, by
reason), deadline-missed, errored — then summarises the *admitted*
latency distribution (p50/p95/p99) and goodput.  Shed requests are
excluded from the latency percentiles by construction: they are the
price of keeping the admitted ones inside the SLO.

:func:`measure_capacity` is the closed-loop complement: it saturates
the service's own pool with a batch and reports sustained quotes/sec,
the anchor the bench's 0.5x/1x/2x offered-load points scale from.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.pricing.realtime import QuoteRequest, QuoteService
from repro.serve.admission import LANE_INTERACTIVE, Overloaded
from repro.serve.service import QuoteFrontEnd
from repro.utils.latency import percentile
from repro.utils.retry import DeadlineExceeded


@dataclass
class LoadReport:
    """Outcome of one open-loop run at a fixed offered rate."""

    offered: int
    served: int
    shed: int
    deadline_missed: int
    errored: int
    seconds: float
    offered_qps: float
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    #: per-served-request latencies (seconds, arrival to completion)
    latencies: List[float] = field(default_factory=list)

    @property
    def goodput_qps(self) -> float:
        """Served requests per second of wall time."""
        if self.seconds <= 0:
            return 0.0
        return self.served / self.seconds

    @property
    def shed_rate(self) -> float:
        if self.offered == 0:
            return 0.0
        return self.shed / self.offered

    def latency_quantile(self, q: float) -> float | None:
        if not self.latencies:
            return None
        return percentile(self.latencies, q)

    def as_row(self) -> Dict[str, object]:
        """Flat JSON-able summary (one benchmark-report row)."""
        return {
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "deadline_missed": self.deadline_missed,
            "errored": self.errored,
            "seconds": round(self.seconds, 4),
            "offered_qps": round(self.offered_qps, 2),
            "goodput_qps": round(self.goodput_qps, 2),
            "shed_rate": round(self.shed_rate, 4),
            "shed_reasons": dict(self.shed_reasons),
            "p50_seconds": self.latency_quantile(0.50),
            "p95_seconds": self.latency_quantile(0.95),
            "p99_seconds": self.latency_quantile(0.99),
        }


async def _drive(
    frontend: QuoteFrontEnd,
    requests: Sequence[QuoteRequest],
    rate_qps: float,
    lane: str,
    timeout: float | None,
    clock,
) -> LoadReport:
    report = LoadReport(
        offered=len(requests),
        served=0,
        shed=0,
        deadline_missed=0,
        errored=0,
        seconds=0.0,
        offered_qps=rate_qps,
    )

    async def one(request: QuoteRequest) -> None:
        arrived = clock()
        try:
            await frontend.quote_request(
                request, lane=lane, timeout=timeout
            )
        except Overloaded as exc:
            report.shed += 1
            report.shed_reasons[exc.reason] = (
                report.shed_reasons.get(exc.reason, 0) + 1
            )
        except DeadlineExceeded:
            report.deadline_missed += 1
        except Exception:
            report.errored += 1
        else:
            report.served += 1
            report.latencies.append(clock() - arrived)

    started = clock()
    tasks = []
    for index, request in enumerate(requests):
        # Absolute-timestamp schedule: arrival i is due at started +
        # i/rate regardless of how request i-1 fared.  A late generator
        # fires immediately (no sleep), never stretches the schedule.
        due = started + index / rate_qps
        delay = due - clock()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.ensure_future(one(request)))
    if tasks:
        await asyncio.gather(*tasks)
    report.seconds = max(clock() - started, 1e-9)
    return report


def run_open_loop(
    frontend: QuoteFrontEnd,
    requests: Sequence[QuoteRequest],
    rate_qps: float,
    lane: str = LANE_INTERACTIVE,
    timeout: float | None = None,
    clock=time.perf_counter,
) -> LoadReport:
    """Offer ``requests`` at ``rate_qps`` (open loop) and classify
    every outcome.

    ``timeout`` (seconds) gives each request its own deadline from its
    arrival instant — the budget then propagates end-to-end through the
    quote stack.  Runs its own event loop; call from synchronous test
    and benchmark code.
    """
    if rate_qps <= 0:
        raise ValueError(f"rate_qps must be > 0, got {rate_qps}")
    return asyncio.run(
        _drive(frontend, list(requests), rate_qps, lane, timeout, clock)
    )


def measure_capacity(
    service: QuoteService,
    requests: Sequence[QuoteRequest],
    clock=time.perf_counter,
) -> float:
    """Closed-loop sustained capacity of the service, in quotes/sec.

    Saturates the service's own worker pool with the whole batch and
    divides by wall time.  Used to anchor the open-loop offered rates
    (0.5x/1x/2x capacity) so the bench measures *relative* overload,
    independent of the machine it runs on.
    """
    if not requests:
        raise ValueError("need at least one request to measure capacity")
    started = clock()
    service.quote_many(list(requests))
    seconds = max(clock() - started, 1e-9)
    return len(requests) / seconds
