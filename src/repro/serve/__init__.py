"""SLO-grade quote serving: admission, deadlines, coalescing, brownout.

The serving tier the paper's real-time pricing story needs once quotes
stop being a benchmark and start being a service: offered load is not
under our control, so the front-end bounds what it *accepts* (admission
control), bounds how long anything it accepted may take (end-to-end
deadlines), merges duplicate in-flight work (coalescing), and degrades
in a documented order under sustained overload (brownout: batch lanes
first, sweep submission last).  See ``README.md`` § "Serving under
load" and the ``SERVE-ABLATE`` experiment.
"""

from repro.serve.admission import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    LANES,
    AdmissionGate,
    Overloaded,
    TokenBucket,
)
from repro.serve.brownout import (
    STATE_BROWNOUT,
    STATE_NORMAL,
    STATE_PAUSED,
    BrownoutController,
)
from repro.serve.loadgen import (
    LoadReport,
    measure_capacity,
    run_open_loop,
)
from repro.serve.service import QuoteFrontEnd

__all__ = [
    "AdmissionGate",
    "BrownoutController",
    "LANE_BATCH",
    "LANE_INTERACTIVE",
    "LANES",
    "LoadReport",
    "Overloaded",
    "QuoteFrontEnd",
    "STATE_BROWNOUT",
    "STATE_NORMAL",
    "STATE_PAUSED",
    "TokenBucket",
    "measure_capacity",
    "run_open_loop",
]
