"""Brownout: degrade deliberately, in stages, and visibly.

Under sustained overload the service sheds in a fixed order — the
cheapest traffic first, the freshest last:

``normal``
    everything runs; batch lanes get their full configured share.
``brownout``
    the shed rate over the sliding window crossed ``enter_threshold``:
    batch admission is throttled to ``brownout_batch_factor`` of its
    share (interactive quotes are untouched).
``paused``
    pressure persisted a full window *while already browned out*:
    sweep submission stops entirely (``allow_sweep_submission`` is
    False, batch factor 0.0) until pressure clears.

Recovery runs the ladder in reverse with hysteresis: the shed rate must
fall below ``exit_threshold`` (< ``enter_threshold``) for a full
``min_dwell_seconds`` before stepping down one stage, so the controller
never flaps on a noisy boundary.

Every admission outcome is reported to :meth:`observe`; every state
change lands in :attr:`transitions` (and the counters in
:meth:`stats`), so a load test can assert not just *that* the service
degraded but that it degraded in the documented order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

STATE_NORMAL = "normal"
STATE_BROWNOUT = "brownout"
STATE_PAUSED = "paused"
STATES = (STATE_NORMAL, STATE_BROWNOUT, STATE_PAUSED)

#: escalation order (index = severity).
_LADDER = {state: rank for rank, state in enumerate(STATES)}


class BrownoutController:
    """Sliding-window shed-rate state machine with hysteresis.

    Parameters
    ----------
    window_seconds:
        Width of the sliding window over which the shed rate is
        measured.
    enter_threshold / exit_threshold:
        Shed-rate fractions: escalate one stage when the windowed rate
        reaches ``enter_threshold``; de-escalate one stage only after
        the rate has stayed below ``exit_threshold`` for
        ``min_dwell_seconds``.  ``exit < enter`` gives the hysteresis
        band.
    min_dwell_seconds:
        Minimum time in a stage before moving (either direction), so a
        single burst cannot ratchet straight to ``paused`` and a single
        quiet tick cannot un-pause.
    brownout_batch_factor:
        Batch-share multiplier while browned out (1.0 when normal,
        0.0 when paused).
    min_samples:
        Admission outcomes required in the window before the rate is
        trusted (an empty window is not "0% shed").
    clock:
        Injectable monotonic clock for deterministic tests.
    """

    def __init__(
        self,
        window_seconds: float = 2.0,
        enter_threshold: float = 0.5,
        exit_threshold: float = 0.1,
        min_dwell_seconds: float = 1.0,
        brownout_batch_factor: float = 0.25,
        min_samples: int = 10,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be > 0, got {window_seconds}")
        if not 0.0 < exit_threshold < enter_threshold <= 1.0:
            raise ValueError(
                "need 0 < exit_threshold < enter_threshold <= 1, got "
                f"exit={exit_threshold}, enter={enter_threshold}"
            )
        if not 0.0 <= brownout_batch_factor <= 1.0:
            raise ValueError(
                f"brownout_batch_factor must be in [0, 1], "
                f"got {brownout_batch_factor}"
            )
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.window_seconds = float(window_seconds)
        self.enter_threshold = float(enter_threshold)
        self.exit_threshold = float(exit_threshold)
        self.min_dwell_seconds = float(min_dwell_seconds)
        self.brownout_batch_factor = float(brownout_batch_factor)
        self.min_samples = int(min_samples)
        self._clock = clock
        self._lock = threading.Lock()
        #: (timestamp, was_shed) admission outcomes inside the window.
        self._events: Deque[Tuple[float, bool]] = deque()
        self._state = STATE_NORMAL
        self._entered_at = clock()
        #: (timestamp, from_state, to_state, shed_rate) history.
        self.transitions: List[Tuple[float, str, str, float]] = []

    # ------------------------------------------------------------------
    def _trim(self, now: float) -> None:
        cutoff = now - self.window_seconds
        while self._events and self._events[0][0] < cutoff:
            self._events.popleft()

    def _shed_rate(self, now: float) -> float | None:
        """Windowed shed fraction, or ``None`` below ``min_samples``."""
        self._trim(now)
        if len(self._events) < self.min_samples:
            return None
        shed = sum(1 for _, was_shed in self._events if was_shed)
        return shed / len(self._events)

    def _move(self, to_state: str, now: float, rate: float) -> None:
        self.transitions.append((now, self._state, to_state, rate))
        self._state = to_state
        self._entered_at = now

    def observe(self, shed: bool) -> str:
        """Record one admission outcome; returns the (possibly new) state.

        Escalation and recovery both require ``min_dwell_seconds`` in
        the current stage, and move exactly one rung per call — the
        ladder is walked, never jumped.
        """
        with self._lock:
            now = self._clock()
            self._events.append((now, bool(shed)))
            rate = self._shed_rate(now)
            if rate is None:
                return self._state
            dwelled = (now - self._entered_at) >= self.min_dwell_seconds
            rank = _LADDER[self._state]
            if rate >= self.enter_threshold and dwelled and rank < len(STATES) - 1:
                self._move(STATES[rank + 1], now, rate)
            elif rate < self.exit_threshold and dwelled and rank > 0:
                self._move(STATES[rank - 1], now, rate)
            return self._state

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def batch_factor(self) -> float:
        """Multiplier for the batch lane's admission share.

        This is what :class:`~repro.serve.admission.AdmissionGate`
        polls: 1.0 normal, ``brownout_batch_factor`` browned out, 0.0
        paused — batch lanes throttle first.
        """
        state = self.state
        if state == STATE_NORMAL:
            return 1.0
        if state == STATE_BROWNOUT:
            return self.brownout_batch_factor
        return 0.0

    def allow_sweep_submission(self) -> bool:
        """Whether new sweeps may be submitted (False only when paused)."""
        return self.state != STATE_PAUSED

    def stats(self) -> Dict[str, object]:
        with self._lock:
            now = self._clock()
            rate = self._shed_rate(now)
            return {
                "state": self._state,
                "batch_factor": (
                    1.0
                    if self._state == STATE_NORMAL
                    else self.brownout_batch_factor
                    if self._state == STATE_BROWNOUT
                    else 0.0
                ),
                "shed_rate_window": rate,
                "window_samples": len(self._events),
                "seconds_in_state": now - self._entered_at,
                "transitions": [
                    {
                        "at": at,
                        "from": src,
                        "to": dst,
                        "shed_rate": round(shed_rate, 4),
                    }
                    for at, src, dst, shed_rate in self.transitions
                ],
            }
