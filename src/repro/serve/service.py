"""The asyncio quote front-end: SLO-grade serving over ``QuoteService``.

:class:`QuoteFrontEnd` is the layer a network server would mount: it
wraps a :class:`~repro.pricing.realtime.QuoteService` (and, through it,
the plan cache, the tiered store and the fleet queue) with the serving
disciplines that keep an overloaded service *predictable*:

* **admission control** — every request passes the
  :class:`~repro.serve.admission.AdmissionGate` before touching a
  worker; excess load is refused with the typed
  :class:`~repro.serve.admission.Overloaded`, never queued into
  oblivion;
* **deadline propagation** — a request's budget
  (:class:`~repro.utils.retry.Deadline`) rides from the front door
  through the quote pool, the plan caches, the store fetches and the
  retry loops; expired work is cancelled where it stands, not computed;
* **request coalescing** — identical in-flight candidates
  ``(elt_ids, terms, layer_id)`` share one computation; joiners await
  the leader's future (each bounded by its *own* deadline) on top of
  the plan-level cache's in-flight dedup;
* **brownout** — sustained shedding walks the
  :class:`~repro.serve.brownout.BrownoutController` ladder: batch lanes
  throttle first, then sweep submission pauses, every transition
  visible in :meth:`stats`.

The front-end never changes what a quote *is*: admitted requests
produce records bit-for-bit identical to a direct
:meth:`~repro.pricing.realtime.QuoteService.quote` (and therefore to a
sequential engine run).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Dict, Iterable, Sequence, Tuple

from repro.data.layer import LayerTerms
from repro.pricing.realtime import QuoteRecord, QuoteRequest, QuoteService
from repro.serve.admission import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    AdmissionGate,
    Overloaded,
    TokenBucket,
)
from repro.serve.brownout import BrownoutController
from repro.store.health import health_from_stats
from repro.utils.latency import LatencyTracker
from repro.utils.retry import Deadline, DeadlineExceeded


class QuoteFrontEnd:
    """Admission-controlled, deadline-aware asyncio facade over a
    :class:`~repro.pricing.realtime.QuoteService`.

    Parameters
    ----------
    service:
        The quote service doing the actual pricing (owns the worker
        pool, the plan caches and the optional store).
    max_inflight:
        Depth bound of the admission gate (default: twice the service's
        worker count — one computing, one on deck per worker).
    rate / burst:
        Optional sustained-rate bound (a
        :class:`~repro.serve.admission.TokenBucket`); ``None`` gates on
        depth alone.
    batch_share:
        Fraction of ``max_inflight`` the batch lane may hold in normal
        operation (brownout scales it down from there).
    brownout:
        A :class:`~repro.serve.brownout.BrownoutController`; the default
        is tuned for test/benchmark time scales (2 s window).
    clock:
        Injectable monotonic clock shared with deadlines and latency
        accounting.
    """

    def __init__(
        self,
        service: QuoteService,
        max_inflight: int | None = None,
        rate: float | None = None,
        burst: float | None = None,
        batch_share: float = 0.5,
        brownout: BrownoutController | None = None,
        clock=time.monotonic,
    ) -> None:
        self.service = service
        self._clock = clock
        self.brownout = brownout or BrownoutController(clock=clock)
        if max_inflight is None:
            max_inflight = 2 * service.max_workers
        bucket = (
            TokenBucket(rate, burst, clock=clock) if rate is not None else None
        )
        self.gate = AdmissionGate(
            max_inflight=max_inflight,
            batch_share=batch_share,
            bucket=bucket,
            batch_factor=self.brownout.batch_factor,
        )
        self.latency = LatencyTracker(maxlen=4096)
        #: in-flight shared futures keyed by candidate identity.
        self._inflight: Dict[Tuple, asyncio.Future] = {}
        self.served = 0
        self.coalesced = 0
        self.deadline_misses = 0
        self.errors = 0
        self.sweeps_rejected = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _key(
        elt_ids: Sequence[int], terms: LayerTerms, layer_id: int
    ) -> Tuple:
        return (
            tuple(int(e) for e in elt_ids),
            terms.as_tuple(),
            int(layer_id),
        )

    async def _await_shared(
        self, shared: asyncio.Future, deadline: Deadline | None
    ) -> QuoteRecord:
        """Await the shared computation, bounded by *this* request's
        budget.  ``shield`` keeps a joiner's timeout from cancelling the
        leader's computation (other requesters still want it)."""
        if deadline is None:
            return await asyncio.shield(shared)
        try:
            return await asyncio.wait_for(
                asyncio.shield(shared), timeout=deadline.remaining()
            )
        except asyncio.TimeoutError:
            self.deadline_misses += 1
            raise DeadlineExceeded(
                "quote missed its deadline awaiting the shared computation"
            ) from None

    async def quote(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
        lane: str = LANE_INTERACTIVE,
        deadline: Deadline | None = None,
        timeout: float | None = None,
    ) -> QuoteRecord:
        """Price one candidate under admission control and a deadline.

        Raises :class:`~repro.serve.admission.Overloaded` when shed at
        the gate (typed, immediate — the request consumed no worker
        time) and :class:`~repro.utils.retry.DeadlineExceeded` when the
        budget (``deadline``, or ``timeout`` seconds from now) expires
        first.  An identical candidate already in flight is *coalesced*:
        no new admission, no new work, just an awaited share of the
        leader's result.
        """
        if timeout is not None:
            if deadline is not None:
                raise ValueError("pass deadline or timeout, not both")
            deadline = Deadline.after(timeout, clock=self._clock)
        key = self._key(elt_ids, terms, layer_id)
        shared = self._inflight.get(key)
        if shared is not None and not shared.done():
            self.coalesced += 1
            return await self._await_shared(shared, deadline)

        try:
            lease = self.gate.try_acquire(lane)
        except Overloaded:
            self.brownout.observe(shed=True)
            raise
        self.brownout.observe(shed=False)

        started = self._clock()
        shared = asyncio.wrap_future(
            self.service.quote_async(
                list(key[0]), terms, layer_id=layer_id, deadline=deadline
            )
        )
        self._inflight[key] = shared

        def _settle(fut: asyncio.Future) -> None:
            # Runs on the event loop when the *computation* finishes —
            # that, not the leader's await, is when gate capacity frees.
            self.gate.release(lease)
            if self._inflight.get(key) is fut:
                del self._inflight[key]
            if fut.cancelled():
                self.errors += 1
                return
            exc = fut.exception()
            if exc is None:
                self.served += 1
                self.latency.record(self._clock() - started)
            elif isinstance(exc, DeadlineExceeded):
                self.deadline_misses += 1
            else:
                self.errors += 1

        shared.add_done_callback(_settle)
        return await self._await_shared(shared, deadline)

    async def quote_request(
        self,
        request: QuoteRequest,
        lane: str = LANE_INTERACTIVE,
        deadline: Deadline | None = None,
        timeout: float | None = None,
    ) -> QuoteRecord:
        """:meth:`quote` over a prepared :class:`QuoteRequest`."""
        return await self.quote(
            request.elt_ids,
            request.terms,
            layer_id=request.layer_id,
            lane=lane,
            deadline=deadline,
            timeout=timeout,
        )

    # ------------------------------------------------------------------
    def enqueue_quotes(
        self,
        queue,
        requests: Iterable[QuoteRequest | Tuple],
        **kwargs: Any,
    ):
        """Brownout-gated fleet offload.

        Delegates to
        :meth:`~repro.pricing.realtime.QuoteService.enqueue_quotes`
        unless the brownout controller has escalated to ``paused`` — the
        last rung of the degradation ladder stops feeding the fleet new
        sweeps while interactive traffic is being shed.
        """
        if not self.brownout.allow_sweep_submission():
            self.sweeps_rejected += 1
            raise Overloaded("sweeps-paused", LANE_BATCH)
        return self.service.enqueue_quotes(queue, requests, **kwargs)

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """The whole serving picture in one dict.

        The active kernel backend, gate occupancy and sheds, brownout
        state and transitions, request outcomes and admitted-latency
        percentiles, the plan caches, and — when store-backed — the flattened
        store health (breaker states, degradation counters, hedged-read
        wins/losses via :func:`repro.store.health.health_from_stats`).
        """
        cache = self.service.cache_stats()
        out: Dict[str, object] = {
            "backend": self.service.backend_name(),
            "gate": self.gate.stats(),
            "brownout": self.brownout.stats(),
            "requests": {
                "served": self.served,
                "coalesced": self.coalesced,
                "deadline_misses": self.deadline_misses,
                "errors": self.errors,
                "sweeps_rejected": self.sweeps_rejected,
            },
            "latency": self.latency.summary(),
            "cache": cache,
        }
        if self.service.store is not None:
            out["store_health"] = health_from_stats(cache["store"])
        return out
