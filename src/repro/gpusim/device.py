"""Device specifications for the simulated GPUs.

Numbers are taken from the paper's Section III hardware description and
the public NVIDIA datasheets for the Fermi-generation Tesla C2075 and
M2090.  (The paper describes the M2090 as "512 processor cores organised
as 14 streaming multi-processors each with 32 symmetric multi-processors";
512 cores at 32 cores/SM is 16 SMs — we follow the core count, which is
what the datasheet confirms.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one simulated GPU.

    Attributes (Fermi-era semantics)
    --------------------------------
    name:
        Marketing name, e.g. ``"Tesla C2075"``.
    n_sms:
        Number of streaming multiprocessors.
    cores_per_sm:
        CUDA cores per SM (32 on Fermi).
    clock_ghz:
        Core clock in GHz.
    global_mem_bytes:
        Usable global memory (the paper reports 5.375 GB with ECC on).
    mem_bandwidth_gbs:
        Peak global-memory bandwidth in GB/s.
    shared_mem_per_sm_bytes:
        Shared memory per SM (48 KB in the Fermi 48/16 configuration).
    constant_mem_bytes:
        Constant memory size (64 KB).
    registers_per_sm:
        32-bit registers per SM (32768 on Fermi).
    max_threads_per_sm / max_blocks_per_sm / max_threads_per_block:
        Occupancy limits (1536 / 8 / 1024 on Fermi).
    warp_size:
        Threads per warp (32).
    peak_sp_gflops / peak_dp_gflops:
        Peak single/double precision throughput in GFLOP/s.
    global_latency_cycles / shared_latency_cycles / constant_latency_cycles:
        Unloaded access latencies used by the latency-bound term of the
        cost model.
    pcie_bandwidth_gbs:
        Host↔device transfer bandwidth (PCIe 2.0 x16 ≈ 6 GB/s effective).
    transaction_bytes:
        Global-memory transaction granularity (128-byte cache lines).
    """

    name: str
    n_sms: int
    cores_per_sm: int
    clock_ghz: float
    global_mem_bytes: int
    mem_bandwidth_gbs: float
    shared_mem_per_sm_bytes: int = 48 * 1024
    constant_mem_bytes: int = 64 * 1024
    registers_per_sm: int = 32768
    max_threads_per_sm: int = 1536
    max_blocks_per_sm: int = 8
    max_threads_per_block: int = 1024
    warp_size: int = 32
    peak_sp_gflops: float = 1030.0
    peak_dp_gflops: float = 515.0
    global_latency_cycles: int = 600
    shared_latency_cycles: int = 30
    constant_latency_cycles: int = 8
    pcie_bandwidth_gbs: float = 6.0
    transaction_bytes: int = 128

    def __post_init__(self) -> None:
        check_positive("n_sms", self.n_sms)
        check_positive("cores_per_sm", self.cores_per_sm)
        check_positive("clock_ghz", self.clock_ghz)
        check_positive("mem_bandwidth_gbs", self.mem_bandwidth_gbs)
        check_positive("warp_size", self.warp_size)
        if self.max_threads_per_block % self.warp_size != 0:
            raise ValueError(
                "max_threads_per_block must be a warp multiple, got "
                f"{self.max_threads_per_block}"
            )

    @property
    def n_cores(self) -> int:
        return self.n_sms * self.cores_per_sm

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    @property
    def mem_bandwidth_bytes(self) -> float:
        """Peak bandwidth in bytes/second."""
        return self.mem_bandwidth_gbs * 1e9

    @property
    def pcie_bandwidth_bytes(self) -> float:
        return self.pcie_bandwidth_gbs * 1e9

    def peak_flops(self, dtype_bytes: int) -> float:
        """Peak FLOP/s for the working precision (4 → SP, 8 → DP)."""
        gflops = self.peak_sp_gflops if dtype_bytes <= 4 else self.peak_dp_gflops
        return gflops * 1e9

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name}: {self.n_cores} cores / {self.n_sms} SMs @ "
            f"{self.clock_ghz} GHz, {self.mem_bandwidth_gbs} GB/s"
        )


# ----------------------------------------------------------------------
# Presets used in the paper's experiments
# ----------------------------------------------------------------------
TESLA_C2075 = DeviceSpec(
    name="Tesla C2075",
    n_sms=14,
    cores_per_sm=32,
    clock_ghz=1.15,
    global_mem_bytes=int(5.375 * 2**30),
    mem_bandwidth_gbs=144.0,
    peak_sp_gflops=1030.0,
    peak_dp_gflops=515.0,
)
"""The paper's single-GPU platform (448 cores, 14 SMs, 144 GB/s)."""

TESLA_M2090 = DeviceSpec(
    name="Tesla M2090",
    n_sms=16,
    cores_per_sm=32,
    clock_ghz=1.30,
    global_mem_bytes=int(5.375 * 2**30),
    mem_bandwidth_gbs=177.0,
    peak_sp_gflops=1331.0,
    peak_dp_gflops=665.0,
)
"""One GPU of the paper's four-GPU platform (512 cores, 177 GB/s)."""
