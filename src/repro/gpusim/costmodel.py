"""Cost model: price a kernel's counter ledger into modeled device seconds.

The model combines four bound terms, taking the maximum of the overlapping
ones (a classical roofline-with-latency treatment):

* **Bandwidth bound** — bytes moved over achievable bandwidth.  Achievable
  bandwidth is the datasheet peak derated by :data:`ACHIEVABLE_BW_FRACTION`
  (ECC-on Fermi sustains ~75% of peak on streaming), scaled by a
  *concurrency factor*: a memory-bound kernel only saturates the bus if
  enough warps (or enough independent loads per thread, ``mlp``) are in
  flight to cover the ~600-cycle latency.  This term produces Figure 2's
  block-size curve (occupancy ramp) and Figure 4's warp-size optimum
  (sub-warp blocks waste issue slots; shared-memory-hungry blocks cap
  residency but prefetch ``mlp`` keeps the bus busy).
* **Compute bound** — FLOPs over peak for the working precision.
* **Issue bound** — dynamic instructions over the SM issue rate (this is
  what loop unrolling improves).
* **Shared/constant pipes** — accesses over their aggregate throughput.

A fixed per-launch overhead and a per-block scheduling overhead are added
on top.  All constants are module-level and documented so the calibration
is inspectable; tests assert the *shapes* (orderings, optima, saturation
points), which are robust to the exact constants.

What gets priced depends on the kernel path's ledger: with
``kernel="dense"`` the engines record the paper's padded CUDA traffic
(:func:`repro.engines.gpu_common.record_basic_traffic` /
``record_optimized_traffic``), which is also what the analytic perfmodel
prices — the model↔engine consistency contract.  With
``kernel="ragged"`` they record the fused formulation's own traffic
(``record_ragged_traffic``: coalesced CSR id + offset streams, the fused
gather's random reads, on-chip staging instead of global intermediates,
one strided reduction pass), so modeled GPU seconds show the same fusion
win the CPU wall clock measures — largest on the basic kernel, parity on
the fully chunked optimised kernel, which is already on-chip.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.hierarchy import KernelLaunch
from repro.gpusim.memory import DeviceCounters
from repro.gpusim.occupancy import OccupancyResult, compute_occupancy

#: Fraction of datasheet bandwidth achievable with ECC on (Fermi ~0.75).
ACHIEVABLE_BW_FRACTION = 0.75

#: Occupancy at which a unit-MLP kernel saturates the memory bus.  Below
#: this, too few warps are resident to cover the ~600-cycle global
#: latency and effective bandwidth ramps down linearly; 0.8 reproduces
#: Figure 2's observed behaviour (128 threads/block measurably slower,
#: flat beyond 256).
SATURATION_OCCUPANCY = 0.8

#: Floor on the concurrency factor (a single resident warp still makes
#: some progress).
MIN_CONCURRENCY_FACTOR = 0.02

#: Fixed host-side cost of one kernel launch (driver + dispatch), seconds.
LAUNCH_OVERHEAD_S = 20e-6

#: SM cycles to schedule one thread block (CUDA block dispatch cost).
BLOCK_SCHED_CYCLES = 300

#: Instructions issued per SM per cycle (Fermi dual-issue, derated).
ISSUE_PER_SM_PER_CYCLE = 1.0

#: Fraction of kernel time lost to block-wide barriers when a single
#: block is resident per SM (nothing to swap in during __syncthreads
#: stalls).  Kernels that stage chunks through shared memory declare a
#: non-zero ``barrier_intensity``; with ``b`` resident blocks the stall
#: factor is ``1 + intensity / b`` — the mechanism behind the paper's
#: Figure 4 preference for warp-sized blocks (more resident blocks to
#: swap) over shared-memory-saturating large blocks.


@dataclass(frozen=True)
class CostBreakdown:
    """Modeled time of one kernel launch, by bound.

    ``total`` is ``max(bandwidth, latencyless compute+issue pipes)`` plus
    overheads; the individual terms are retained so benchmarks can report
    *why* a configuration is slow (e.g. Figure 4's sub-warp penalty shows
    up in ``bandwidth_s`` via the lane derate).
    """

    bandwidth_s: float
    compute_s: float
    issue_s: float
    shared_s: float
    constant_s: float
    overhead_s: float
    concurrency_factor: float
    occupancy: OccupancyResult

    @property
    def total(self) -> float:
        on_chip = self.compute_s + self.issue_s + self.shared_s + self.constant_s
        return max(self.bandwidth_s, on_chip) + self.overhead_s

    @property
    def memory_bound(self) -> bool:
        """True when the global-memory term dominates (the ARA regime)."""
        on_chip = self.compute_s + self.issue_s + self.shared_s + self.constant_s
        return self.bandwidth_s >= on_chip


def concurrency_factor(
    device: DeviceSpec,
    launch: KernelLaunch,
    occupancy: OccupancyResult,
    mlp: float,
) -> float:
    """How close the launch gets to saturating the memory system, in (0, 1].

    ``occupancy × mlp`` measures in-flight memory requests relative to a
    fully occupied unit-MLP kernel; the bus saturates when that product
    reaches :data:`SATURATION_OCCUPANCY`.  Sub-warp blocks are additionally
    derated by lane utilisation: a 16-thread block occupies a full warp
    issue slot but produces half the memory requests per issue — the
    mechanism behind Figure 4's optimum at the warp size.
    """
    if not occupancy.launchable:
        raise ValueError(
            "launch is infeasible on this device (zero resident blocks)"
        )
    lane_util = launch.lane_utilization(device.warp_size)
    raw = occupancy.occupancy * max(mlp, 1.0) / SATURATION_OCCUPANCY
    return max(MIN_CONCURRENCY_FACTOR, min(1.0, raw)) * lane_util


def estimate_kernel_seconds(
    device: DeviceSpec,
    launch: KernelLaunch,
    counters: DeviceCounters,
    mlp: float = 1.0,
    barrier_intensity: float = 0.0,
) -> CostBreakdown:
    """Price one kernel launch.

    Parameters
    ----------
    device, launch:
        Where and how the kernel runs (occupancy is recomputed here).
    counters:
        The traffic/instruction ledger the kernel recorded.
    mlp:
        Memory-level parallelism per thread: how many independent global
        loads each thread keeps in flight.  The basic kernel is ~1 (its
        loads feed immediately into global read-modify-writes); the
        optimised kernel prefetches whole chunks, giving mlp equal to the
        chunk length.
    barrier_intensity:
        Block-barrier stall exposure of the kernel (0 = no barriers).
        Applied as a ``1 + intensity / blocks_per_sm`` factor on the
        bandwidth term: barrier stalls in a sole resident block cannot be
        hidden by swapping in another block.
    """
    if barrier_intensity < 0:
        raise ValueError(f"barrier_intensity must be >= 0, got {barrier_intensity}")
    occ = compute_occupancy(device, launch)
    factor = concurrency_factor(device, launch, occ, mlp)

    stall = 1.0 + (
        barrier_intensity / occ.blocks_per_sm if occ.blocks_per_sm else 0.0
    )
    achievable = device.mem_bandwidth_bytes * ACHIEVABLE_BW_FRACTION * factor
    bandwidth_s = counters.total_global_bytes_moved / achievable * stall

    compute_s = counters.flops_sp / device.peak_flops(4) + (
        counters.flops_dp / device.peak_flops(8)
    )

    clock_hz = device.clock_ghz * 1e9
    issue_rate = device.n_sms * ISSUE_PER_SM_PER_CYCLE * clock_hz
    issue_s = counters.instructions / issue_rate

    # Shared memory: 32 banks per SM, one 4-byte access per bank per cycle.
    shared_rate = device.n_sms * device.warp_size * clock_hz
    shared_s = counters.shared_accesses / shared_rate

    # Constant cache broadcasts: one warp-read per cycle per SM.
    constant_rate = device.n_sms * clock_hz
    constant_s = counters.constant_accesses / constant_rate

    overhead_s = LAUNCH_OVERHEAD_S + (
        launch.n_blocks * BLOCK_SCHED_CYCLES / (device.n_sms * clock_hz)
    )

    return CostBreakdown(
        bandwidth_s=bandwidth_s,
        compute_s=compute_s,
        issue_s=issue_s,
        shared_s=shared_s,
        constant_s=constant_s,
        overhead_s=overhead_s,
        concurrency_factor=factor,
        occupancy=occ,
    )
