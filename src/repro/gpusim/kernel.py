"""Simulated GPU device: memory ledger, kernel launch and execution.

A :class:`GPUDevice` owns a global-memory allocation ledger (so exceeding
the Tesla's 5.375 GB fails — which is why engines stage the YET in chunks,
like the real implementation must) and executes :class:`SimKernel` objects.

Execution model
---------------
Kernels are written against logical *thread ranges*: the paper's design
assigns one thread per trial, so a kernel processes trials
``[start, stop)`` vectorised with NumPy while recording its memory traffic
into a :class:`~repro.gpusim.memory.DeviceCounters` ledger.  Functional
results are independent of the block geometry; the geometry (threads per
block, shared memory per block, registers) feeds the occupancy and cost
model, which turns the ledger into modeled device seconds.  This is the
standard trade made by architecture simulators operating at transaction
granularity: exact numerics, statistical timing.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict

from repro.gpusim.costmodel import CostBreakdown, estimate_kernel_seconds
from repro.gpusim.device import DeviceSpec
from repro.gpusim.hierarchy import KernelLaunch
from repro.gpusim.memory import DeviceCounters
from repro.gpusim.occupancy import compute_occupancy
from repro.gpusim.transfer import TransferModel


class SimKernel(abc.ABC):
    """A kernel runnable on :class:`GPUDevice`.

    Subclasses implement :meth:`run_range` — the kernel body over a
    contiguous range of logical threads — and declare the resource
    footprint the cost model needs.
    """

    #: human-readable kernel name (reports / logs)
    name: str = "kernel"

    #: register footprint per thread (occupancy input)
    registers_per_thread: int = 24

    #: memory-level parallelism per thread: independent global loads in
    #: flight (1 for naive loops, chunk length for prefetching kernels)
    mlp: float = 1.0

    #: block-barrier stall exposure (chunk-staging kernels synchronise
    #: per chunk; 0 for barrier-free kernels) — see the cost model
    barrier_intensity: float = 0.0

    def shared_bytes_per_block(self, threads_per_block: int) -> int:
        """Dynamic shared memory the kernel requests per block."""
        return 0

    @abc.abstractmethod
    def run_range(
        self, start: int, stop: int, counters: DeviceCounters
    ) -> None:
        """Execute logical threads ``[start, stop)``, recording traffic."""


@dataclass
class KernelResult:
    """Everything one launch produced (besides the kernel's own outputs)."""

    launch: KernelLaunch
    counters: DeviceCounters
    cost: CostBreakdown
    functional_seconds: float

    @property
    def modeled_seconds(self) -> float:
        """Modeled device time of the launch."""
        return self.cost.total


class GPUDevice:
    """One simulated GPU: allocation ledger + kernel execution.

    Parameters
    ----------
    spec:
        Hardware description (see :mod:`repro.gpusim.device` presets).
    device_id:
        Ordinal used in logs and by :class:`~repro.gpusim.multi.MultiGPU`.
    """

    def __init__(self, spec: DeviceSpec, device_id: int = 0) -> None:
        self.spec = spec
        self.device_id = int(device_id)
        self._allocations: Dict[str, int] = {}
        self.transfers = TransferModel(device=spec)

    # ------------------------------------------------------------------
    # Global-memory ledger
    # ------------------------------------------------------------------
    @property
    def mem_used(self) -> int:
        return sum(self._allocations.values())

    @property
    def mem_free(self) -> int:
        return self.spec.global_mem_bytes - self.mem_used

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve device global memory; raises ``MemoryError`` on OOM.

        The paper-scale YET (1M trials × 1000 events × 8 B with
        timestamps) does not fit a 5.375 GB Tesla — engines must stage
        event ids only, or chunk trials; this ledger is what enforces it.
        """
        if nbytes < 0:
            raise ValueError(f"negative allocation: {nbytes}")
        if name in self._allocations:
            raise ValueError(f"allocation {name!r} already exists")
        if nbytes > self.mem_free:
            raise MemoryError(
                f"device {self.device_id} ({self.spec.name}): cannot allocate "
                f"{nbytes / 2**30:.2f} GiB ({name!r}); "
                f"{self.mem_free / 2**30:.2f} GiB free of "
                f"{self.spec.global_mem_bytes / 2**30:.2f} GiB"
            )
        self._allocations[name] = int(nbytes)

    def free(self, name: str) -> None:
        if name not in self._allocations:
            raise KeyError(f"no allocation named {name!r}")
        del self._allocations[name]

    def free_all(self) -> None:
        self._allocations.clear()

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------
    def launch(
        self,
        kernel: SimKernel,
        n_threads_total: int,
        threads_per_block: int,
        batch_blocks: int = 256,
    ) -> KernelResult:
        """Validate, execute and price one kernel launch.

        ``batch_blocks`` only controls how many blocks are handed to the
        kernel per :meth:`SimKernel.run_range` call (functional batching
        for NumPy efficiency); it does not affect results or modeled time.
        """
        launch = KernelLaunch(
            n_threads_total=n_threads_total,
            threads_per_block=threads_per_block,
            shared_bytes_per_block=kernel.shared_bytes_per_block(
                threads_per_block
            ),
            registers_per_thread=kernel.registers_per_thread,
        )
        launch.validate_against(self.spec)
        occupancy = compute_occupancy(self.spec, launch)
        if not occupancy.launchable:
            raise ValueError(
                f"kernel {kernel.name!r} with {threads_per_block} threads/"
                f"block cannot become resident on {self.spec.name} "
                f"(limited by {occupancy.limiting_resource})"
            )

        counters = DeviceCounters(device=self.spec)
        threads_per_batch = threads_per_block * max(1, batch_blocks)
        started = time.perf_counter()
        for start in range(0, n_threads_total, threads_per_batch):
            stop = min(start + threads_per_batch, n_threads_total)
            kernel.run_range(start, stop, counters)
        functional_seconds = time.perf_counter() - started

        cost = estimate_kernel_seconds(
            self.spec,
            launch,
            counters,
            mlp=kernel.mlp,
            barrier_intensity=kernel.barrier_intensity,
        )
        return KernelResult(
            launch=launch,
            counters=counters,
            cost=cost,
            functional_seconds=functional_seconds,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GPUDevice(id={self.device_id}, spec={self.spec.name!r}, "
            f"mem_used={self.mem_used / 2**20:.1f} MiB)"
        )
