"""Multi-GPU context: a pool of simulated devices driven by host threads.

Reproduces the paper's multi-GPU architecture (Section III): "a thread on
the CPU invokes and manages a GPU.  The CPU thread calls a method which
takes as input all the inputs required by the kernel and the pre-allocated
arrays for storing the outputs... The CPU threads are invoked in a
parallel manner."  Here each host thread really runs concurrently (the
functional work is NumPy, which releases the GIL), and the modeled
multi-GPU time is the *maximum* over devices of (transfers + kernel time),
matching fork-join semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple, TypeVar

from repro.gpusim.device import DeviceSpec, TESLA_M2090
from repro.gpusim.kernel import GPUDevice
from repro.utils.parallel import balanced_chunk_ranges, chunk_ranges, run_threaded
from repro.utils.validation import check_positive

T = TypeVar("T")


@dataclass
class DeviceTask:
    """One device's share of a decomposed problem."""

    device: GPUDevice
    trial_range: Tuple[int, int]


class MultiGPU:
    """A homogeneous pool of simulated GPUs.

    Parameters
    ----------
    n_devices:
        Pool size (the paper uses four Tesla M2090s).
    spec:
        Hardware spec shared by all devices.
    """

    def __init__(self, n_devices: int, spec: DeviceSpec = TESLA_M2090) -> None:
        check_positive("n_devices", n_devices)
        self.devices: List[GPUDevice] = [
            GPUDevice(spec, device_id=i) for i in range(n_devices)
        ]

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    def decompose(self, n_trials: int) -> List[DeviceTask]:
        """Split the trial space into contiguous per-device ranges.

        The paper decomposes "the aggregate analysis workload among the
        four available GPUs" — trials are independent, so a block
        partition is load-balanced when trials are homogeneous.
        """
        return [
            DeviceTask(device=device, trial_range=trial_range)
            for device, trial_range in zip(
                self.devices, chunk_ranges(n_trials, self.n_devices)
            )
        ]

    def decompose_balanced(self, yet) -> List[DeviceTask]:
        """Split trials so every device gets ~equal *occurrences*.

        Real YETs are ragged (800–1500 events per trial); an equal-trial
        split then hands devices unequal work and the fork-join makespan
        follows the unluckiest device.  This partition cuts at the trial
        boundaries closest to equal cumulative event counts — the shared
        :func:`~repro.utils.parallel.balanced_chunk_ranges` rule, which
        the multicore engine's ragged path reuses on CPU.  For
        fixed-event-count YETs it degenerates to :meth:`decompose`.
        """
        if yet.n_occurrences == 0:
            return self.decompose(yet.n_trials)
        return [
            DeviceTask(device=device, trial_range=trial_range)
            for device, trial_range in zip(
                self.devices,
                balanced_chunk_ranges(yet.offsets, self.n_devices),
            )
        ]

    def run_host_threads(
        self, tasks: Sequence[Callable[[], T]]
    ) -> List[T]:
        """Run one callable per device on real host threads (fork-join).

        One thread per device, mirroring the paper's CPU-thread-per-GPU
        management scheme; results are returned in task order.
        """
        return run_threaded(tasks, max_workers=len(tasks) or 1)

    @staticmethod
    def modeled_makespan(per_device_seconds: Sequence[float]) -> float:
        """Fork-join completion time: the slowest device's total."""
        if not per_device_seconds:
            return 0.0
        return max(per_device_seconds)

    @staticmethod
    def efficiency(
        single_device_seconds: float,
        multi_seconds: float,
        n_devices: int,
    ) -> float:
        """Parallel efficiency = speedup / devices (Figure 3b's metric)."""
        check_positive("n_devices", n_devices)
        if multi_seconds <= 0:
            raise ValueError(f"multi_seconds must be positive, got {multi_seconds}")
        speedup = single_device_seconds / multi_seconds
        return speedup / n_devices
