"""Occupancy calculator: resident warps per SM under resource limits.

Implements the standard CUDA occupancy computation for Fermi-class
devices: the number of blocks resident on one SM is limited by

* the hardware block slots (8 per SM),
* the thread budget (1536 threads per SM),
* the shared-memory budget (48 KB per SM), and
* the register file (32768 registers per SM).

Occupancy — resident warps over the 48-warp maximum — is the knob behind
the paper's Figure 2 (threads/block sweep on one GPU) and Figure 4
(threads/block sweep of the shared-memory-hungry optimised kernel, where
the shared budget collapses residency and blocks beyond 64 threads cannot
launch at all).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.gpusim.hierarchy import KernelLaunch


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy computation for one launch.

    Attributes
    ----------
    blocks_per_sm:
        Blocks resident simultaneously on one SM.
    active_warps_per_sm:
        Resident warps per SM (blocks × warps/block).
    occupancy:
        ``active_warps_per_sm / device.max_warps_per_sm`` in [0, 1].
    limiting_resource:
        Which limit bound residency: ``"blocks"``, ``"threads"``,
        ``"shared"`` or ``"registers"``.
    """

    blocks_per_sm: int
    active_warps_per_sm: int
    occupancy: float
    limiting_resource: str

    @property
    def launchable(self) -> bool:
        """False when not even one block fits on an SM."""
        return self.blocks_per_sm >= 1


def compute_occupancy(device: DeviceSpec, launch: KernelLaunch) -> OccupancyResult:
    """Resident blocks/warps per SM for ``launch`` on ``device``.

    Returns a result with ``blocks_per_sm == 0`` (not an exception) when
    the block cannot fit, so sweeps can report "infeasible" points; use
    :meth:`KernelLaunch.validate_against` for launch-time errors.
    """
    warps_per_block = launch.warps_per_block(device.warp_size)
    # Threads are allocated warp-granular on Fermi.
    threads_per_block_hw = warps_per_block * device.warp_size

    limits = {
        "blocks": device.max_blocks_per_sm,
        "threads": device.max_threads_per_sm // threads_per_block_hw
        if threads_per_block_hw
        else 0,
    }
    if launch.shared_bytes_per_block > 0:
        limits["shared"] = (
            device.shared_mem_per_sm_bytes // launch.shared_bytes_per_block
        )
    regs_per_block = launch.registers_per_thread * threads_per_block_hw
    if regs_per_block > 0:
        limits["registers"] = device.registers_per_sm // regs_per_block

    limiting = min(limits, key=lambda k: limits[k])
    blocks = max(0, int(limits[limiting]))
    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        active_warps_per_sm=warps,
        occupancy=warps / device.max_warps_per_sm,
        limiting_resource=limiting,
    )
