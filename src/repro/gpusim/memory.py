"""Memory-traffic accounting for simulated kernels.

Kernels running on :class:`~repro.gpusim.kernel.GPUDevice` record every
class of memory access they perform into a :class:`DeviceCounters` ledger.
The counters are *symbolic* — counts and bytes, not addresses — because the
ARA kernels' access patterns are statically known per block (one random
global read per (event, ELT) lookup, coalesced YET streams, shared-memory
staging of chunks, ...).  The cost model then prices the ledger.

Traffic classes
---------------
``RANDOM``
    Uncoalesced global accesses: each lane's access lands in its own
    128-byte transaction (the direct-access-table lookups — the paper's
    dominant cost).
``STRIDED``
    Global accesses with partial locality (per-thread rows of intermediate
    arrays in the *basic* kernel): charged an effective 32 bytes per
    access, modelling L1/L2 reuse of the 128-byte line by neighbouring
    accesses.
``COALESCED``
    Fully coalesced streams (reading the YET, writing the YLT): charged
    exact bytes rounded up to whole transactions.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict

from repro.gpusim.device import DeviceSpec


class TrafficClass(enum.Enum):
    """Coalescing classes of global-memory traffic."""

    RANDOM = "random"
    STRIDED = "strided"
    COALESCED = "coalesced"


#: Effective bytes moved per access for STRIDED traffic (128-byte line
#: amortised over ~4 neighbouring accesses that hit it in cache).
STRIDED_EFFECTIVE_BYTES = 32


@dataclass
class DeviceCounters:
    """Ledger of everything a kernel did, priced later by the cost model.

    All mutators are cheap arithmetic — recording is O(1) per *batch* of
    accesses, so counting does not distort the functional timing.
    """

    device: DeviceSpec
    #: bytes that actually cross the global-memory bus, per traffic class
    global_bytes_moved: Dict[str, float] = field(
        default_factory=lambda: {cls.value: 0.0 for cls in TrafficClass}
    )
    #: bytes the kernel asked for (useful payload)
    global_bytes_useful: float = 0.0
    #: number of global transactions (for the latency-bound term)
    global_transactions: float = 0.0
    #: shared-memory accesses (bank-conflict-weighted)
    shared_accesses: float = 0.0
    #: constant-memory reads (broadcast reads count once per warp)
    constant_accesses: float = 0.0
    #: single/double precision floating point operations
    flops_sp: float = 0.0
    flops_dp: float = 0.0
    #: dynamic instruction count (loop overhead; unrolling reduces it)
    instructions: float = 0.0
    #: per-activity attribution of the bytes moved (Figure 6 support)
    activity_bytes: Dict[str, float] = field(default_factory=dict)
    #: per-activity attribution of flops
    activity_flops: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Global memory
    # ------------------------------------------------------------------
    def global_random(
        self, n_accesses: float, word_bytes: int, activity: str | None = None
    ) -> None:
        """Uncoalesced reads/writes: one full transaction per access."""
        moved = n_accesses * self.device.transaction_bytes
        self.global_bytes_moved[TrafficClass.RANDOM.value] += moved
        self.global_bytes_useful += n_accesses * word_bytes
        self.global_transactions += n_accesses
        if activity:
            self._charge_activity_bytes(activity, moved)

    def global_strided(
        self, n_accesses: float, word_bytes: int, activity: str | None = None
    ) -> None:
        """Partially local accesses: effective 32 bytes per access."""
        moved = n_accesses * max(STRIDED_EFFECTIVE_BYTES, word_bytes)
        self.global_bytes_moved[TrafficClass.STRIDED.value] += moved
        self.global_bytes_useful += n_accesses * word_bytes
        self.global_transactions += moved / self.device.transaction_bytes
        if activity:
            self._charge_activity_bytes(activity, moved)

    def global_coalesced(self, total_bytes: float, activity: str | None = None) -> None:
        """Fully coalesced streams: exact bytes, whole transactions."""
        transactions = math.ceil(total_bytes / self.device.transaction_bytes)
        moved = transactions * self.device.transaction_bytes
        self.global_bytes_moved[TrafficClass.COALESCED.value] += moved
        self.global_bytes_useful += total_bytes
        self.global_transactions += transactions
        if activity:
            self._charge_activity_bytes(activity, moved)

    # ------------------------------------------------------------------
    # On-chip memories and compute
    # ------------------------------------------------------------------
    def shared(self, n_accesses: float, conflict_factor: float = 1.0) -> None:
        """Shared-memory accesses, scaled by a bank-conflict factor >= 1."""
        if conflict_factor < 1.0:
            raise ValueError(f"conflict_factor must be >= 1, got {conflict_factor}")
        self.shared_accesses += n_accesses * conflict_factor

    def constant(self, n_warp_reads: float) -> None:
        """Constant-memory reads (already warp-broadcast-collapsed)."""
        self.constant_accesses += n_warp_reads

    def flops(
        self, n: float, dtype_bytes: int, activity: str | None = None
    ) -> None:
        """Floating-point operations in the working precision."""
        if dtype_bytes <= 4:
            self.flops_sp += n
        else:
            self.flops_dp += n
        if activity:
            self.activity_flops[activity] = (
                self.activity_flops.get(activity, 0.0) + n
            )

    def instruction_count(self, n: float) -> None:
        """Dynamic instructions (integer/control; unrolling reduces this)."""
        self.instructions += n

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def _charge_activity_bytes(self, activity: str, moved: float) -> None:
        self.activity_bytes[activity] = (
            self.activity_bytes.get(activity, 0.0) + moved
        )

    @property
    def total_global_bytes_moved(self) -> float:
        return sum(self.global_bytes_moved.values())

    @property
    def bus_efficiency(self) -> float:
        """Useful bytes over moved bytes (1.0 = perfectly coalesced)."""
        moved = self.total_global_bytes_moved
        return self.global_bytes_useful / moved if moved > 0 else 1.0

    def merge(self, other: "DeviceCounters") -> None:
        """Accumulate another ledger (per-block or per-launch merging)."""
        if other.device.name != self.device.name:
            raise ValueError(
                f"cannot merge counters from {other.device.name} into "
                f"{self.device.name}"
            )
        for key, value in other.global_bytes_moved.items():
            self.global_bytes_moved[key] += value
        self.global_bytes_useful += other.global_bytes_useful
        self.global_transactions += other.global_transactions
        self.shared_accesses += other.shared_accesses
        self.constant_accesses += other.constant_accesses
        self.flops_sp += other.flops_sp
        self.flops_dp += other.flops_dp
        self.instructions += other.instructions
        for key, value in other.activity_bytes.items():
            self.activity_bytes[key] = self.activity_bytes.get(key, 0.0) + value
        for key, value in other.activity_flops.items():
            self.activity_flops[key] = self.activity_flops.get(key, 0.0) + value
