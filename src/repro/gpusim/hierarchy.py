"""Execution hierarchy: kernel launch configuration and block geometry.

Mirrors the CUDA abstractions the paper works with: a kernel launch is a
1-D grid of thread blocks; blocks are scheduled onto SMs; threads within a
block are grouped into warps of 32 that issue in lockstep.  The paper's
design point — one thread per trial — means grid geometry follows directly
from the trial count and the threads-per-block choice (its worked example:
1,000,000 trials / 256 threads ≈ 3906 blocks over 14 SMs ≈ 279 blocks per
SM).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.device import DeviceSpec
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class KernelLaunch:
    """A validated 1-D kernel launch configuration.

    Attributes
    ----------
    n_threads_total:
        Logical threads requested (= trials to process; the paper uses one
        thread per trial).
    threads_per_block:
        Block size.  Must not exceed the device maximum; values that are
        not warp multiples are allowed (CUDA allows them) but waste lanes,
        which the cost model charges for.
    shared_bytes_per_block:
        Dynamic shared memory requested per block.  A launch requesting
        more than the per-SM shared memory fails, exactly like CUDA — this
        is what truncates the paper's Figure 4 sweep beyond 64
        threads/block.
    registers_per_thread:
        Register footprint of the kernel (affects occupancy).
    """

    n_threads_total: int
    threads_per_block: int
    shared_bytes_per_block: int = 0
    registers_per_thread: int = 24

    def __post_init__(self) -> None:
        check_positive("n_threads_total", self.n_threads_total)
        check_positive("threads_per_block", self.threads_per_block)
        if self.shared_bytes_per_block < 0:
            raise ValueError("shared_bytes_per_block must be non-negative")
        check_positive("registers_per_thread", self.registers_per_thread)

    @property
    def n_blocks(self) -> int:
        """Grid size: ceil(total threads / block size)."""
        return math.ceil(self.n_threads_total / self.threads_per_block)

    def warps_per_block(self, warp_size: int = 32) -> int:
        """Warps per block (partial warps round up, as in hardware)."""
        return math.ceil(self.threads_per_block / warp_size)

    def lane_utilization(self, warp_size: int = 32) -> float:
        """Fraction of warp lanes doing useful work.

        A 16-thread block still occupies a full 32-lane warp, so half the
        lanes idle — the reason the paper's Figure 4 finds 32 (the warp
        size) optimal and 16 clearly worse.
        """
        warps = self.warps_per_block(warp_size)
        return self.threads_per_block / (warps * warp_size)

    def validate_against(self, device: DeviceSpec) -> None:
        """Raise ``ValueError`` if this launch cannot start on ``device``.

        Checks the same limits the CUDA runtime enforces at launch time:
        block size and per-block shared memory.
        """
        if self.threads_per_block > device.max_threads_per_block:
            raise ValueError(
                f"threads_per_block {self.threads_per_block} exceeds device "
                f"limit {device.max_threads_per_block}"
            )
        if self.shared_bytes_per_block > device.shared_mem_per_sm_bytes:
            raise ValueError(
                f"shared memory request {self.shared_bytes_per_block} B/block "
                f"exceeds the SM's {device.shared_mem_per_sm_bytes} B "
                f"(shared memory overflow)"
            )

    def blocks_per_sm_estimate(self, device: DeviceSpec) -> int:
        """Average resident-block pressure per SM for the whole grid.

        The paper's own worked example (3906 blocks / 14 SMs ≈ 279): how
        many blocks each SM must execute over the kernel's lifetime, not
        how many are resident at once (that is occupancy's job).
        """
        return math.ceil(self.n_blocks / device.n_sms)
