"""Host ↔ device transfer model (PCIe staging).

The engines stage the direct access tables and YET chunks to the device
and copy the YLT back; the paper's multi-GPU implementation passes "all
the inputs required by the kernel and the pre-allocated arrays for storing
the outputs" to each GPU's managing CPU thread.  Transfers are priced as
``latency + bytes / bandwidth`` per operation, the standard PCIe model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpusim.device import DeviceSpec

#: Fixed software+DMA setup latency per transfer, seconds.
TRANSFER_LATENCY_S = 15e-6


@dataclass
class TransferModel:
    """Accumulates host↔device transfer time for one device context."""

    device: DeviceSpec
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    n_transfers: int = 0
    log: list = field(default_factory=list)

    def h2d(self, nbytes: float, label: str = "") -> float:
        """Record a host→device copy; returns its modeled seconds."""
        seconds = self._price(nbytes)
        self.h2d_bytes += nbytes
        self.n_transfers += 1
        self.log.append(("h2d", label, nbytes, seconds))
        return seconds

    def d2h(self, nbytes: float, label: str = "") -> float:
        """Record a device→host copy; returns its modeled seconds."""
        seconds = self._price(nbytes)
        self.d2h_bytes += nbytes
        self.n_transfers += 1
        self.log.append(("d2h", label, nbytes, seconds))
        return seconds

    def _price(self, nbytes: float) -> float:
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        return TRANSFER_LATENCY_S + nbytes / self.device.pcie_bandwidth_bytes

    @property
    def total_seconds(self) -> float:
        return sum(entry[3] for entry in self.log)

    @property
    def total_bytes(self) -> float:
        return self.h2d_bytes + self.d2h_bytes
