"""A functional + timed GPU simulator (the CUDA-platform substitute).

The paper runs on NVIDIA Tesla C2075 / M2090 GPUs.  This container has no
GPU, so — per the reproduction's substitution rule — we build the closest
synthetic equivalent that exercises the same code paths:

* **Functional layer**: kernels written against a CUDA-like execution
  hierarchy (grid → block → warp → thread) actually execute, vectorised
  over the thread dimension, producing bit-identical results to the CPU
  engines.  Block scheduling over SMs, shared/constant-memory capacity
  limits and launch-configuration validation are enforced for real: a
  kernel that would not launch on the paper's hardware raises here.
* **Cost layer**: every memory access a kernel performs is accounted as
  transactions against the device's memory hierarchy (global with a
  coalescing model, shared with capacity/bank accounting, constant,
  registers), and :mod:`repro.gpusim.costmodel` converts transaction and
  instruction counts plus occupancy into modeled device seconds using the
  published datasheet numbers of the C2075/M2090.

The cost model is what turns "we cannot measure a 2013 GPU" into "we can
still reproduce every *shape* in Figures 2–6": block-size sweeps move
modeled time through occupancy, chunking moves traffic from global to
shared memory, reduced precision halves loss-array bytes, and multi-GPU
decomposition divides the dominant term by the device count.
"""

from repro.gpusim.device import (
    DeviceSpec,
    TESLA_C2075,
    TESLA_M2090,
)
from repro.gpusim.hierarchy import KernelLaunch
from repro.gpusim.occupancy import OccupancyResult, compute_occupancy
from repro.gpusim.memory import DeviceCounters, TrafficClass
from repro.gpusim.costmodel import CostBreakdown, estimate_kernel_seconds
from repro.gpusim.transfer import TransferModel
from repro.gpusim.kernel import GPUDevice, KernelResult
from repro.gpusim.multi import MultiGPU

__all__ = [
    "DeviceSpec",
    "TESLA_C2075",
    "TESLA_M2090",
    "KernelLaunch",
    "OccupancyResult",
    "compute_occupancy",
    "DeviceCounters",
    "TrafficClass",
    "CostBreakdown",
    "estimate_kernel_seconds",
    "TransferModel",
    "GPUDevice",
    "KernelResult",
    "MultiGPU",
]
