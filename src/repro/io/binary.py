"""Binary (npz) persistence for YETs, ELTs, portfolios and YLTs.

NumPy's compressed container keeps multi-gigabyte YETs practical on disk
and round-trips every dtype exactly.  Layouts are versioned with a format
tag so future layout changes can stay backwards-compatible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.elt import ELTFinancialTerms, EventLossTable
from repro.data.layer import Layer, LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable

PathLike = Union[str, Path]

_YET_FORMAT = "repro-yet-v1"
_ELT_FORMAT = "repro-elt-v1"
_PORTFOLIO_FORMAT = "repro-portfolio-v1"
_YLT_FORMAT = "repro-ylt-v1"


def _check_format(data: np.lib.npyio.NpzFile, expected: str, path: Path) -> None:
    tag = str(data["format"]) if "format" in data else "<missing>"
    if tag != expected:
        raise ValueError(
            f"{path} is not a {expected} file (format tag: {tag})"
        )


# ----------------------------------------------------------------------
# YET
# ----------------------------------------------------------------------
def save_yet(yet: YearEventTable, path: PathLike) -> None:
    """Write a YET to ``path`` (npz, compressed)."""
    np.savez_compressed(
        Path(path),
        format=_YET_FORMAT,
        event_ids=yet.event_ids,
        timestamps=yet.timestamps,
        offsets=yet.offsets,
    )


def load_yet(path: PathLike) -> YearEventTable:
    """Read a YET written by :func:`save_yet`."""
    path = Path(path)
    with np.load(path) as data:
        _check_format(data, _YET_FORMAT, path)
        return YearEventTable(
            event_ids=data["event_ids"],
            timestamps=data["timestamps"],
            offsets=data["offsets"],
        )


# ----------------------------------------------------------------------
# ELT
# ----------------------------------------------------------------------
def save_elt(elt: EventLossTable, path: PathLike) -> None:
    """Write one ELT (losses + financial terms) to ``path``."""
    np.savez_compressed(
        Path(path),
        format=_ELT_FORMAT,
        elt_id=np.int64(elt.elt_id),
        event_ids=elt.event_ids,
        losses=elt.losses,
        terms=np.array(elt.terms.as_tuple(), dtype=np.float64),
    )


def load_elt(path: PathLike) -> EventLossTable:
    """Read an ELT written by :func:`save_elt`."""
    path = Path(path)
    with np.load(path) as data:
        _check_format(data, _ELT_FORMAT, path)
        retention, limit, share, fx = (float(x) for x in data["terms"])
        return EventLossTable(
            elt_id=int(data["elt_id"]),
            event_ids=data["event_ids"],
            losses=data["losses"],
            terms=ELTFinancialTerms(
                retention=retention, limit=limit, share=share, currency_rate=fx
            ),
        )


# ----------------------------------------------------------------------
# Portfolio
# ----------------------------------------------------------------------
def save_portfolio(portfolio: Portfolio, path: PathLike) -> None:
    """Write a portfolio (all ELTs + layer definitions) to one npz file."""
    arrays = {"format": _PORTFOLIO_FORMAT}
    elt_ids = sorted(portfolio.elts)
    arrays["elt_ids"] = np.asarray(elt_ids, dtype=np.int64)
    for elt_id in elt_ids:
        elt = portfolio.elts[elt_id]
        arrays[f"elt_{elt_id}_event_ids"] = elt.event_ids
        arrays[f"elt_{elt_id}_losses"] = elt.losses
        arrays[f"elt_{elt_id}_terms"] = np.array(
            elt.terms.as_tuple(), dtype=np.float64
        )
    layers_spec = [
        {
            "layer_id": layer.layer_id,
            "elt_ids": list(layer.elt_ids),
            "terms": list(layer.terms.as_tuple()),
        }
        for layer in portfolio.layers
    ]
    arrays["layers_json"] = np.str_(json.dumps(layers_spec))
    np.savez_compressed(Path(path), **arrays)


def load_portfolio(path: PathLike) -> Portfolio:
    """Read a portfolio written by :func:`save_portfolio`."""
    path = Path(path)
    with np.load(path) as data:
        _check_format(data, _PORTFOLIO_FORMAT, path)
        portfolio = Portfolio()
        for elt_id in (int(i) for i in data["elt_ids"]):
            retention, limit, share, fx = (
                float(x) for x in data[f"elt_{elt_id}_terms"]
            )
            portfolio.add_elt(
                EventLossTable(
                    elt_id=elt_id,
                    event_ids=data[f"elt_{elt_id}_event_ids"],
                    losses=data[f"elt_{elt_id}_losses"],
                    terms=ELTFinancialTerms(
                        retention=retention,
                        limit=limit,
                        share=share,
                        currency_rate=fx,
                    ),
                )
            )
        for spec in json.loads(str(data["layers_json"])):
            occ_r, occ_l, agg_r, agg_l = spec["terms"]
            portfolio.add_layer(
                Layer(
                    layer_id=int(spec["layer_id"]),
                    elt_ids=tuple(int(i) for i in spec["elt_ids"]),
                    terms=LayerTerms(
                        occ_retention=occ_r,
                        occ_limit=occ_l,
                        agg_retention=agg_r,
                        agg_limit=agg_l,
                    ),
                )
            )
        return portfolio


# ----------------------------------------------------------------------
# YLT
# ----------------------------------------------------------------------
def save_ylt(ylt: YearLossTable, path: PathLike) -> None:
    """Write a YLT to ``path``."""
    np.savez_compressed(
        Path(path),
        format=_YLT_FORMAT,
        layer_ids=np.asarray(ylt.layer_ids, dtype=np.int64),
        losses=ylt.losses,
    )


def load_ylt(path: PathLike) -> YearLossTable:
    """Read a YLT written by :func:`save_ylt`."""
    path = Path(path)
    with np.load(path) as data:
        _check_format(data, _YLT_FORMAT, path)
        return YearLossTable(
            layer_ids=tuple(int(i) for i in data["layer_ids"]),
            losses=data["losses"],
        )
