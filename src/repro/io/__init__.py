"""Serialisation and memory accounting for analysis inputs/outputs.

The paper stresses that the algorithm "must ingest large amounts of data"
and that organising it in limited memory is a core challenge; this
subpackage provides the npz/CSV round-trips used by examples and tools,
plus the memory-footprint estimator behind the Section III direct-access
table arithmetic.
"""

from repro.io.atomic import (
    array_crc32,
    load_npy,
    publish_dir,
    scratch_dir,
    write_npy,
)
from repro.io.binary import (
    load_elt,
    load_portfolio,
    load_yet,
    load_ylt,
    save_elt,
    save_portfolio,
    save_yet,
    save_ylt,
)
from repro.io.csvio import elt_from_csv, elt_to_csv, ylt_to_csv
from repro.io.memory import MemoryEstimate, estimate_workload_memory

__all__ = [
    "array_crc32",
    "load_npy",
    "publish_dir",
    "scratch_dir",
    "write_npy",
    "load_elt",
    "load_portfolio",
    "load_yet",
    "load_ylt",
    "save_elt",
    "save_portfolio",
    "save_yet",
    "save_ylt",
    "elt_from_csv",
    "elt_to_csv",
    "ylt_to_csv",
    "MemoryEstimate",
    "estimate_workload_memory",
]
