"""Atomic filesystem primitives for on-disk caches.

The result store (:mod:`repro.store`) persists computed YLTs and base
loss vectors under a cache directory that may be read and written by
many processes at once.  POSIX gives exactly one cheap atomicity
primitive — ``rename(2)`` within a filesystem — so every durable write
here follows the same discipline: materialise the payload completely in
a scratch location, then rename it into its final name.  Readers either
see the old entry, the new entry, or nothing; never a torn file.

Reads go through :func:`load_npy`, which can hand back a memory-mapped
view (``numpy.lib.format`` files support zero-copy ``mmap``), so a
multi-gigabyte cached YLT costs page-table entries, not RSS, until it is
actually touched — and pages are shared between processes replaying the
same analysis.
"""

from __future__ import annotations

import json
import os
import shutil
import uuid
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Union

import numpy as np

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

PathLike = Union[str, Path]


def array_crc32(array: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (C speed; the store's checksum)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def write_npy(path: PathLike, array: np.ndarray) -> int:
    """Write ``array`` to ``path`` in ``.npy`` format; returns nbytes.

    Plain (uncompressed) ``npy`` is deliberate: it is the only NumPy
    container that memory-maps, and cached results are re-read far more
    often than written.
    """
    path = Path(path)
    with open(path, "wb") as fh:
        np.lib.format.write_array(
            fh, np.ascontiguousarray(array), allow_pickle=False
        )
    return int(np.ascontiguousarray(array).nbytes)


def load_npy(path: PathLike, mmap: bool = True) -> np.ndarray:
    """Read a ``.npy`` file, memory-mapped read-only by default.

    Raises whatever ``numpy.load`` raises on truncated or malformed
    files — callers in :mod:`repro.store` convert that into a cache
    miss rather than a wrong answer.
    """
    return np.load(
        Path(path), mmap_mode="r" if mmap else None, allow_pickle=False
    )


def scratch_dir(parent: PathLike, prefix: str = "tmp") -> Path:
    """A fresh uniquely-named scratch directory under ``parent``.

    Scratch names embed the PID and a UUID so concurrent writers (same
    or different processes) never collide before their final rename.
    """
    parent = Path(parent)
    parent.mkdir(parents=True, exist_ok=True)
    path = parent / f"{prefix}-{os.getpid()}-{uuid.uuid4().hex}"
    path.mkdir()
    return path


def publish_dir(tmp: PathLike, final: PathLike) -> bool:
    """Atomically rename the fully-written ``tmp`` directory to ``final``.

    If ``final`` already exists, the old entry is renamed aside and the
    new one renamed in *immediately* (the aside copy is deleted only
    after the new entry is live), so a reader races at most two
    ``rename(2)`` calls — it sees the complete old entry, the complete
    new entry, or (in that microsecond window) a transient miss; never
    a byte mixture.  Returns ``True`` if this call published, ``False``
    if a same-instant race left another (byte-identical, by
    key-addressing) writer's entry in place instead.
    """
    tmp, final = Path(tmp), Path(final)
    final.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(3):
        try:
            os.rename(tmp, final)
            return True
        except OSError:
            # Destination occupied: retire it aside (atomic), publish,
            # and only then clean the retired copy up.
            aside = final.parent / f".{final.name}.old-{uuid.uuid4().hex}"
            try:
                os.rename(final, aside)
            except OSError:
                continue  # it vanished meanwhile; retry the publish
            try:
                os.rename(tmp, final)
                return True
            except OSError:
                break  # a racing writer landed between the renames
            finally:
                shutil.rmtree(aside, ignore_errors=True)
    shutil.rmtree(tmp, ignore_errors=True)
    return False


def remove_dir(path: PathLike) -> None:
    """Best-effort recursive removal (corrupt-entry self-healing)."""
    shutil.rmtree(Path(path), ignore_errors=True)


def touch(path: PathLike) -> bool:
    """Set ``path``'s timestamps to now (best effort; ``False`` on failure).

    The file store calls this on every entry read, so a directory's
    mtime doubles as a last-access time that ``repro-store gc``'s LRU
    policy can trust even on ``noatime`` mounts.
    """
    try:
        os.utime(path, None)
        return True
    except OSError:
        return False


def write_json_atomic(path: PathLike, payload: Any) -> None:
    """Serialise ``payload`` to ``path`` via the tmp + rename discipline.

    Readers see the complete old document or the complete new one,
    never a torn write — the property the fleet job queue's state files
    rely on (``os.replace`` also *moves* files between queue state
    directories atomically).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex}"
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)


def read_json(path: PathLike) -> Any:
    """Parse a JSON file, or ``None`` when missing/garbled.

    A vanished file is normal under the queue's rename-based claims (a
    racing worker moved it); a garbled one is treated the same way —
    absence, never a wrong answer.
    """
    try:
        return json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return None


@contextmanager
def lock_file(path: PathLike, create: bool = True):
    """Advisory exclusive lock on ``path`` (``flock(2)``), as a context.

    Yields ``True`` while the lock is held.  This is the per-key
    exclusivity primitive shared by :class:`~repro.store.SharedFileStore`
    (one computation per key per fleet) and the fleet job queue's
    requeue scan (one requeue per expired lease).  Degrades gracefully —
    yields ``False`` without locking — on platforms without ``fcntl`` or
    when the lock file cannot be created (read-only cache dir): callers
    lose cross-process exclusivity, never correctness, because every
    durable write behind the lock is idempotent by content addressing.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield False
        return
    path = Path(path)
    try:
        if create:
            path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(path, os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield False
        return
    try:
        fcntl.flock(fd, fcntl.LOCK_EX)
        yield True
    finally:
        try:
            fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


@contextmanager
def try_lock_file(path: PathLike):
    """Non-blocking variant of :func:`lock_file`.

    Yields ``True`` only when the exclusive ``flock`` was acquired
    *immediately*; ``False`` when another holder (any process — or
    another fd in this one) has it, when the file cannot be opened, or
    on platforms without ``fcntl``.  This is the probe the garbage
    collector uses before unlinking a lock file: a writer that still
    holds the lock keeps its file.  Never creates parent directories —
    a missing lock dir means there is nothing to contend for.
    """
    if fcntl is None:  # pragma: no cover - non-POSIX fallback
        yield False
        return
    try:
        fd = os.open(Path(path), os.O_CREAT | os.O_RDWR, 0o644)
    except OSError:
        yield False
        return
    locked = False
    try:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            locked = True
        except OSError:
            pass
        yield locked
    finally:
        try:
            if locked:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)


def dir_nbytes(path: PathLike) -> int:
    """Total size in bytes of the regular files under ``path``."""
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            try:
                total += os.stat(os.path.join(root, name)).st_size
            except OSError:
                continue
    return total
