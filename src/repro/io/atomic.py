"""Atomic filesystem primitives for on-disk caches.

The result store (:mod:`repro.store`) persists computed YLTs and base
loss vectors under a cache directory that may be read and written by
many processes at once.  POSIX gives exactly one cheap atomicity
primitive — ``rename(2)`` within a filesystem — so every durable write
here follows the same discipline: materialise the payload completely in
a scratch location, then rename it into its final name.  Readers either
see the old entry, the new entry, or nothing; never a torn file.

Reads go through :func:`load_npy`, which can hand back a memory-mapped
view (``numpy.lib.format`` files support zero-copy ``mmap``), so a
multi-gigabyte cached YLT costs page-table entries, not RSS, until it is
actually touched — and pages are shared between processes replaying the
same analysis.
"""

from __future__ import annotations

import os
import shutil
import uuid
import zlib
from pathlib import Path
from typing import Union

import numpy as np

PathLike = Union[str, Path]


def array_crc32(array: np.ndarray) -> int:
    """CRC32 of an array's raw bytes (C speed; the store's checksum)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def write_npy(path: PathLike, array: np.ndarray) -> int:
    """Write ``array`` to ``path`` in ``.npy`` format; returns nbytes.

    Plain (uncompressed) ``npy`` is deliberate: it is the only NumPy
    container that memory-maps, and cached results are re-read far more
    often than written.
    """
    path = Path(path)
    with open(path, "wb") as fh:
        np.lib.format.write_array(
            fh, np.ascontiguousarray(array), allow_pickle=False
        )
    return int(np.ascontiguousarray(array).nbytes)


def load_npy(path: PathLike, mmap: bool = True) -> np.ndarray:
    """Read a ``.npy`` file, memory-mapped read-only by default.

    Raises whatever ``numpy.load`` raises on truncated or malformed
    files — callers in :mod:`repro.store` convert that into a cache
    miss rather than a wrong answer.
    """
    return np.load(
        Path(path), mmap_mode="r" if mmap else None, allow_pickle=False
    )


def scratch_dir(parent: PathLike, prefix: str = "tmp") -> Path:
    """A fresh uniquely-named scratch directory under ``parent``.

    Scratch names embed the PID and a UUID so concurrent writers (same
    or different processes) never collide before their final rename.
    """
    parent = Path(parent)
    parent.mkdir(parents=True, exist_ok=True)
    path = parent / f"{prefix}-{os.getpid()}-{uuid.uuid4().hex}"
    path.mkdir()
    return path


def publish_dir(tmp: PathLike, final: PathLike) -> bool:
    """Atomically rename the fully-written ``tmp`` directory to ``final``.

    If ``final`` already exists, the old entry is renamed aside and the
    new one renamed in *immediately* (the aside copy is deleted only
    after the new entry is live), so a reader races at most two
    ``rename(2)`` calls — it sees the complete old entry, the complete
    new entry, or (in that microsecond window) a transient miss; never
    a byte mixture.  Returns ``True`` if this call published, ``False``
    if a same-instant race left another (byte-identical, by
    key-addressing) writer's entry in place instead.
    """
    tmp, final = Path(tmp), Path(final)
    final.parent.mkdir(parents=True, exist_ok=True)
    for attempt in range(3):
        try:
            os.rename(tmp, final)
            return True
        except OSError:
            # Destination occupied: retire it aside (atomic), publish,
            # and only then clean the retired copy up.
            aside = final.parent / f".{final.name}.old-{uuid.uuid4().hex}"
            try:
                os.rename(final, aside)
            except OSError:
                continue  # it vanished meanwhile; retry the publish
            try:
                os.rename(tmp, final)
                return True
            except OSError:
                break  # a racing writer landed between the renames
            finally:
                shutil.rmtree(aside, ignore_errors=True)
    shutil.rmtree(tmp, ignore_errors=True)
    return False


def remove_dir(path: PathLike) -> None:
    """Best-effort recursive removal (corrupt-entry self-healing)."""
    shutil.rmtree(Path(path), ignore_errors=True)
