"""Memory-footprint estimation for analysis inputs.

Quantifies the Section III trade-off before anything is allocated: a
direct access table costs ``(catalogue + 1) x word`` bytes *per ELT*
regardless of how sparse the ELT is (the paper's example: 15 ELTs over a
2M-event catalogue materialise 30M loss slots), while compact forms cost
``~12-24 bytes x n_losses``.  Used by examples and the capacity checks in
benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.presets import WorkloadSpec


@dataclass(frozen=True)
class MemoryEstimate:
    """Bytes required by each component of a workload."""

    yet_bytes: int
    direct_tables_bytes: int
    compact_tables_bytes: int
    ylt_bytes: int

    @property
    def total_direct(self) -> int:
        """Total with direct access tables (the paper's configuration)."""
        return self.yet_bytes + self.direct_tables_bytes + self.ylt_bytes

    @property
    def total_compact(self) -> int:
        """Total with compact (sorted-pairs) ELT representations."""
        return self.yet_bytes + self.compact_tables_bytes + self.ylt_bytes

    @property
    def direct_overhead_factor(self) -> float:
        """How much more memory direct tables use than compact ones."""
        if self.compact_tables_bytes == 0:
            return float("inf")
        return self.direct_tables_bytes / self.compact_tables_bytes

    def fits(self, budget_bytes: int, direct: bool = True) -> bool:
        """Whether the workload fits a memory budget (e.g. GPU global)."""
        total = self.total_direct if direct else self.total_compact
        return total <= budget_bytes


def estimate_workload_memory(
    spec: WorkloadSpec,
    loss_word_bytes: int = 8,
    include_timestamps: bool = False,
) -> MemoryEstimate:
    """Estimate component memory for a workload spec.

    ``include_timestamps=False`` matches what engines stage to a device
    (event order suffices once trials are sorted); pass True for the
    host-side footprint.
    """
    per_event = 4 + (4 if include_timestamps else 0)
    yet_bytes = spec.n_occurrences * per_event + (spec.n_trials + 1) * 8
    direct = (spec.catalog_size + 1) * loss_word_bytes * spec.elts_per_layer
    compact = (4 + loss_word_bytes) * spec.losses_per_elt * spec.elts_per_layer
    ylt = spec.n_trials * 8 * spec.n_layers
    return MemoryEstimate(
        yet_bytes=int(yet_bytes),
        direct_tables_bytes=int(direct * spec.n_layers),
        compact_tables_bytes=int(compact * spec.n_layers),
        ylt_bytes=int(ylt),
    )
