"""CSV import/export — the interchange format of actuarial tooling.

ELT CSVs use the two-column ``event_id,loss`` layout cat-model vendors
export; YLT CSVs are ``trial,<layer columns>`` for spreadsheet analysis.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from repro.data.elt import ELTFinancialTerms, EventLossTable
from repro.data.ylt import YearLossTable

PathLike = Union[str, Path]


def elt_to_csv(elt: EventLossTable, path: PathLike) -> None:
    """Write ``event_id,loss`` rows (header included)."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["event_id", "loss"])
        for event_id, loss in zip(elt.event_ids, elt.losses):
            writer.writerow([int(event_id), repr(float(loss))])


def elt_from_csv(
    path: PathLike,
    elt_id: int,
    terms: ELTFinancialTerms | None = None,
) -> EventLossTable:
    """Read an ``event_id,loss`` CSV into an ELT.

    Rows are sorted and validated by the ELT constructor; duplicate event
    ids raise there.
    """
    ids = []
    losses = []
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header[:2]] != [
            "event_id",
            "loss",
        ]:
            raise ValueError(
                f"{path}: expected header 'event_id,loss', got {header}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            try:
                ids.append(int(row[0]))
                losses.append(float(row[1]))
            except (IndexError, ValueError) as exc:
                raise ValueError(f"{path}:{lineno}: bad row {row!r}") from exc
    order = np.argsort(np.asarray(ids))
    return EventLossTable(
        elt_id=elt_id,
        event_ids=np.asarray(ids, dtype=np.int32)[order],
        losses=np.asarray(losses, dtype=np.float64)[order],
        terms=terms or ELTFinancialTerms(),
    )


def ylt_to_csv(ylt: YearLossTable, path: PathLike) -> None:
    """Write ``trial,layer_<id>...`` rows for spreadsheet consumption."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            ["trial"] + [f"layer_{layer_id}" for layer_id in ylt.layer_ids]
        )
        for trial in range(ylt.n_trials):
            writer.writerow(
                [trial] + [repr(float(x)) for x in ylt.losses[:, trial]]
            )
