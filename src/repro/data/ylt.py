"""Year Loss Table (YLT): the output of aggregate risk analysis.

One aggregate annual loss per (layer, trial).  All risk metrics in
:mod:`repro.metrics` (PML/VaR, TVaR, exceedance curves) and the pricing
workflows in :mod:`repro.pricing` are derived from YLTs, as in the paper's
Section I.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

LOSS_DTYPE = np.float64


@dataclass
class YearLossTable:
    """Per-trial aggregate losses for each layer of a portfolio.

    Attributes
    ----------
    layer_ids:
        Tuple of layer ids, one per row of ``losses``.
    losses:
        2-D ``float64`` array of shape ``(n_layers, n_trials)``;
        ``losses[i, t]`` is the year loss of layer ``layer_ids[i]`` in
        trial ``t``.
    """

    layer_ids: tuple
    losses: np.ndarray

    def __post_init__(self) -> None:
        self.layer_ids = tuple(int(i) for i in self.layer_ids)
        self.losses = np.ascontiguousarray(self.losses, dtype=LOSS_DTYPE)
        if self.losses.ndim != 2:
            raise ValueError(f"losses must be 2-D, got shape {self.losses.shape}")
        if len(self.layer_ids) != self.losses.shape[0]:
            raise ValueError(
                f"{len(self.layer_ids)} layer ids but "
                f"{self.losses.shape[0]} loss rows"
            )
        if len(set(self.layer_ids)) != len(self.layer_ids):
            raise ValueError(f"duplicate layer ids: {self.layer_ids}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def single_layer(
        cls, trial_losses: np.ndarray, layer_id: int = 0
    ) -> "YearLossTable":
        """Wrap a 1-D per-trial loss vector as a one-layer YLT."""
        arr = np.ascontiguousarray(trial_losses, dtype=LOSS_DTYPE)
        if arr.ndim != 1:
            raise ValueError(f"trial_losses must be 1-D, got shape {arr.shape}")
        return cls(layer_ids=(layer_id,), losses=arr.reshape(1, -1))

    @classmethod
    def from_dict(cls, per_layer: Dict[int, np.ndarray]) -> "YearLossTable":
        """Build from ``{layer_id: 1-D trial losses}`` (all same length)."""
        if not per_layer:
            raise ValueError("per_layer mapping must not be empty")
        layer_ids = tuple(sorted(per_layer))
        rows = [np.asarray(per_layer[i], dtype=LOSS_DTYPE) for i in layer_ids]
        lengths = {row.size for row in rows}
        if len(lengths) != 1:
            raise ValueError(f"trial-count mismatch across layers: {lengths}")
        return cls(layer_ids=layer_ids, losses=np.vstack(rows))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return self.losses.shape[0]

    @property
    def n_trials(self) -> int:
        return self.losses.shape[1]

    def layer_losses(self, layer_id: int) -> np.ndarray:
        """1-D per-trial loss vector of one layer."""
        try:
            row = self.layer_ids.index(int(layer_id))
        except ValueError:
            raise KeyError(f"no layer {layer_id} in YLT {self.layer_ids}") from None
        return self.losses[row]

    def portfolio_losses(self) -> np.ndarray:
        """Per-trial losses summed across layers (the portfolio view)."""
        return self.losses.sum(axis=0)

    def expected_loss(self, layer_id: int | None = None) -> float:
        """Mean annual loss of one layer (or of the whole portfolio)."""
        series = (
            self.portfolio_losses()
            if layer_id is None
            else self.layer_losses(layer_id)
        )
        return float(series.mean()) if series.size else 0.0

    def slice_trials(self, start: int, stop: int) -> "YearLossTable":
        """YLT restricted to trials ``start:stop`` (for chunked engines)."""
        if not 0 <= start <= stop <= self.n_trials:
            raise IndexError(
                f"invalid trial slice [{start}, {stop}) of {self.n_trials}"
            )
        return YearLossTable(
            layer_ids=self.layer_ids, losses=self.losses[:, start:stop].copy()
        )

    @staticmethod
    def concatenate(parts: Sequence["YearLossTable"]) -> "YearLossTable":
        """Stitch trial-partitioned YLTs back together, in order.

        Used by the multicore and multi-GPU engines to combine per-chunk
        (per-device) results; all parts must agree on layer ids.
        """
        if not parts:
            raise ValueError("cannot concatenate zero YLT parts")
        layer_ids = parts[0].layer_ids
        for part in parts[1:]:
            if part.layer_ids != layer_ids:
                raise ValueError(
                    f"layer-id mismatch: {part.layer_ids} vs {layer_ids}"
                )
        return YearLossTable(
            layer_ids=layer_ids,
            losses=np.concatenate([part.losses for part in parts], axis=1),
        )

    def allclose(self, other: "YearLossTable", rtol: float = 1e-9,
                 atol: float = 1e-9) -> bool:
        """Elementwise comparison used by cross-engine equivalence tests."""
        return (
            self.layer_ids == other.layer_ids
            and self.losses.shape == other.losses.shape
            and bool(
                np.allclose(self.losses, other.losses, rtol=rtol, atol=atol)
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"YearLossTable(n_layers={self.n_layers}, n_trials={self.n_trials})"
        )
