"""Layers (reinsurance contracts) and portfolios.

A Layer is the unit of contract pricing in the paper: it covers a set of
3–30 ELTs under *layer terms* ``T = (T_OccR, T_OccL, T_AggR, T_AggL)``:

* **Occurrence retention / limit** apply independently to each combined
  event loss in a trial (step three of Algorithm 1):
  ``l ← min(max(l − T_OccR, 0), T_OccL)``.
* **Aggregate retention / limit** apply to the running cumulative sum of
  occurrence losses within the trial (step four), so the result depends on
  the order of prior events — this is what makes the trial a sequence
  rather than a bag of events.

A Portfolio is a set of layers plus the shared pool of ELTs they cover.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.data.elt import EventLossTable
from repro.utils.validation import check_nonnegative


@dataclass(frozen=True)
class LayerTerms:
    """Occurrence and aggregate eXcess-of-Loss terms of one layer.

    Attributes
    ----------
    occ_retention:
        ``T_OccR`` — insured's deductible per individual event occurrence.
    occ_limit:
        ``T_OccL`` — insurer's maximum payout per occurrence in excess of
        the retention (``inf`` = unlimited).
    agg_retention:
        ``T_AggR`` — deductible on the annual cumulative loss.
    agg_limit:
        ``T_AggL`` — maximum annual payout in excess of the aggregate
        retention (``inf`` = unlimited).
    """

    occ_retention: float = 0.0
    occ_limit: float = math.inf
    agg_retention: float = 0.0
    agg_limit: float = math.inf

    def __post_init__(self) -> None:
        check_nonnegative("occ_retention", self.occ_retention)
        check_nonnegative("occ_limit", self.occ_limit)
        check_nonnegative("agg_retention", self.agg_retention)
        check_nonnegative("agg_limit", self.agg_limit)

    @property
    def is_identity(self) -> bool:
        """True if the terms never change any loss sequence."""
        return (
            self.occ_retention == 0.0
            and math.isinf(self.occ_limit)
            and self.agg_retention == 0.0
            and math.isinf(self.agg_limit)
        )

    def as_tuple(self) -> Tuple[float, float, float, float]:
        """The paper's ``(T_OccR, T_OccL, T_AggR, T_AggL)`` tuple."""
        return (
            self.occ_retention,
            self.occ_limit,
            self.agg_retention,
            self.agg_limit,
        )

    def max_annual_payout(self) -> float:
        """Upper bound on the trial loss implied by the aggregate limit."""
        return self.agg_limit


@dataclass
class Layer:
    """One reinsurance contract: covered ELTs plus layer terms.

    Attributes
    ----------
    layer_id:
        Identifier unique within a portfolio.
    elt_ids:
        Ids of the covered ELTs (resolved against the portfolio's pool).
        A typical layer covers 3–30 ELTs; the paper's benchmark uses 15.
    terms:
        The layer's occurrence/aggregate XL terms.
    """

    layer_id: int
    elt_ids: Tuple[int, ...]
    terms: LayerTerms = LayerTerms()

    def __post_init__(self) -> None:
        self.elt_ids = tuple(int(e) for e in self.elt_ids)
        if len(self.elt_ids) == 0:
            raise ValueError(f"layer {self.layer_id} must cover at least one ELT")
        if len(set(self.elt_ids)) != len(self.elt_ids):
            raise ValueError(
                f"layer {self.layer_id} lists duplicate ELT ids: {self.elt_ids}"
            )

    @property
    def n_elts(self) -> int:
        return len(self.elt_ids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Layer(layer_id={self.layer_id}, n_elts={self.n_elts}, "
            f"terms={self.terms.as_tuple()})"
        )


@dataclass
class Portfolio:
    """A book of layers and the pool of ELTs they reference.

    The portfolio owns the ELT objects; layers reference them by id so the
    same ELT shared by several layers is stored (and, on a device, staged)
    once.
    """

    elts: Dict[int, EventLossTable] = field(default_factory=dict)
    layers: List[Layer] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_elt(self, elt: EventLossTable) -> None:
        if elt.elt_id in self.elts:
            raise ValueError(f"duplicate ELT id {elt.elt_id}")
        self.elts[elt.elt_id] = elt

    def add_layer(self, layer: Layer) -> None:
        for elt_id in layer.elt_ids:
            if elt_id not in self.elts:
                raise KeyError(
                    f"layer {layer.layer_id} references unknown ELT {elt_id}"
                )
        if any(existing.layer_id == layer.layer_id for existing in self.layers):
            raise ValueError(f"duplicate layer id {layer.layer_id}")
        self.layers.append(layer)

    @classmethod
    def single_layer(
        cls, elts: Sequence[EventLossTable], terms: LayerTerms | None = None
    ) -> "Portfolio":
        """Portfolio with one layer covering all given ELTs.

        This is the paper's benchmark configuration (1 layer, 15 ELTs).
        """
        portfolio = cls()
        for elt in elts:
            portfolio.add_elt(elt)
        portfolio.add_layer(
            Layer(
                layer_id=0,
                elt_ids=tuple(elt.elt_id for elt in elts),
                terms=terms or LayerTerms(),
            )
        )
        return portfolio

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self.layers)

    @property
    def n_elts(self) -> int:
        return len(self.elts)

    def layer(self, layer_id: int) -> Layer:
        for layer in self.layers:
            if layer.layer_id == layer_id:
                return layer
        raise KeyError(f"no layer with id {layer_id}")

    def elts_of(self, layer: Layer) -> List[EventLossTable]:
        """The ELT objects covered by ``layer``, in declaration order."""
        return [self.elts[elt_id] for elt_id in layer.elt_ids]

    def total_event_losses(self) -> int:
        """Total non-zero loss records across the ELT pool."""
        return sum(elt.n_losses for elt in self.elts.values())

    def avg_elts_per_layer(self) -> float:
        if not self.layers:
            return 0.0
        return sum(layer.n_elts for layer in self.layers) / len(self.layers)

    def validate(self) -> None:
        """Check referential integrity of layers against the ELT pool."""
        for layer in self.layers:
            for elt_id in layer.elt_ids:
                if elt_id not in self.elts:
                    raise KeyError(
                        f"layer {layer.layer_id} references unknown ELT {elt_id}"
                    )
        seen_ids = [layer.layer_id for layer in self.layers]
        if len(set(seen_ids)) != len(seen_ids):
            raise ValueError(f"duplicate layer ids: {seen_ids}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Portfolio(n_layers={self.n_layers}, n_elts={self.n_elts}, "
            f"total_event_losses={self.total_event_losses()})"
        )
