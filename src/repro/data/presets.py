"""Workload presets: the paper-scale problem and runnable scaled versions.

``PAPER`` mirrors the benchmark of Section IV exactly in *shape*:
1 layer covering 15 ELTs of 20,000 losses each over a 2,000,000-event
catalogue, and a YET of 1,000,000 trials × 1,000 events — 15 billion ELT
lookups.  That instance is generated lazily only by explicit request (its
YET alone is ~8 GB); the analytic performance model consumes the *spec*,
not the data.

``BENCH_*`` presets keep the same shape ratios but shrink the trial count,
events per trial and catalogue so the real engines run in milliseconds to
seconds inside CI, as the Scientific-Python optimisation guide recommends
(profiling runs of ~seconds).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.utils.validation import check_positive


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of one aggregate-risk-analysis problem instance.

    Attributes mirror the paper's workload knobs (Section IV varies each
    of: number of events in a trial, number of trials, average number of
    ELTs per layer, number of layers).
    """

    name: str
    catalog_size: int
    n_trials: int
    events_per_trial: int
    n_elts: int  # informational: pool size implied by layers below
    elts_per_layer: int
    losses_per_elt: int
    n_layers: int = 1
    n_perils: int | None = None
    fixed_event_count: bool = True
    shared_elt_pool: bool = False
    identity_terms: bool = False
    seed: int = 20130812  # arXiv submission date of the paper

    def __post_init__(self) -> None:
        check_positive("catalog_size", self.catalog_size)
        check_positive("n_trials", self.n_trials)
        check_positive("events_per_trial", self.events_per_trial)
        check_positive("elts_per_layer", self.elts_per_layer)
        check_positive("losses_per_elt", self.losses_per_elt)
        check_positive("n_layers", self.n_layers)
        if self.losses_per_elt > self.catalog_size:
            raise ValueError(
                f"losses_per_elt ({self.losses_per_elt}) cannot exceed "
                f"catalog_size ({self.catalog_size})"
            )

    @property
    def n_occurrences(self) -> int:
        """Expected total event occurrences in the YET."""
        return self.n_trials * self.events_per_trial

    @property
    def n_lookups(self) -> int:
        """Expected total ELT lookups per full analysis."""
        return self.n_occurrences * self.elts_per_layer * self.n_layers

    @property
    def elt_density(self) -> float:
        """Non-zero fraction of a direct access table for one ELT."""
        return self.losses_per_elt / self.catalog_size

    def with_(self, **changes) -> "WorkloadSpec":
        """Return a modified copy (sweep helper for benchmarks)."""
        return replace(self, **changes)

    def direct_table_bytes(self, dtype_bytes: int = 8) -> int:
        """Memory of the direct-access tables for one layer's ELTs.

        The paper's example: 15 ELTs × 2,000,000 slots = 30,000,000
        event-loss pairs in memory.
        """
        return (self.catalog_size + 1) * dtype_bytes * self.elts_per_layer


# ----------------------------------------------------------------------
# The paper's benchmark instance (Section IV): generate only on purpose.
# ----------------------------------------------------------------------
PAPER = WorkloadSpec(
    name="paper",
    catalog_size=2_000_000,
    n_trials=1_000_000,
    events_per_trial=1_000,
    n_elts=15,
    elts_per_layer=15,
    losses_per_elt=20_000,
    n_layers=1,
)

# Scaled presets preserving the paper's shape ratios.  BENCH_DEFAULT is the
# measured-benchmark workhorse: ~30M lookups, seconds of Python runtime.
BENCH_SMALL = WorkloadSpec(
    name="bench-small",
    catalog_size=20_000,
    n_trials=2_000,
    events_per_trial=50,
    n_elts=5,
    elts_per_layer=5,
    losses_per_elt=500,
    n_layers=1,
)

BENCH_DEFAULT = WorkloadSpec(
    name="bench-default",
    catalog_size=200_000,
    n_trials=20_000,
    events_per_trial=100,
    n_elts=15,
    elts_per_layer=15,
    losses_per_elt=2_000,
    n_layers=1,
)

# Scenario-campaign workhorse: a small *multi-family* catalog (five
# named peril blocks — the event families overlays glob against), two
# layers over a shared ELT pool, and a trial count that divides cleanly
# into stride-100 segments so overlay windows and early-stop stages can
# align with segment boundaries.
SCENARIO_SMALL = WorkloadSpec(
    name="scenario-small",
    catalog_size=10_000,
    n_trials=2_000,
    events_per_trial=40,
    n_elts=8,
    elts_per_layer=4,
    losses_per_elt=400,
    n_layers=2,
    n_perils=5,
    fixed_event_count=False,
    shared_elt_pool=True,
)

BENCH_LARGE = WorkloadSpec(
    name="bench-large",
    catalog_size=500_000,
    n_trials=100_000,
    events_per_trial=200,
    n_elts=15,
    elts_per_layer=15,
    losses_per_elt=5_000,
    n_layers=1,
)


def scaled_paper_spec(
    trial_fraction: float = 0.02,
    event_fraction: float = 0.1,
    catalog_fraction: float = 0.1,
    name: str | None = None,
) -> WorkloadSpec:
    """A paper-shaped spec scaled down by the given fractions.

    Keeps 15 ELTs per layer and ELT density (1%) fixed so that lookup
    behaviour per occurrence matches the paper; only the volume shrinks.
    """
    if not 0 < trial_fraction <= 1:
        raise ValueError(f"trial_fraction must be in (0, 1], got {trial_fraction}")
    if not 0 < event_fraction <= 1:
        raise ValueError(f"event_fraction must be in (0, 1], got {event_fraction}")
    if not 0 < catalog_fraction <= 1:
        raise ValueError(
            f"catalog_fraction must be in (0, 1], got {catalog_fraction}"
        )
    catalog_size = max(1000, int(PAPER.catalog_size * catalog_fraction))
    return PAPER.with_(
        name=name or f"paper-scaled-{trial_fraction:g}",
        n_trials=max(1, int(PAPER.n_trials * trial_fraction)),
        events_per_trial=max(1, int(PAPER.events_per_trial * event_fraction)),
        catalog_size=catalog_size,
        losses_per_elt=max(1, int(catalog_size * PAPER.elt_density)),
    )
