"""Year Event Table (YET): the pre-simulated trial database.

A YET row (a *trial*) is one possible realisation of a contractual year:
an ordered sequence of catastrophe event occurrences
``(event_id, timestamp)`` sorted by ascending timestamp.  The paper's
experiments use 1,000,000 trials of 1,000 events each; real catalogues
produce 800–1500 events per trial, so the storage must handle ragged rows.

Storage layout
--------------
Trials are stored in CSR-like ragged form: one flat ``event_ids`` array,
one flat ``timestamps`` array, and an ``offsets`` array with
``offsets[i]:offsets[i+1]`` delimiting trial ``i``.  This is the layout
streamed to the (simulated) GPU.  Vectorised CPU engines prefer a
rectangular view, produced by :meth:`YearEventTable.to_dense` with null-id
padding (padding events have id 0 which every lookup structure maps to
zero loss, so padding never changes a result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.data.catalog import NULL_EVENT_ID
from repro.utils.validation import check_dtype

EVENT_ID_DTYPE = np.int32
TIMESTAMP_DTYPE = np.float32
OFFSET_DTYPE = np.int64


@dataclass
class YearEventTable:
    """Ragged table of pre-simulated trials.

    Attributes
    ----------
    event_ids:
        1-D ``int32`` array of all event occurrences, trial-major.
    timestamps:
        1-D ``float32`` array, same length, occurrence time within the year
        in ``[0, 1)``; non-decreasing within each trial.
    offsets:
        1-D ``int64`` array of length ``n_trials + 1``; trial ``i`` occupies
        ``event_ids[offsets[i]:offsets[i+1]]``.
    """

    event_ids: np.ndarray
    timestamps: np.ndarray
    offsets: np.ndarray

    def __post_init__(self) -> None:
        self.event_ids = np.ascontiguousarray(self.event_ids)
        self.timestamps = np.ascontiguousarray(self.timestamps)
        self.offsets = np.ascontiguousarray(self.offsets)
        check_dtype("event_ids", self.event_ids, EVENT_ID_DTYPE)
        check_dtype("timestamps", self.timestamps, TIMESTAMP_DTYPE)
        check_dtype("offsets", self.offsets, OFFSET_DTYPE)
        if self.event_ids.ndim != 1 or self.timestamps.ndim != 1:
            raise ValueError("event_ids and timestamps must be 1-D")
        if self.event_ids.shape != self.timestamps.shape:
            raise ValueError(
                f"event_ids and timestamps length mismatch: "
                f"{self.event_ids.shape} vs {self.timestamps.shape}"
            )
        if self.offsets.ndim != 1 or self.offsets.size < 1:
            raise ValueError("offsets must be 1-D with at least one entry")
        if self.offsets[0] != 0 or self.offsets[-1] != self.event_ids.size:
            raise ValueError(
                "offsets must start at 0 and end at the total event count"
            )
        if np.any(np.diff(self.offsets) < 0):
            raise ValueError("offsets must be non-decreasing")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trials(
        cls, trials: Sequence[Sequence[Tuple[int, float]]]
    ) -> "YearEventTable":
        """Build from a list of trials of ``(event_id, timestamp)`` pairs.

        Intended for tests and small examples; pairs are sorted by
        timestamp per trial, matching the paper's definition of a trial.
        """
        ids: List[int] = []
        times: List[float] = []
        offsets: List[int] = [0]
        for trial in trials:
            ordered = sorted(trial, key=lambda pair: pair[1])
            for event_id, timestamp in ordered:
                ids.append(event_id)
                times.append(timestamp)
            offsets.append(len(ids))
        return cls(
            event_ids=np.asarray(ids, dtype=EVENT_ID_DTYPE),
            timestamps=np.asarray(times, dtype=TIMESTAMP_DTYPE),
            offsets=np.asarray(offsets, dtype=OFFSET_DTYPE),
        )

    @classmethod
    def from_dense(
        cls, event_matrix: np.ndarray, timestamps: np.ndarray | None = None
    ) -> "YearEventTable":
        """Build from a rectangular ``(n_trials, n_events)`` id matrix.

        Null-id entries (0) are treated as padding and dropped.  If
        ``timestamps`` is omitted, events are assigned evenly spaced times.
        """
        matrix = np.asarray(event_matrix, dtype=EVENT_ID_DTYPE)
        if matrix.ndim != 2:
            raise ValueError(f"event_matrix must be 2-D, got shape {matrix.shape}")
        n_trials, width = matrix.shape
        if timestamps is None:
            base = ((np.arange(width, dtype=np.float64) + 0.5) / max(width, 1))
            times = np.broadcast_to(base, matrix.shape)
        else:
            times = np.asarray(timestamps, dtype=np.float64)
            if times.shape != matrix.shape:
                raise ValueError("timestamps shape must match event_matrix")
        keep = matrix != NULL_EVENT_ID
        counts = keep.sum(axis=1)
        offsets = np.zeros(n_trials + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        return cls(
            event_ids=matrix[keep].astype(EVENT_ID_DTYPE),
            timestamps=times[keep].astype(TIMESTAMP_DTYPE),
            offsets=offsets,
        )

    # ------------------------------------------------------------------
    # Shape & access
    # ------------------------------------------------------------------
    @property
    def n_trials(self) -> int:
        return self.offsets.size - 1

    @property
    def n_occurrences(self) -> int:
        """Total event occurrences across all trials."""
        return int(self.event_ids.size)

    @property
    def max_events_per_trial(self) -> int:
        if self.n_trials == 0:
            return 0
        return int(np.diff(self.offsets).max())

    @property
    def events_per_trial(self) -> np.ndarray:
        """1-D ``int64`` array of per-trial occurrence counts."""
        return np.diff(self.offsets)

    def trial(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(event_ids, timestamps)`` views for trial ``i``."""
        if not 0 <= i < self.n_trials:
            raise IndexError(f"trial {i} out of range 0..{self.n_trials - 1}")
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return self.event_ids[lo:hi], self.timestamps[lo:hi]

    def iter_trials(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate over ``(event_ids, timestamps)`` per trial."""
        for i in range(self.n_trials):
            yield self.trial(i)

    def slice_trials(self, start: int, stop: int) -> "YearEventTable":
        """Return a new YET containing trials ``start:stop``.

        This is the decomposition primitive of the multi-GPU engine: the
        trial space is split into contiguous blocks, one per device.
        """
        if not 0 <= start <= stop <= self.n_trials:
            raise IndexError(
                f"invalid trial slice [{start}, {stop}) of {self.n_trials}"
            )
        lo, hi = int(self.offsets[start]), int(self.offsets[stop])
        return YearEventTable(
            event_ids=self.event_ids[lo:hi].copy(),
            timestamps=self.timestamps[lo:hi].copy(),
            offsets=(self.offsets[start : stop + 1] - lo).astype(OFFSET_DTYPE),
        )

    @property
    def mean_events_per_trial(self) -> float:
        """Average occurrences per trial (the batch autotuner's input)."""
        if self.n_trials == 0:
            return 0.0
        return self.n_occurrences / self.n_trials

    def csr_block(self, start: int, stop: int) -> Tuple[np.ndarray, np.ndarray]:
        """Zero-copy CSR view of trials ``[start, stop)``.

        Returns ``(event_ids, offsets)`` where ``event_ids`` is a *view*
        into the flat id array (no copy, unlike :meth:`slice_trials`) and
        ``offsets`` is rebased to start at 0.  This is the unit the fused
        ragged kernel (:mod:`repro.core.kernels`) consumes: the whole
        point of the ragged path is that the trial block is never padded
        to a dense matrix, so handing out views keeps the event-fetch
        step allocation-free.
        """
        if not 0 <= start <= stop <= self.n_trials:
            raise IndexError(
                f"invalid trial slice [{start}, {stop}) of {self.n_trials}"
            )
        lo = int(self.offsets[start])
        return (
            self.event_ids[lo : int(self.offsets[stop])],
            self.offsets[start : stop + 1] - lo,
        )

    @staticmethod
    def concatenate(parts: Sequence["YearEventTable"]) -> "YearEventTable":
        """Stack trial databases end to end (trial order preserved).

        The growing-YET workflow: an extended table's first trials are
        byte-identical to the original's, so content-addressed segment
        keys over the old ranges are preserved and a store-aware delta
        plan re-computes only the appended tail.
        """
        if not parts:
            raise ValueError("cannot concatenate zero YET parts")
        offsets = [parts[0].offsets]
        base = int(parts[0].offsets[-1])
        for part in parts[1:]:
            offsets.append(part.offsets[1:] + base)
            base += int(part.offsets[-1])
        return YearEventTable(
            event_ids=np.concatenate([p.event_ids for p in parts]),
            timestamps=np.concatenate([p.timestamps for p in parts]),
            offsets=np.concatenate(offsets).astype(OFFSET_DTYPE),
        )

    def to_dense(self, width: int | None = None) -> np.ndarray:
        """Rectangular ``(n_trials, width)`` id matrix padded with 0.

        ``width`` defaults to the longest trial.  Padding uses the null
        event id, which maps to zero loss in every lookup structure, so
        running a vectorised kernel on the dense view gives results
        identical to the ragged form.
        """
        width = self.max_events_per_trial if width is None else width
        if width < self.max_events_per_trial:
            raise ValueError(
                f"width {width} < longest trial {self.max_events_per_trial}"
            )
        dense = np.full(
            (self.n_trials, width), NULL_EVENT_ID, dtype=EVENT_ID_DTYPE
        )
        counts = self.events_per_trial
        # Scatter each trial's events into its row without a Python loop
        # over occurrences: rows are repeated per count, columns are the
        # within-trial ranks.
        rows = np.repeat(np.arange(self.n_trials), counts)
        cols = np.arange(self.n_occurrences) - np.repeat(
            self.offsets[:-1], counts
        )
        dense[rows, cols] = self.event_ids
        return dense

    def validate_sorted_timestamps(self) -> bool:
        """Check timestamps are non-decreasing within every trial."""
        if self.n_occurrences < 2:
            return True
        diffs = np.diff(self.timestamps.astype(np.float64))
        # Boundaries between trials may legitimately decrease.
        boundary = np.zeros(self.n_occurrences - 1, dtype=bool)
        inner_offsets = self.offsets[1:-1]
        boundary[inner_offsets - 1] = True
        return bool(np.all(diffs[~boundary] >= 0))

    @property
    def nbytes(self) -> int:
        """In-memory footprint of the table arrays in bytes."""
        return int(
            self.event_ids.nbytes + self.timestamps.nbytes + self.offsets.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"YearEventTable(n_trials={self.n_trials}, "
            f"n_occurrences={self.n_occurrences}, "
            f"max_events_per_trial={self.max_events_per_trial})"
        )
