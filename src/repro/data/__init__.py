"""Data model for aggregate risk analysis.

This subpackage implements the three inputs of the paper's Algorithm 1 and
its output:

* :class:`~repro.data.catalog.EventCatalog` — the global catalogue of
  stochastic catastrophe events (the paper's examples use 2,000,000 events
  across multiple perils).
* :class:`~repro.data.yet.YearEventTable` (YET) — pre-simulated trials;
  each trial is a time-ordered sequence of ``(event_id, timestamp)`` pairs.
* :class:`~repro.data.elt.EventLossTable` (ELT) — losses per event for one
  exposure set, with per-ELT financial terms.
* :class:`~repro.data.layer.Layer` / :class:`~repro.data.layer.Portfolio` —
  reinsurance contracts covering sets of ELTs under occurrence/aggregate
  layer terms.
* :class:`~repro.data.ylt.YearLossTable` (YLT) — one aggregate annual loss
  per (layer, trial), the simulation output.

Synthetic workload generators (:mod:`repro.data.generator`) build
statistically plausible instances of all of the above at any scale,
including the paper-scale preset in :mod:`repro.data.presets`.
"""

from repro.data.catalog import EventCatalog, PerilRegion
from repro.data.elt import ELTFinancialTerms, EventLossTable
from repro.data.layer import Layer, LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.data.generator import (
    generate_catalog,
    generate_elt,
    generate_layer,
    generate_portfolio,
    generate_workload,
    generate_yet,
)
from repro.data.presets import (
    WorkloadSpec,
    BENCH_SMALL,
    BENCH_DEFAULT,
    BENCH_LARGE,
    PAPER,
    SCENARIO_SMALL,
    scaled_paper_spec,
)

__all__ = [
    "EventCatalog",
    "PerilRegion",
    "ELTFinancialTerms",
    "EventLossTable",
    "Layer",
    "LayerTerms",
    "Portfolio",
    "YearEventTable",
    "YearLossTable",
    "generate_catalog",
    "generate_elt",
    "generate_layer",
    "generate_portfolio",
    "generate_workload",
    "generate_yet",
    "WorkloadSpec",
    "BENCH_SMALL",
    "BENCH_DEFAULT",
    "BENCH_LARGE",
    "PAPER",
    "SCENARIO_SMALL",
    "scaled_paper_spec",
]
