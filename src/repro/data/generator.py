"""Synthetic workload generators.

The paper's inputs come from a proprietary catastrophe-modelling pipeline
(pre-simulated YETs and exposure-derived ELTs).  These generators build the
closest synthetic equivalents: the *sizes, sparsity and access patterns*
match the paper's stated shapes (2M-event catalogue, ~1000 events/trial,
10K–30K losses per ELT, 3–30 ELTs per layer), and the statistical texture
(multi-peril frequency mix, seasonality of occurrence times, heavy-tailed
lognormal severities) matches what catastrophe models produce.  Aggregate
risk analysis performance depends only on those shapes, and correctness is
established against the scalar reference on arbitrary inputs, so the
substitution preserves everything the experiments measure.

All functions are deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.data.catalog import EventCatalog, PerilRegion
from repro.data.elt import ELTFinancialTerms, EventLossTable
from repro.data.layer import Layer, LayerTerms, Portfolio
from repro.data.yet import (
    EVENT_ID_DTYPE,
    OFFSET_DTYPE,
    TIMESTAMP_DTYPE,
    YearEventTable,
)
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_positive

# Default peril mix used when a catalogue is generated without an explicit
# peril list.  Rates are per-trial-year occurrence counts and sum to ~1000,
# the paper's events-per-trial centre; severities are lognormal parameters.
_DEFAULT_PERIL_MIX: Tuple[Tuple[str, float, float, float, float], ...] = (
    # (name, share of catalogue, share of annual rate, mu, sigma)
    ("NA-hurricane", 0.25, 0.30, 16.0, 1.9),
    ("NA-earthquake", 0.20, 0.10, 16.5, 2.1),
    ("EU-windstorm", 0.20, 0.25, 15.2, 1.6),
    ("JP-typhoon", 0.15, 0.20, 15.6, 1.7),
    ("Global-flood", 0.20, 0.15, 14.8, 1.5),
)

# Seasonality: per-peril Beta(a, b) distribution of occurrence timestamps
# within the year.  Hurricanes/typhoons peak late in the year, windstorms
# early, earthquakes are uniform.
_SEASONALITY = {
    "NA-hurricane": (6.0, 3.0),
    "NA-earthquake": (1.0, 1.0),
    "EU-windstorm": (2.0, 6.0),
    "JP-typhoon": (5.0, 3.0),
    "Global-flood": (2.0, 2.0),
}


def generate_catalog(
    n_events: int,
    n_perils: int | None = None,
    total_annual_rate: float = 1000.0,
    seed: SeedLike = None,
) -> EventCatalog:
    """Generate a multi-peril event catalogue.

    Parameters
    ----------
    n_events:
        Catalogue size (the paper's experiments assume 2,000,000).
    n_perils:
        Number of peril blocks; defaults to the built-in five-peril mix
        (capped at ``n_events`` blocks of at least one event).
    total_annual_rate:
        Expected event occurrences per trial year summed over perils,
        i.e. the mean events-per-trial of a YET drawn from this catalogue.
    seed:
        Unused today (the mix is deterministic) but accepted for symmetry
        with the other generators.
    """
    check_positive("n_events", n_events)
    check_positive("total_annual_rate", total_annual_rate)
    mix = _DEFAULT_PERIL_MIX
    if n_perils is not None:
        if not 1 <= n_perils <= len(mix):
            mix = tuple(
                (f"peril-{i}", 1.0 / n_perils, 1.0 / n_perils, 15.0, 1.8)
                for i in range(n_perils)
            )
        else:
            mix = mix[:n_perils]
    # Re-normalise shares after truncation.
    size_total = sum(m[1] for m in mix)
    rate_total = sum(m[2] for m in mix)

    perils: List[PerilRegion] = []
    cursor = 1
    for i, (name, size_share, rate_share, mu, sigma) in enumerate(mix):
        if i == len(mix) - 1:
            block = n_events - cursor + 1  # absorb rounding remainder
        else:
            block = max(1, int(round(n_events * size_share / size_total)))
            block = min(block, n_events - cursor + 1 - (len(mix) - 1 - i))
        if block <= 0:
            break
        perils.append(
            PerilRegion(
                name=name,
                first_event_id=cursor,
                last_event_id=cursor + block - 1,
                annual_rate=total_annual_rate * rate_share / rate_total,
                severity_mu=mu,
                severity_sigma=sigma,
            )
        )
        cursor += block
    return EventCatalog(n_events=n_events, perils=tuple(perils))


def _sample_event_ids(
    catalog: EventCatalog, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` occurrence event ids following the peril rate mix."""
    if n == 0:
        return np.empty(0, dtype=EVENT_ID_DTYPE)
    if not catalog.perils:
        return rng.integers(1, catalog.n_events + 1, size=n).astype(
            EVENT_ID_DTYPE
        )
    weights = np.array([p.annual_rate for p in catalog.perils], dtype=np.float64)
    weights /= weights.sum()
    peril_idx = rng.choice(len(catalog.perils), size=n, p=weights)
    firsts = np.array([p.first_event_id for p in catalog.perils])
    sizes = np.array([p.n_events for p in catalog.perils])
    within = (rng.random(n) * sizes[peril_idx]).astype(np.int64)
    return (firsts[peril_idx] + within).astype(EVENT_ID_DTYPE)


def _sample_timestamps(
    catalog: EventCatalog, event_ids: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample within-year occurrence times with per-peril seasonality."""
    n = event_ids.size
    if n == 0:
        return np.empty(0, dtype=TIMESTAMP_DTYPE)
    if not catalog.perils:
        return rng.random(n).astype(TIMESTAMP_DTYPE)
    times = np.empty(n, dtype=np.float64)
    starts = np.array([p.first_event_id for p in catalog.perils])
    peril_idx = np.searchsorted(starts, event_ids, side="right") - 1
    for i, peril in enumerate(catalog.perils):
        mask = peril_idx == i
        count = int(mask.sum())
        if count == 0:
            continue
        a, b = _SEASONALITY.get(peril.name, (1.0, 1.0))
        times[mask] = rng.beta(a, b, size=count)
    return times.astype(TIMESTAMP_DTYPE)


def generate_yet(
    catalog: EventCatalog,
    n_trials: int,
    events_per_trial: int | None = None,
    fixed_event_count: bool = True,
    seed: SeedLike = None,
) -> YearEventTable:
    """Generate a Year Event Table from a catalogue.

    Parameters
    ----------
    catalog:
        Source event catalogue (defines id space, peril mix, seasonality).
    n_trials:
        Number of pre-simulated years (the paper uses up to 1,000,000).
    events_per_trial:
        Mean occurrences per trial.  Defaults to the catalogue's total
        annual rate.
    fixed_event_count:
        If True (the paper's benchmark shape) every trial has exactly
        ``events_per_trial`` events; otherwise counts are Poisson
        distributed around it, giving the 800–1500 ragged shape.
    seed:
        RNG seed or generator.
    """
    check_positive("n_trials", n_trials)
    rng = default_rng(seed)
    mean_events = (
        float(events_per_trial)
        if events_per_trial is not None
        else catalog.total_annual_rate
    )
    check_positive("events_per_trial", mean_events)

    if fixed_event_count:
        counts = np.full(n_trials, int(round(mean_events)), dtype=np.int64)
    else:
        counts = rng.poisson(mean_events, size=n_trials).astype(np.int64)
    total = int(counts.sum())

    offsets = np.zeros(n_trials + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])

    event_ids = _sample_event_ids(catalog, total, rng)
    timestamps = _sample_timestamps(catalog, event_ids, rng)

    # Sort occurrences by timestamp *within* each trial: lexsort with the
    # trial index as primary key preserves trial blocks.
    trial_index = np.repeat(np.arange(n_trials, dtype=np.int64), counts)
    order = np.lexsort((timestamps, trial_index))
    return YearEventTable(
        event_ids=event_ids[order],
        timestamps=timestamps[order],
        offsets=offsets,
    )


def _sample_distinct_ids(
    catalog: EventCatalog, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Sample ``n`` distinct event ids uniformly from the catalogue.

    Avoids materialising a permutation of the whole (possibly 2M-entry)
    id space: oversample with replacement, deduplicate, repeat until
    enough, which is O(n) for the sparse ELT densities used here.
    """
    if n > catalog.n_events:
        raise ValueError(
            f"cannot draw {n} distinct ids from a {catalog.n_events}-event "
            f"catalogue"
        )
    if n * 3 >= catalog.n_events:
        # Dense request: a permutation is affordable and exact.
        ids = rng.permutation(catalog.n_events)[:n] + 1
        return np.sort(ids).astype(EVENT_ID_DTYPE)
    chosen = np.empty(0, dtype=np.int64)
    while chosen.size < n:
        need = n - chosen.size
        draw = rng.integers(1, catalog.n_events + 1, size=int(need * 1.3) + 8)
        chosen = np.unique(np.concatenate([chosen, draw]))
    # np.unique sorted them; subsample deterministically if we overshot.
    if chosen.size > n:
        keep = rng.choice(chosen.size, size=n, replace=False)
        chosen = np.sort(chosen[keep])
    return chosen.astype(EVENT_ID_DTYPE)


def _severities_for_ids(
    catalog: EventCatalog, event_ids: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Draw lognormal ground-up losses using each event's peril severity."""
    n = event_ids.size
    losses = np.empty(n, dtype=np.float64)
    if not catalog.perils:
        return rng.lognormal(15.0, 1.8, size=n)
    starts = np.array([p.first_event_id for p in catalog.perils])
    peril_idx = np.searchsorted(starts, event_ids, side="right") - 1
    for i, peril in enumerate(catalog.perils):
        mask = peril_idx == i
        count = int(mask.sum())
        if count:
            losses[mask] = rng.lognormal(
                peril.severity_mu, peril.severity_sigma, size=count
            )
    return losses


def generate_elt(
    catalog: EventCatalog,
    elt_id: int,
    n_losses: int,
    terms: ELTFinancialTerms | None = None,
    seed: SeedLike = None,
) -> EventLossTable:
    """Generate one Event Loss Table.

    ``n_losses`` distinct events receive a non-zero lognormal loss whose
    severity parameters come from the event's peril block — so the same
    catalogue yields correlated but distinct ELTs, like different exposure
    sets against one event universe.
    """
    check_positive("n_losses", n_losses)
    rng = default_rng(seed)
    ids = _sample_distinct_ids(catalog, n_losses, rng)
    losses = _severities_for_ids(catalog, ids, rng)
    return EventLossTable(
        elt_id=elt_id,
        event_ids=ids,
        losses=losses,
        terms=terms or ELTFinancialTerms(),
    )


def _default_elt_terms(
    rng: np.random.Generator, typical_loss: float
) -> ELTFinancialTerms:
    """Randomised but realistic per-ELT financial terms."""
    retention = float(rng.uniform(0.0, 0.10)) * typical_loss
    limit = float(rng.uniform(5.0, 50.0)) * typical_loss
    share = float(rng.uniform(0.5, 1.0))
    currency_rate = float(rng.choice([1.0, 1.0, 1.0, 0.79, 1.09, 110.0 / 100]))
    return ELTFinancialTerms(
        retention=retention, limit=limit, share=share, currency_rate=currency_rate
    )


def _default_layer_terms(
    rng: np.random.Generator, typical_loss: float
) -> LayerTerms:
    """Randomised but realistic occurrence/aggregate XL terms."""
    occ_retention = float(rng.uniform(0.5, 2.0)) * typical_loss
    occ_limit = float(rng.uniform(2.0, 10.0)) * typical_loss
    agg_retention = float(rng.uniform(0.0, 2.0)) * typical_loss
    agg_limit = float(rng.uniform(10.0, 50.0)) * typical_loss
    return LayerTerms(
        occ_retention=occ_retention,
        occ_limit=occ_limit,
        agg_retention=agg_retention,
        agg_limit=agg_limit,
    )


def generate_layer(
    layer_id: int,
    elt_ids: Sequence[int],
    typical_loss: float = 1.0e7,
    terms: LayerTerms | None = None,
    seed: SeedLike = None,
) -> Layer:
    """Generate a layer covering ``elt_ids`` with realistic XL terms."""
    rng = default_rng(seed)
    return Layer(
        layer_id=layer_id,
        elt_ids=tuple(elt_ids),
        terms=terms or _default_layer_terms(rng, typical_loss),
    )


def generate_portfolio(
    catalog: EventCatalog,
    n_layers: int,
    elts_per_layer: int,
    losses_per_elt: int,
    shared_elt_pool: bool = True,
    identity_terms: bool = False,
    typical_loss: float = 1.0e7,
    seed: SeedLike = None,
) -> Portfolio:
    """Generate a portfolio of layers over a pool of ELTs.

    Parameters
    ----------
    shared_elt_pool:
        If True, layers draw from a pool of ``n_layers * elts_per_layer /
        2`` ELTs (so ELTs are shared between layers, as in a real book);
        otherwise every layer gets its own private ELTs.
    identity_terms:
        If True all financial and layer terms are identities — useful for
        tests where the expected YLT can be computed by summing raw losses.
    """
    check_positive("n_layers", n_layers)
    check_positive("elts_per_layer", elts_per_layer)
    rng = default_rng(seed)

    if shared_elt_pool and n_layers > 1:
        pool_size = max(elts_per_layer, (n_layers * elts_per_layer) // 2)
    else:
        pool_size = n_layers * elts_per_layer

    portfolio = Portfolio()
    for elt_id in range(pool_size):
        terms = (
            ELTFinancialTerms()
            if identity_terms
            else _default_elt_terms(rng, typical_loss)
        )
        portfolio.add_elt(
            generate_elt(
                catalog,
                elt_id=elt_id,
                n_losses=losses_per_elt,
                terms=terms,
                seed=rng,
            )
        )

    all_ids = np.arange(pool_size)
    for layer_id in range(n_layers):
        if shared_elt_pool and n_layers > 1:
            chosen = rng.choice(all_ids, size=elts_per_layer, replace=False)
        else:
            chosen = all_ids[
                layer_id * elts_per_layer : (layer_id + 1) * elts_per_layer
            ]
        layer_terms = (
            LayerTerms() if identity_terms else _default_layer_terms(rng, typical_loss)
        )
        portfolio.add_layer(
            Layer(
                layer_id=layer_id,
                elt_ids=tuple(int(i) for i in np.sort(chosen)),
                terms=layer_terms,
            )
        )
    return portfolio


@dataclass
class Workload:
    """A complete generated problem instance: catalogue + YET + portfolio."""

    catalog: EventCatalog
    yet: YearEventTable
    portfolio: Portfolio
    name: str = "workload"

    @property
    def n_lookups(self) -> int:
        """Total ELT lookups Algorithm 1 performs on this workload.

        Every layer looks up every occurrence in each of its ELTs, so the
        total is ``sum over layers of (n_occurrences * n_elts)``.  The
        paper's example: 1,000 events × 1,000,000 trials × 15 ELTs =
        15 billion lookups.
        """
        return int(
            sum(
                self.yet.n_occurrences * layer.n_elts
                for layer in self.portfolio.layers
            )
        )

    def summary(self) -> str:
        return (
            f"{self.name}: {self.yet.n_trials} trials x "
            f"~{self.yet.n_occurrences // max(self.yet.n_trials, 1)} events, "
            f"{self.portfolio.n_layers} layer(s), "
            f"{self.portfolio.n_elts} ELTs, "
            f"{self.n_lookups:,} total lookups"
        )


def generate_workload(
    spec: "WorkloadSpec",  # noqa: F821 - imported at call time to avoid cycle
    seed: SeedLike = None,
) -> Workload:
    """Generate the full problem instance described by a WorkloadSpec."""
    from repro.data.presets import WorkloadSpec  # local: avoid import cycle

    if not isinstance(spec, WorkloadSpec):
        raise TypeError(f"expected WorkloadSpec, got {type(spec)!r}")
    rng = default_rng(spec.seed if seed is None else seed)
    catalog = generate_catalog(
        n_events=spec.catalog_size,
        n_perils=spec.n_perils,
        total_annual_rate=float(spec.events_per_trial),
        seed=rng,
    )
    yet = generate_yet(
        catalog,
        n_trials=spec.n_trials,
        events_per_trial=spec.events_per_trial,
        fixed_event_count=spec.fixed_event_count,
        seed=rng,
    )
    portfolio = generate_portfolio(
        catalog,
        n_layers=spec.n_layers,
        elts_per_layer=spec.elts_per_layer,
        losses_per_elt=spec.losses_per_elt,
        shared_elt_pool=spec.shared_elt_pool,
        identity_terms=spec.identity_terms,
        seed=rng,
    )
    return Workload(catalog=catalog, yet=yet, portfolio=portfolio, name=spec.name)
