"""Event Loss Table (ELT) and its financial terms.

An ELT maps event ids to ground-up losses for one exposure set.  The same
event can appear in several ELTs with different losses (different exposure
sets).  Each ELT carries metadata — currency exchange rate and financial
terms applied *per event loss* before losses are accumulated across the
ELTs of a layer (step two of Algorithm 1).

The paper leaves the exact financial-term algebra abstract
(``I = (I1, I2, ...)``).  We instantiate the standard per-risk terms used
for loss sets in catastrophe reinsurance:

``net = share * min(max(gross * fx - retention, 0), limit)``

i.e. currency conversion, a per-event deductible (retention), a per-event
cover (limit) and a participation share.  Setting
``retention=0, limit=inf, share=1, fx=1`` makes the terms the identity,
which tests rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping

import numpy as np

from repro.utils.validation import check_nonnegative, check_positive

LOSS_DTYPE = np.float64


@dataclass(frozen=True)
class ELTFinancialTerms:
    """Per-event-loss financial terms attached to one ELT.

    Attributes
    ----------
    retention:
        Deductible subtracted from each (currency-converted) event loss.
    limit:
        Maximum payout per event loss after retention (``inf`` = unlimited).
    share:
        Participation fraction applied after retention/limit, in ``(0, 1]``.
    currency_rate:
        Multiplicative exchange rate applied to the gross loss first.
    """

    retention: float = 0.0
    limit: float = math.inf
    share: float = 1.0
    currency_rate: float = 1.0

    def __post_init__(self) -> None:
        check_nonnegative("retention", self.retention)
        check_nonnegative("limit", self.limit)
        check_positive("share", self.share)
        if self.share > 1.0:
            raise ValueError(f"share must be in (0, 1], got {self.share}")
        check_positive("currency_rate", self.currency_rate)

    @property
    def is_identity(self) -> bool:
        """True if applying these terms never changes a loss."""
        return (
            self.retention == 0.0
            and math.isinf(self.limit)
            and self.share == 1.0
            and self.currency_rate == 1.0
        )

    def apply(self, losses: np.ndarray) -> np.ndarray:
        """Vectorised application: ``share*min(max(l*fx - ret, 0), lim)``.

        Floating inputs keep their dtype (float32 in, float32 out — the
        reduced-precision path must not upcast); integer inputs are
        promoted to ``float64``.
        """
        arr = np.asarray(losses)
        work = arr.dtype if arr.dtype.kind == "f" else np.dtype(LOSS_DTYPE)
        converted = arr.astype(work, copy=False) * work.type(self.currency_rate)
        excess = np.maximum(converted - work.type(self.retention), work.type(0))
        if math.isfinite(self.limit):
            excess = np.minimum(excess, work.type(self.limit))
        return excess * work.type(self.share)

    def apply_scalar(self, loss: float) -> float:
        """Scalar application, used by the line-by-line reference engine."""
        converted = loss * self.currency_rate
        excess = max(converted - self.retention, 0.0)
        if math.isfinite(self.limit):
            excess = min(excess, self.limit)
        return excess * self.share

    def as_tuple(self) -> tuple:
        """The paper's ``I = (I1, I2, ...)`` tuple view of the terms."""
        return (self.retention, self.limit, self.share, self.currency_rate)


@dataclass
class EventLossTable:
    """Sparse event → loss mapping for one exposure set.

    Attributes
    ----------
    elt_id:
        Identifier unique within a portfolio.
    event_ids:
        1-D ``int32`` array of event ids with non-zero loss, strictly
        increasing (sorted unique).
    losses:
        1-D ``float64`` array of ground-up losses, ``> 0``, aligned with
        ``event_ids``.
    terms:
        Financial terms applied per event loss (step two of Algorithm 1).
    """

    elt_id: int
    event_ids: np.ndarray
    losses: np.ndarray
    terms: ELTFinancialTerms = ELTFinancialTerms()

    def __post_init__(self) -> None:
        self.event_ids = np.ascontiguousarray(self.event_ids, dtype=np.int32)
        self.losses = np.ascontiguousarray(self.losses, dtype=LOSS_DTYPE)
        if self.event_ids.ndim != 1 or self.losses.ndim != 1:
            raise ValueError("event_ids and losses must be 1-D")
        if self.event_ids.shape != self.losses.shape:
            raise ValueError(
                f"event_ids/losses length mismatch: "
                f"{self.event_ids.size} vs {self.losses.size}"
            )
        if self.event_ids.size:
            if self.event_ids.min() < 1:
                raise ValueError(
                    "event ids must be >= 1 (0 is the reserved null event)"
                )
            if np.any(np.diff(self.event_ids) <= 0):
                raise ValueError("event_ids must be strictly increasing")
            if not np.all(np.isfinite(self.losses)):
                raise ValueError("losses must be finite (no NaN/inf)")
            if np.any(self.losses < 0):
                raise ValueError("losses must be non-negative")

    @classmethod
    def from_dict(
        cls,
        elt_id: int,
        mapping: Mapping[int, float],
        terms: ELTFinancialTerms | None = None,
    ) -> "EventLossTable":
        """Build from an ``{event_id: loss}`` mapping (test convenience)."""
        if mapping:
            ids = np.array(sorted(mapping), dtype=np.int32)
            losses = np.array([mapping[int(i)] for i in ids], dtype=LOSS_DTYPE)
        else:
            ids = np.empty(0, dtype=np.int32)
            losses = np.empty(0, dtype=LOSS_DTYPE)
        return cls(
            elt_id=elt_id,
            event_ids=ids,
            losses=losses,
            terms=terms or ELTFinancialTerms(),
        )

    @property
    def n_losses(self) -> int:
        """Number of events with a recorded (non-zero) loss."""
        return int(self.event_ids.size)

    @property
    def max_event_id(self) -> int:
        return int(self.event_ids[-1]) if self.n_losses else 0

    def to_dict(self) -> Dict[int, float]:
        """Plain-dict oracle view used by lookup-structure tests."""
        return {
            int(event_id): float(loss)
            for event_id, loss in zip(self.event_ids, self.losses)
        }

    def loss_of(self, event_id: int) -> float:
        """Ground-up loss for ``event_id`` (0.0 if absent), via bisection."""
        idx = int(np.searchsorted(self.event_ids, event_id))
        if idx < self.n_losses and int(self.event_ids[idx]) == int(event_id):
            return float(self.losses[idx])
        return 0.0

    def net_losses(self) -> np.ndarray:
        """All recorded losses with financial terms applied."""
        return self.terms.apply(self.losses)

    def density(self, catalog_size: int) -> float:
        """Fraction of the catalogue with non-zero loss in this ELT.

        The paper's example: 20,000 losses over a 2,000,000-event catalogue
        → density 0.01, i.e. a direct access table is 99% zeros.
        """
        check_positive("catalog_size", catalog_size)
        return self.n_losses / catalog_size

    @property
    def nbytes_sparse(self) -> int:
        """Memory of the compact (sorted-pairs) representation in bytes."""
        return int(self.event_ids.nbytes + self.losses.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EventLossTable(elt_id={self.elt_id}, n_losses={self.n_losses}, "
            f"terms={self.terms.as_tuple()})"
        )
