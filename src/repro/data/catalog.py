"""Event catalogue: the universe of stochastic catastrophe events.

The paper's direct-access-table argument hinges on the catalogue size: an
ELT with ~20,000 non-zero losses is stored as a dense array over the whole
2,000,000-event catalogue so a loss lookup costs exactly one memory access.
The catalogue therefore defines the event-id address space shared by the
YET and every ELT.

Event ids are 1-based; id ``0`` is reserved as the "null event" used to pad
rectangular YET views, and is guaranteed to have zero loss in every lookup
structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_positive

NULL_EVENT_ID = 0
"""Reserved event id used for padding; always maps to zero loss."""


@dataclass(frozen=True)
class PerilRegion:
    """A contiguous block of the catalogue belonging to one peril/region.

    A real global catalogue mixes perils (hurricane, earthquake, flood...)
    over regions; events of different perils have different occurrence
    frequencies and loss severities.  The synthetic generators use these
    blocks to give the YET and ELTs realistic non-uniform structure.

    Attributes
    ----------
    name:
        Human-readable peril/region label, e.g. ``"NA-hurricane"``.
    first_event_id, last_event_id:
        Inclusive 1-based id range ``[first_event_id, last_event_id]``.
    annual_rate:
        Expected number of occurrences of events from this block per trial
        year (drives Poisson sampling in the YET generator).
    severity_mu, severity_sigma:
        Lognormal parameters of ground-up loss severity for this peril.
    """

    name: str
    first_event_id: int
    last_event_id: int
    annual_rate: float
    severity_mu: float = 15.0
    severity_sigma: float = 1.8

    def __post_init__(self) -> None:
        if self.first_event_id < 1:
            raise ValueError(
                f"first_event_id must be >= 1 (0 is the null event), got "
                f"{self.first_event_id}"
            )
        if self.last_event_id < self.first_event_id:
            raise ValueError(
                f"empty peril block: [{self.first_event_id}, {self.last_event_id}]"
            )
        check_positive("annual_rate", self.annual_rate)
        check_positive("severity_sigma", self.severity_sigma)

    @property
    def n_events(self) -> int:
        return self.last_event_id - self.first_event_id + 1

    def contains(self, event_id: int) -> bool:
        return self.first_event_id <= event_id <= self.last_event_id


@dataclass(frozen=True)
class EventCatalog:
    """The global event catalogue: id space plus peril structure.

    Attributes
    ----------
    n_events:
        Catalogue size.  Valid event ids are ``1..n_events``; the dense
        direct-access representation of an ELT allocates ``n_events + 1``
        slots (slot 0 is the null event).
    perils:
        Disjoint :class:`PerilRegion` blocks covering ``1..n_events``.
    """

    n_events: int
    perils: Tuple[PerilRegion, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        check_positive("n_events", self.n_events)
        cursor = 1
        for peril in self.perils:
            if peril.first_event_id != cursor:
                raise ValueError(
                    f"peril blocks must tile 1..n_events contiguously; "
                    f"expected block starting at {cursor}, got "
                    f"{peril.name} starting at {peril.first_event_id}"
                )
            cursor = peril.last_event_id + 1
        if self.perils and cursor != self.n_events + 1:
            raise ValueError(
                f"peril blocks cover 1..{cursor - 1} but catalogue has "
                f"{self.n_events} events"
            )

    @classmethod
    def uniform(cls, n_events: int, name: str = "all-perils",
                annual_rate: float = 1000.0) -> "EventCatalog":
        """A single-peril catalogue covering the whole id space."""
        return cls(
            n_events=n_events,
            perils=(
                PerilRegion(
                    name=name,
                    first_event_id=1,
                    last_event_id=n_events,
                    annual_rate=annual_rate,
                ),
            ),
        )

    @classmethod
    def with_perils(
        cls,
        blocks: Sequence[Tuple[str, int, float]],
        severity: Sequence[Tuple[float, float]] | None = None,
    ) -> "EventCatalog":
        """Build a catalogue from ``(name, n_events, annual_rate)`` blocks.

        ``severity`` optionally supplies ``(mu, sigma)`` lognormal severity
        parameters per block.
        """
        perils: List[PerilRegion] = []
        cursor = 1
        for i, (name, n_events, rate) in enumerate(blocks):
            mu, sigma = (15.0, 1.8) if severity is None else severity[i]
            perils.append(
                PerilRegion(
                    name=name,
                    first_event_id=cursor,
                    last_event_id=cursor + n_events - 1,
                    annual_rate=rate,
                    severity_mu=mu,
                    severity_sigma=sigma,
                )
            )
            cursor += n_events
        return cls(n_events=cursor - 1, perils=tuple(perils))

    @property
    def total_annual_rate(self) -> float:
        """Expected total event occurrences per trial year."""
        return sum(p.annual_rate for p in self.perils)

    @property
    def n_perils(self) -> int:
        return len(self.perils)

    def peril_of(self, event_id: int) -> PerilRegion:
        """Return the peril block containing ``event_id`` (binary search)."""
        if not 1 <= event_id <= self.n_events:
            raise KeyError(f"event id {event_id} outside catalogue 1..{self.n_events}")
        if not self.perils:
            raise KeyError("catalogue has no peril structure")
        starts = [p.first_event_id for p in self.perils]
        idx = int(np.searchsorted(starts, event_id, side="right")) - 1
        return self.perils[idx]

    def peril_weights(self) -> Dict[str, float]:
        """Fraction of the total annual rate contributed by each peril."""
        total = self.total_annual_rate
        if total <= 0:
            return {p.name: 0.0 for p in self.perils}
        return {p.name: p.annual_rate / total for p in self.perils}

    def validate_event_ids(self, event_ids: np.ndarray,
                           allow_null: bool = False) -> None:
        """Raise if any id falls outside the catalogue address space."""
        ids = np.asarray(event_ids)
        low = 0 if allow_null else 1
        if ids.size and (ids.min() < low or ids.max() > self.n_events):
            raise ValueError(
                f"event ids must lie in [{low}, {self.n_events}]; got range "
                f"[{ids.min()}, {ids.max()}]"
            )
