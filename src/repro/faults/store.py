"""FaultyStore: a result-store wrapper that injects planned failures.

Wraps any :class:`~repro.store.base.ResultStore` and consults a
:class:`~repro.faults.plan.FaultPlan` on every backend operation:

* ``io_error`` on ``get``/``put``/``contains``/``delete`` — raises
  :class:`OSError` *instead* of performing the operation (a flaky disk
  / network tier);
* ``latency`` on ``get``/``put``/``contains``/``delete`` — sleeps
  before proceeding (a slow tier; what the lock-contention, straggler
  and hedged-read tests lean on).  Existence probes and invalidations
  matter to the *serving* tier: store-aware admission checks ride
  ``contains`` and corrupt-entry retirement rides ``delete``, so chaos
  must be able to slow or fail both;
* ``corrupt`` on ``get`` — the read succeeds but one array's bytes are
  flipped in the returned copy (damage past the backend's own CRC,
  caught only by end-to-end checksums —
  :func:`repro.store.verify.fetch_verified`);
* ``torn_write`` on ``put`` — the entry is persisted with one array
  truncated (a partial write the backend believes is complete; durable
  damage that verification must detect and delete).

The wrapper is itself a full ``ResultStore`` (its own hit/miss
counters, in-flight dedup), and delegates ``_exclusive`` to the inner
store so :class:`~repro.store.filestore.SharedFileStore` cross-process
dedup still holds under injection.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.faults.plan import (
    KIND_CORRUPT,
    KIND_IO_ERROR,
    KIND_LATENCY,
    KIND_TORN_WRITE,
    OP_CONTAINS,
    OP_DELETE,
    OP_GET,
    OP_PUT,
    FaultPlan,
)
from repro.store.base import ResultStore, StoreEntry


def _corrupted_copy(entry: StoreEntry) -> StoreEntry:
    """The entry with the first array's first element bit-flipped."""
    arrays = {}
    damaged = False
    for name in sorted(entry.arrays):
        array = np.array(entry.arrays[name], copy=True)
        if not damaged and array.size:
            view = array.reshape(-1).view(np.uint8)
            view[0] ^= 0xFF
            damaged = True
        arrays[name] = array
    return StoreEntry(arrays=arrays, meta=dict(entry.meta))


def _torn_copy(entry: StoreEntry) -> StoreEntry:
    """The entry with the first array truncated by one element.

    The entry's *metadata* (including any end-to-end checksums the
    producer attached) is preserved verbatim — exactly the signature of
    a partial write: the manifest promises bytes the payload no longer
    has.
    """
    arrays = dict(entry.arrays)
    for name in sorted(arrays):
        array = arrays[name]
        if array.size:
            arrays[name] = np.array(array.reshape(-1)[:-1], copy=True)
            break
    return StoreEntry(arrays=arrays, meta=dict(entry.meta))


class FaultyStore(ResultStore):
    """A fault-injecting view over an inner result store."""

    def __init__(
        self,
        inner: ResultStore,
        fault_plan: FaultPlan,
        sleep=time.sleep,
    ) -> None:
        super().__init__()
        self.inner = inner
        self.fault_plan = fault_plan
        self._sleep = sleep
        #: injection tallies (what this wrapper actually did)
        self.injected_errors = 0
        self.injected_corruptions = 0
        self.injected_torn_writes = 0
        self.injected_latency_seconds = 0.0

    # ------------------------------------------------------------------
    def _apply(self, op: str, key: str):
        """Fire the plan for ``op`` and apply raise/sleep kinds."""
        fired = self.fault_plan.fire(op, key=key)
        for spec in fired:
            if spec.kind == KIND_LATENCY:
                with self._lock:
                    self.injected_latency_seconds += spec.latency_seconds
                self._sleep(spec.latency_seconds)
        for spec in fired:
            if spec.kind == KIND_IO_ERROR:
                with self._lock:
                    self.injected_errors += 1
                raise OSError(
                    f"injected transient IO error on {op}({key[:16]}…)"
                )
        return fired

    def _get(self, key: str) -> Optional[StoreEntry]:
        fired = self._apply(OP_GET, key)
        entry = self.inner._get(key)
        if entry is not None and any(
            spec.kind == KIND_CORRUPT for spec in fired
        ):
            with self._lock:
                self.injected_corruptions += 1
            entry = _corrupted_copy(entry)
        return entry

    def _put(self, key: str, entry: StoreEntry) -> None:
        fired = self._apply(OP_PUT, key)
        if any(spec.kind == KIND_TORN_WRITE for spec in fired):
            with self._lock:
                self.injected_torn_writes += 1
            entry = _torn_copy(entry)
        self.inner._put(key, entry)

    def contains(self, key: str) -> bool:
        self._apply(OP_CONTAINS, key)
        return self.inner.contains(key)

    def _delete(self, key: str) -> bool:
        self._apply(OP_DELETE, key)
        return self.inner._delete(key)

    # -- pass-throughs -------------------------------------------------
    def _exclusive(self, key: str):
        return self.inner._exclusive(key)

    def _size_hint(self):
        return self.inner._size_hint()

    def __len__(self) -> int:
        return len(self.inner)

    def clear(self) -> None:
        self.inner.clear()

    def stats(self):
        stats = super().stats()
        stats["inner"] = self.inner.stats()
        with self._lock:
            stats["injected_errors"] = self.injected_errors
            stats["injected_corruptions"] = self.injected_corruptions
            stats["injected_torn_writes"] = self.injected_torn_writes
            stats["injected_latency_seconds"] = self.injected_latency_seconds
        return stats

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultyStore({self.inner!r}, plan={self.fault_plan!r})"
