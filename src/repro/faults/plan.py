"""Seeded fault plans: reproducible schedules of injected failures.

A :class:`FaultPlan` is the chaos harness's source of truth: a seed
plus a list of :class:`FaultSpec` rules describing *which* operations
fail, *how*, and *when*.  Decisions are a pure function of
``(seed, rule, operation name, operation count, key, worker)`` — a
SHA-256 draw, never wall-clock or a shared RNG — so the same plan
replays the same fault schedule on every run regardless of thread
interleaving: a chaos failure is a reproducible test case, not a
flake.

The plan itself injects nothing; the wrappers do —
:class:`~repro.faults.store.FaultyStore` consults it on store ops,
:class:`~repro.faults.queue.FaultyQueue` on claims/heartbeats, and the
:class:`~repro.fleet.worker.FleetWorker` on computes (poison/kill
hooks).  Every firing is appended to :attr:`FaultPlan.log`, so tests
can assert a fault actually happened (a chaos run whose faults never
fired proves nothing).
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

#: fault kinds (what goes wrong)
KIND_IO_ERROR = "io_error"  # raise OSError (transient unless unbounded)
KIND_CORRUPT = "corrupt"  # damage the payload handed to the reader
KIND_TORN_WRITE = "torn_write"  # persist a truncated payload
KIND_LATENCY = "latency"  # sleep before the operation proceeds
KIND_KILL = "kill"  # the worker dies on the spot (no cleanup)
KIND_STALL_HEARTBEAT = "stall_heartbeat"  # heartbeats stop landing
KIND_DUPLICATE_CLAIM = "duplicate_claim"  # a claimed job is handed out again
KIND_POISON = "poison"  # the compute raises
KIND_DROP = "drop"  # the connection is severed mid-RPC

#: operations fault specs can attach to
OP_GET = "get"
OP_PUT = "put"
OP_CONTAINS = "contains"
OP_DELETE = "delete"
OP_CLAIM = "claim"
OP_HEARTBEAT = "heartbeat"
OP_COMPUTE = "compute"
OP_SEND = "send"  # wire: client about to transmit a request
OP_RECV = "recv"  # wire: client about to read a response


class InjectedFault(RuntimeError):
    """A deliberately injected failure (poison computes, forced errors)."""


class WorkerKilled(BaseException):
    """An injected worker death.

    Deliberately **not** an :class:`Exception`: a killed worker must
    not be caught by the worker's normal job-failure handling (which
    would requeue the job and keep the worker alive).  It unwinds the
    worker loop like a real crash — the claimed job stays claimed, the
    heartbeat stops, and recovery is entirely the *peers'* job (lease
    expiry + requeue), exactly as with a SIGKILLed process.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: what fires, on which operations, how often.

    Scheduling fields (combine freely; all present must agree):

    * ``at`` — fire on exactly the Nth matching operation (1-based);
    * ``every`` — fire on every Nth matching operation;
    * ``probability`` — seeded per-operation coin flip;
    * ``times`` — stop after this many firings (bounds transient
      faults; ``None`` means unbounded — durable damage).

    Matching fields restrict which operations the rule sees at all:
    ``op`` (required), ``key_substring`` (store key / job id) and
    ``worker_substring`` (worker id).
    """

    kind: str
    op: str
    at: Optional[int] = None
    every: Optional[int] = None
    probability: float = 0.0
    times: Optional[int] = None
    key_substring: Optional[str] = None
    worker_substring: Optional[str] = None
    latency_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.at is not None and self.at < 1:
            raise ValueError(f"at must be >= 1, got {self.at}")
        if self.every is not None and self.every < 1:
            raise ValueError(f"every must be >= 1, got {self.every}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if (
            self.at is None
            and self.every is None
            and self.probability == 0.0
        ):
            raise ValueError(
                "a FaultSpec needs a schedule: at=, every= or probability="
            )

    def matches(self, op: str, key: str | None, worker: str | None) -> bool:
        if op != self.op:
            return False
        if self.key_substring is not None and (
            key is None or self.key_substring not in key
        ):
            return False
        if self.worker_substring is not None and (
            worker is None or self.worker_substring not in worker
        ):
            return False
        return True


@dataclass(frozen=True)
class FaultEvent:
    """One fault that actually fired (the plan's audit log row)."""

    kind: str
    op: str
    count: int
    key: Optional[str]
    worker: Optional[str]
    spec_index: int


class FaultPlan:
    """A seeded, thread-safe schedule of fault events.

    ``fire(op, key=..., worker=...)`` advances each matching spec's
    operation counter, decides deterministically whether it fires, logs
    what fired and returns the fired specs — the wrappers translate
    them into raised errors, damaged payloads, sleeps or deaths.

    Thread safety: counters and the log sit behind one lock, so a fleet
    of worker threads sees a single global operation order.  (That
    order can vary across runs when threads race — the *per-count*
    decisions stay deterministic, which is what `at=`/`every=`/seeded
    probability schedules key on.)
    """

    def __init__(self, seed: int, specs: List[FaultSpec]) -> None:
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self._lock = threading.Lock()
        self._counts: Dict[int, int] = {i: 0 for i in range(len(self.specs))}
        self._fired: Dict[int, int] = {i: 0 for i in range(len(self.specs))}
        self.log: List[FaultEvent] = []

    # ------------------------------------------------------------------
    def _draw(self, spec_index: int, op: str, count: int, key: str | None) -> float:
        """Deterministic uniform [0, 1) for one (spec, operation) event."""
        material = f"{self.seed}:{spec_index}:{op}:{count}:{key or ''}"
        digest = hashlib.sha256(material.encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def fire(
        self,
        op: str,
        key: str | None = None,
        worker: str | None = None,
    ) -> List[FaultSpec]:
        """Advance counters for ``op`` and return the specs that fire."""
        fired: List[FaultSpec] = []
        with self._lock:
            for i, spec in enumerate(self.specs):
                if not spec.matches(op, key, worker):
                    continue
                self._counts[i] += 1
                count = self._counts[i]
                if spec.times is not None and self._fired[i] >= spec.times:
                    continue
                hit = (
                    (spec.at is not None and count == spec.at)
                    or (spec.every is not None and count % spec.every == 0)
                    or (
                        spec.probability > 0.0
                        and self._draw(i, op, count, key) < spec.probability
                    )
                )
                if not hit:
                    continue
                self._fired[i] += 1
                fired.append(spec)
                self.log.append(
                    FaultEvent(
                        kind=spec.kind,
                        op=op,
                        count=count,
                        key=key,
                        worker=worker,
                        spec_index=i,
                    )
                )
        return fired

    # ------------------------------------------------------------------
    def fired_counts(self) -> Dict[str, int]:
        """Total firings by fault kind (chaos-report bookkeeping)."""
        with self._lock:
            counts: Dict[str, int] = {}
            for event in self.log:
                counts[event.kind] = counts.get(event.kind, 0) + 1
            return counts

    def n_fired(self, kind: str | None = None) -> int:
        with self._lock:
            return sum(
                1 for e in self.log if kind is None or e.kind == kind
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultPlan(seed={self.seed}, specs={len(self.specs)}, "
            f"fired={len(self.log)})"
        )


def no_faults(seed: int = 0) -> FaultPlan:
    """An empty plan (the fault-free baseline runs through the same code)."""
    return FaultPlan(seed, [])
