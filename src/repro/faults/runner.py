"""ChaosRunner: full fleet sweeps under a fault plan, digest-checked.

The chaos harness's top level: run the same analysis twice through the
*same* in-process fleet machinery — once fault-free, once under a
:class:`~repro.faults.plan.FaultPlan` — and compare the assembled YLT
digests.  The hard claim is the paper-repro invariant extended to a
hostile substrate: killed workers, stalled heartbeats, duplicate
claims, torn writes, corrupted reads and transient IO errors must
change *wall-clock*, never *bytes*.

Both runs go through :class:`~repro.faults.store.FaultyStore` and
:class:`~repro.faults.queue.FaultyQueue` (the baseline just carries an
empty plan), so measured overheads are comparable and the makespan
inflation reported by :meth:`ChaosRunner.compare` isolates the cost of
the faults themselves.

Recovery is the production loop, not a chaos special case: drain with
worker threads (a :class:`~repro.faults.plan.WorkerKilled` unwinds one
thread and the *peers* requeue its lease), gather through the
verifying assembler (durably damaged segments are deleted and surface
as missing), then replan — ``submit_sweep`` under the same sweep id
re-probes the store and enqueues exactly the holes, reviving failed
jobs — and drain again, up to ``max_rounds`` times.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.faults.plan import FaultPlan, WorkerKilled, no_faults
from repro.faults.queue import FaultyQueue
from repro.faults.store import FaultyStore
from repro.fleet.assemble import FleetAssemblyError
from repro.fleet.sweep import context_for_engine, gather_sweep, submit_sweep
from repro.fleet.worker import FleetWorker
from repro.store.base import MemoryStore, ResultStore
from repro.store.keys import ylt_digest


class ChaosDigestMismatch(AssertionError):
    """The chaos run's YLT differs from the fault-free run's — a real bug."""


@dataclass
class ChaosRunResult:
    """One sweep executed under one fault plan."""

    sweep_id: str
    digest: str
    seconds: float
    rounds: int
    n_segments: int
    initial_missing: int
    computed: int
    reused: int
    speculated: int
    store_retries: int
    requeued: int
    failed: int
    invalidated: int  #: durably damaged entries deleted by verification
    dropped_puts: int  #: computed entries whose put never landed
    killed_workers: List[str] = field(default_factory=list)
    fault_counts: Dict[str, int] = field(default_factory=dict)

    @property
    def duplicate_compute_leaks(self) -> int:
        """Computes beyond what the fault schedule *requires*.

        Every initially missing segment must be produced once; every
        invalidated (deleted) entry and every dropped put forces
        exactly one legitimate recompute.  Total produce invocations
        are claim-side ``computed`` plus speculative ``speculated``
        (a speculative produce *is* the key's one compute — the
        owner's claim then reuses it).  Anything above the requirement
        is a dedup leak — two workers both ran ``produce`` for one
        key — which the exactly-once machinery promises never happens
        in-process.
        """
        return (self.computed + self.speculated) - (
            self.initial_missing + self.invalidated + self.dropped_puts
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "sweep_id": self.sweep_id,
            "digest": self.digest,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "n_segments": self.n_segments,
            "initial_missing": self.initial_missing,
            "computed": self.computed,
            "reused": self.reused,
            "speculated": self.speculated,
            "store_retries": self.store_retries,
            "requeued": self.requeued,
            "failed": self.failed,
            "invalidated": self.invalidated,
            "dropped_puts": self.dropped_puts,
            "duplicate_compute_leaks": self.duplicate_compute_leaks,
            "killed_workers": list(self.killed_workers),
            "fault_counts": dict(self.fault_counts),
        }


@dataclass
class ChaosReport:
    """Baseline vs chaos: the digest-equality and inflation verdict."""

    baseline: ChaosRunResult
    chaos: ChaosRunResult

    @property
    def digests_match(self) -> bool:
        return self.baseline.digest == self.chaos.digest

    @property
    def inflation(self) -> float:
        """Chaos wall-clock relative to the fault-free run."""
        if self.baseline.seconds <= 0.0:
            return 1.0
        return self.chaos.seconds / self.baseline.seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "digests_match": self.digests_match,
            "inflation": self.inflation,
            "baseline": self.baseline.as_dict(),
            "chaos": self.chaos.as_dict(),
        }


class ChaosRunner:
    """Run fleet sweeps of one analysis under injected fault plans.

    ``base_dir`` hosts each run's queue directory (runs are isolated:
    a fresh queue dir and a fresh store per :meth:`run`).  The store
    defaults to in-memory — fault injection lives in the wrappers, so
    chaos tests stay fast; pass ``store_factory`` to chaos a real
    :class:`~repro.store.filestore.SharedFileStore` instead.
    """

    def __init__(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        engine_obj,
        base_dir: "str | Path",
        segment_trials: int | None = None,
        n_workers: int = 2,
        lease_seconds: float = 0.5,
        max_rounds: int = 4,
        poll_seconds: float = 0.01,
        store_factory=None,
    ) -> None:
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        self.yet = yet
        self.portfolio = portfolio
        self.catalog_size = int(catalog_size)
        self.engine_obj = engine_obj
        self.base_dir = Path(base_dir)
        self.segment_trials = segment_trials
        self.n_workers = n_workers
        self.lease_seconds = lease_seconds
        self.max_rounds = max_rounds
        self.poll_seconds = poll_seconds
        self.store_factory = store_factory or (lambda name: MemoryStore())
        self._run_seq = 0

    # ------------------------------------------------------------------
    def _drain(
        self,
        queue: FaultyQueue,
        store: ResultStore,
        contexts,
        sweep_id: str,
        fault_plan: FaultPlan,
        round_index: int,
    ) -> List[FleetWorker]:
        """One drain round: spawn workers, survive injected deaths."""
        workers = [
            FleetWorker(
                queue,
                store,
                contexts=contexts,
                worker_id=f"chaos-r{round_index}-w{i}",
                fault_plan=fault_plan,
            )
            for i in range(self.n_workers)
        ]

        def target(worker: FleetWorker) -> None:
            try:
                worker.run(sweep_id=sweep_id, poll_seconds=self.poll_seconds)
            except WorkerKilled:
                pass  # the injected death: no cleanup, peers recover

        threads = [
            threading.Thread(target=target, args=(w,), daemon=True)
            for w in workers
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return workers

    def run(
        self,
        fault_plan: Optional[FaultPlan] = None,
        label: str = "run",
    ) -> ChaosRunResult:
        """Execute one full sweep under ``fault_plan`` and assemble it."""
        fault_plan = fault_plan if fault_plan is not None else no_faults()
        self._run_seq += 1
        run_dir = self.base_dir / f"{label}-{self._run_seq:03d}"
        queue = FaultyQueue(
            run_dir / "queue", fault_plan, lease_seconds=self.lease_seconds
        )
        store = FaultyStore(self.store_factory(label), fault_plan)

        started = time.perf_counter()
        ticket = submit_sweep(
            queue,
            store,
            self.yet,
            self.portfolio,
            self.catalog_size,
            self.engine_obj,
            segment_trials=self.segment_trials,
        )
        ctx = context_for_engine(
            self.yet, self.portfolio, self.catalog_size, self.engine_obj
        )
        contexts = {ticket.sweep_id: ctx}

        all_workers: List[FleetWorker] = []
        ylt = None
        rounds = 0
        round_ticket = ticket
        last_error: Optional[Exception] = None
        for round_index in range(self.max_rounds):
            rounds += 1
            all_workers.extend(
                self._drain(
                    queue, store, contexts, round_ticket.sweep_id,
                    fault_plan, round_index,
                )
            )
            try:
                ylt = gather_sweep(queue, store, round_ticket.sweep_id)
                break
            except FleetAssemblyError as exc:
                last_error = exc
                # Replan against the store's *current* state (exactly
                # as ``run_fleet`` does): healed-away and never-stored
                # segments are the new delta, and the changed delta
                # fingerprint yields a fresh sweep id so the recompute
                # jobs cannot collide with already-``done/`` job ids.
                round_ticket = submit_sweep(
                    queue,
                    store,
                    self.yet,
                    self.portfolio,
                    self.catalog_size,
                    self.engine_obj,
                    segment_trials=self.segment_trials,
                )
                contexts[round_ticket.sweep_id] = ctx
        if ylt is None:
            raise FleetAssemblyError(
                f"sweep {ticket.sweep_id} did not converge in "
                f"{self.max_rounds} round(s)"
            ) from last_error
        seconds = time.perf_counter() - started

        stats = [w.stats for w in all_workers]
        store_stats = store.stats()
        return ChaosRunResult(
            sweep_id=ticket.sweep_id,
            digest=ylt_digest(ylt),
            seconds=seconds,
            rounds=rounds,
            n_segments=ticket.delta.n_segments,
            initial_missing=ticket.submitted,
            computed=sum(s.computed for s in stats),
            reused=sum(s.reused for s in stats),
            speculated=sum(s.speculated for s in stats),
            store_retries=sum(s.store_retries for s in stats),
            requeued=sum(s.requeued_for_peers for s in stats),
            failed=sum(s.failed for s in stats),
            invalidated=int(store_stats.get("corrupt_misses", 0)),
            dropped_puts=int(store_stats.get("put_errors", 0)),
            killed_workers=list(queue.killed_workers),
            fault_counts=fault_plan.fired_counts(),
        )

    def compare(
        self,
        fault_plan: FaultPlan,
        strict: bool = True,
    ) -> ChaosReport:
        """Baseline (no faults) vs chaos run; assert digest equality.

        Both runs execute through the identical faulty-wrapper stack,
        so the reported inflation is attributable to the fault plan
        and not to harness overhead.  With ``strict`` (the default) a
        digest mismatch raises :class:`ChaosDigestMismatch` — under no
        injected fault schedule may the fleet produce different bytes.
        """
        baseline = self.run(no_faults(fault_plan.seed), label="baseline")
        chaos = self.run(fault_plan, label="chaos")
        report = ChaosReport(baseline=baseline, chaos=chaos)
        if strict and not report.digests_match:
            raise ChaosDigestMismatch(
                f"chaos digest {chaos.digest[:16]}… != baseline "
                f"{baseline.digest[:16]}… under faults "
                f"{chaos.fault_counts} (kills: {chaos.killed_workers})"
            )
        return report
