"""Wire-level chaos: fault plans for the network transport.

The :class:`~repro.net.client.WireTransport` consults its
:class:`~repro.faults.plan.FaultPlan` before every send (``OP_SEND``)
and receive (``OP_RECV``); this module provides the plan shapes the net
tests and the NET-ABLATE benchmark run under:

* ``latency`` — sleep before the operation (slow links, congested
  servers);
* ``io_error`` — raise a :class:`~repro.net.protocol.WireProtocolError`
  without touching the socket (the transient failure the retry policy
  is for);
* ``drop`` — sever the TCP connection mid-RPC (a network partition;
  the pending read fails and the retry dials a fresh socket).

All three are *transient by construction* against a content-addressed
store and a lease-based queue: a retried GET/PUT is idempotent, a
dropped claim reply leaks at most one lease that expires back to
pending.  The chaos invariant — YLT digests identical to the fault-free
run, one compute per segment — is what the tests pin.
"""

from __future__ import annotations

from typing import List, Optional

from repro.faults.plan import (
    KIND_DROP,
    KIND_IO_ERROR,
    KIND_LATENCY,
    OP_RECV,
    OP_SEND,
    FaultPlan,
    FaultSpec,
)


def wire_chaos_plan(
    seed: int,
    latency_seconds: float = 0.0,
    latency_probability: float = 0.0,
    drop_every: Optional[int] = None,
    drop_times: Optional[int] = None,
    io_error_every: Optional[int] = None,
    io_error_times: Optional[int] = None,
    key_substring: Optional[str] = None,
) -> FaultPlan:
    """A seeded plan of wire trouble for one transport.

    ``latency_*`` fires on sends (requests stall on the way out);
    ``drop_every`` severs the connection on every Nth receive (the
    reply is lost *after* the server acted — the nastier half of the
    partition space); ``io_error_every`` raises before every Nth send
    (the request never reaches the server).  ``*_times`` bound each
    rule so a short test cannot drown in faults; ``key_substring``
    narrows the blast radius to matching store keys / job ids.
    """
    specs: List[FaultSpec] = []
    if latency_probability > 0.0:
        specs.append(
            FaultSpec(
                kind=KIND_LATENCY,
                op=OP_SEND,
                probability=latency_probability,
                latency_seconds=latency_seconds,
                key_substring=key_substring,
            )
        )
    if drop_every is not None:
        specs.append(
            FaultSpec(
                kind=KIND_DROP,
                op=OP_RECV,
                every=drop_every,
                times=drop_times,
                key_substring=key_substring,
            )
        )
    if io_error_every is not None:
        specs.append(
            FaultSpec(
                kind=KIND_IO_ERROR,
                op=OP_SEND,
                every=io_error_every,
                times=io_error_times,
                key_substring=key_substring,
            )
        )
    return FaultPlan(seed, specs)
