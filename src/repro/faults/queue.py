"""FaultyQueue: a job queue that kills, stalls and double-deals.

A :class:`~repro.fleet.jobs.JobQueue` subclass consulting a
:class:`~repro.faults.plan.FaultPlan` at the queue's two coordination
points:

* ``kill`` on ``claim`` — after the rename lands (the job is genuinely
  claimed, exactly like a real crash window) the claiming worker dies
  with :class:`~repro.faults.plan.WorkerKilled`.  Nothing cleans up:
  the job sits in ``claimed/`` until the lease expires and a *peer*
  requeues it;
* ``stall_heartbeat`` on ``heartbeat`` — the heartbeat reports success
  but never touches the file, so a live worker looks dead to the
  fleet and its job gets requeued out from under it (the duplicate
  compute is harmless: the store dedups, and the slow worker's
  ``complete`` simply reports the claim lost);
* ``duplicate_claim`` on ``claim`` — the job just claimed is *also*
  handed to the next claimer, simulating a split-brain double claim.
  Both workers execute; content addressing makes the race benign, and
  exactly one ``complete`` wins.
"""

from __future__ import annotations

import copy
import threading
from typing import List, Optional

from repro.faults.plan import (
    KIND_DUPLICATE_CLAIM,
    KIND_KILL,
    KIND_STALL_HEARTBEAT,
    OP_CLAIM,
    OP_HEARTBEAT,
    FaultPlan,
    WorkerKilled,
)
from repro.fleet.jobs import FleetJob, JobQueue


class FaultyQueue(JobQueue):
    """A fault-injecting job queue (drop-in for :class:`JobQueue`)."""

    def __init__(self, queue_dir, fault_plan: FaultPlan, **kwargs) -> None:
        super().__init__(queue_dir, **kwargs)
        self.fault_plan = fault_plan
        self._dup_lock = threading.Lock()
        self._dup_jobs: List[FleetJob] = []
        #: workers this queue has killed (chaos-report bookkeeping)
        self.killed_workers: List[str] = []

    def claim(
        self, worker_id: str | None = None, sweep_id: str | None = None
    ) -> Optional[FleetJob]:
        with self._dup_lock:
            if self._dup_jobs:
                # Hand out a duplicate of an already-claimed job: this
                # claimer now believes it owns work a peer also owns.
                return copy.deepcopy(self._dup_jobs.pop(0))
        job = super().claim(worker_id, sweep_id=sweep_id)
        if job is None:
            return None
        fired = self.fault_plan.fire(
            OP_CLAIM, key=job.job_id, worker=worker_id
        )
        for spec in fired:
            if spec.kind == KIND_DUPLICATE_CLAIM:
                with self._dup_lock:
                    self._dup_jobs.append(copy.deepcopy(job))
        for spec in fired:
            if spec.kind == KIND_KILL:
                with self._dup_lock:
                    self.killed_workers.append(worker_id or "?")
                raise WorkerKilled(
                    f"injected death of {worker_id!r} holding {job.job_id}"
                )
        return job

    def heartbeat(self, job: FleetJob) -> bool:
        fired = self.fault_plan.fire(
            OP_HEARTBEAT, key=job.job_id, worker=job.owner
        )
        if any(spec.kind == KIND_STALL_HEARTBEAT for spec in fired):
            return True  # the worker believes the lease was refreshed
        return super().heartbeat(job)
