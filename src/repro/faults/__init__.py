"""Seeded fault injection for the fleet tier (the chaos harness).

The subsystem that *earns* the robustness claims the fleet makes:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, reproducible fault
  schedules (SHA-256 draws keyed on seed, rule, operation count, key;
  never wall-clock), so every chaos failure replays;
* :mod:`repro.faults.store` — :class:`FaultyStore`, injecting corrupt
  reads, torn writes, transient IO errors and latency into any
  :class:`~repro.store.base.ResultStore`;
* :mod:`repro.faults.queue` — :class:`FaultyQueue`, injecting worker
  kills at claim, stalled heartbeats and duplicate claims into the
  :class:`~repro.fleet.jobs.JobQueue`;
* :mod:`repro.faults.runner` — :class:`ChaosRunner`, full fleet sweeps
  under a plan, hard-asserting YLT digest equality against the
  fault-free run (the CHAOS-ABLATE experiment's engine);
* :mod:`repro.faults.wire` — :func:`wire_chaos_plan`, latency /
  connection-drop / IO-error schedules for the network transport
  (:class:`~repro.net.client.WireTransport` fires ``OP_SEND`` /
  ``OP_RECV`` against them).
"""

from repro.faults.plan import (
    KIND_CORRUPT,
    KIND_DROP,
    KIND_DUPLICATE_CLAIM,
    KIND_IO_ERROR,
    KIND_KILL,
    KIND_LATENCY,
    KIND_POISON,
    KIND_STALL_HEARTBEAT,
    KIND_TORN_WRITE,
    OP_CLAIM,
    OP_COMPUTE,
    OP_CONTAINS,
    OP_DELETE,
    OP_GET,
    OP_HEARTBEAT,
    OP_PUT,
    OP_RECV,
    OP_SEND,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    WorkerKilled,
    no_faults,
)
from repro.faults.queue import FaultyQueue
from repro.faults.runner import (
    ChaosDigestMismatch,
    ChaosReport,
    ChaosRunner,
    ChaosRunResult,
)
from repro.faults.store import FaultyStore
from repro.faults.wire import wire_chaos_plan

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultEvent",
    "InjectedFault",
    "WorkerKilled",
    "no_faults",
    "FaultyStore",
    "FaultyQueue",
    "ChaosRunner",
    "ChaosReport",
    "ChaosRunResult",
    "ChaosDigestMismatch",
    "KIND_IO_ERROR",
    "KIND_CORRUPT",
    "KIND_TORN_WRITE",
    "KIND_LATENCY",
    "KIND_KILL",
    "KIND_STALL_HEARTBEAT",
    "KIND_DUPLICATE_CLAIM",
    "KIND_POISON",
    "KIND_DROP",
    "wire_chaos_plan",
    "OP_GET",
    "OP_PUT",
    "OP_CONTAINS",
    "OP_DELETE",
    "OP_CLAIM",
    "OP_HEARTBEAT",
    "OP_COMPUTE",
    "OP_SEND",
    "OP_RECV",
]
