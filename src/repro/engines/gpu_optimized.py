"""(iv) Optimised GPU engine — chunking, unrolling, float32, registers.

The paper's optimised CUDA implementation on one simulated Tesla C2075.
Each of the four optimisations is independently toggleable through
:class:`~repro.engines.gpu_common.OptimizationFlags`, which is what the
ablation benchmark sweeps; with all flags on, the modeled time at paper
scale roughly halves relative to the basic engine — the paper's
38.47 s → 20.63 s (~1.9x).
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.core.secondary import layer_stream_key
from repro.engines.base import Engine
from repro.engines.gpu_common import (
    ARAOptimizedKernel,
    OptimizationFlags,
    build_layer_tables,
    merge_meta_occupancy,
    modeled_activity_profile,
)
from repro.gpusim.device import DeviceSpec, TESLA_C2075
from repro.gpusim.kernel import GPUDevice
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities
from repro.utils.timer import ACTIVITY_OTHER, ActivityProfile
from repro.utils.validation import check_positive


class GPUOptimizedEngine(Engine):
    """Optimised CUDA implementation on one simulated GPU.

    Parameters
    ----------
    flags:
        Which optimisations are active (default: all four, the paper's
        configuration).
    chunk_events:
        Events staged per thread per chunk.  The default (24) makes a
        256-thread block consume exactly the SM's 48 KB of shared memory
        in ``float32`` — one resident block, with chunk-level prefetch
        keeping the memory bus saturated.
    threads_per_block:
        Block size (256 default, as for the basic engine).
    """

    name = "gpu-optimized"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        device_spec: DeviceSpec = TESLA_C2075,
        threads_per_block: int = 256,
        chunk_events: int = 24,
        flags: OptimizationFlags | None = None,
        batch_blocks: int = 256,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
            backend=backend,
        )
        check_positive("threads_per_block", threads_per_block)
        check_positive("chunk_events", chunk_events)
        check_positive("batch_blocks", batch_blocks)
        self.device_spec = device_spec
        self.threads_per_block = int(threads_per_block)
        self.chunk_events = int(chunk_events)
        self.flags = flags if flags is not None else OptimizationFlags.all()
        self.batch_blocks = int(batch_blocks)

    @property
    def working_dtype(self) -> np.dtype:
        """float32 when the reduced-precision optimisation is on."""
        return np.dtype(np.float32) if self.flags.float32 else self.dtype

    def capabilities(self) -> EngineCapabilities:
        # One device, one launch per layer (same shape as the basic
        # engine; the four optimisations live inside the kernel).
        return EngineCapabilities(
            engine=self.name,
            n_slots=1,
            kernel=self.kernel,
            slot_batching="whole",
            dtype=self.working_dtype.str,
            secondary=self.secondary is not None,
        )

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        device = GPUDevice(self.device_spec)
        dtype = self.working_dtype
        base_seed = self._secondary_base_seed()
        per_layer: Dict[int, np.ndarray] = {}
        modeled_total = 0.0
        profile = ActivityProfile()
        meta: Dict[str, Any] = {
            "device": self.device_spec.name,
            "flags": self.flags.describe(),
            "chunk_events": self.chunk_events,
            "kernel": self.kernel,
            "secondary": self.secondary is not None,
            "layers": [],
        }

        yet_bytes = yet.n_occurrences * 4
        device.alloc("yet_event_ids", yet_bytes)
        modeled_total += device.transfers.h2d(yet_bytes, "yet")

        for layer in portfolio.layers:
            (task,) = plan.layer_tasks(layer.layer_id)
            lookups, stacked, table_bytes = build_layer_tables(
                portfolio.elts_of(layer),
                catalog_size,
                self.lookup_kind,
                dtype,
                self.kernel,
            )
            device.alloc(f"elt_tables_layer{layer.layer_id}", table_bytes)
            modeled_total += device.transfers.h2d(
                table_bytes, f"elt_tables_layer{layer.layer_id}"
            )
            out_bytes = yet.n_trials * 8
            device.alloc(f"ylt_layer{layer.layer_id}", out_bytes)
            if not self.flags.chunking:
                # Without chunking the intermediates fall back to local
                # (global) memory, as in the basic engine.
                local_bytes = (
                    self.device_spec.n_sms
                    * self.device_spec.max_threads_per_sm
                    * yet.max_events_per_trial
                    * dtype.itemsize
                    * 2
                )
                device.alloc(f"local_layer{layer.layer_id}", local_bytes)

            out = np.empty(yet.n_trials, dtype=np.float64)
            kernel = ARAOptimizedKernel(
                yet=yet,
                lookups=lookups,
                layer_terms=layer.terms,
                out=out,
                dtype=dtype,
                flags=self.flags,
                chunk_events=self.chunk_events,
                kernel=self.kernel,
                stacked=stacked,
                secondary=self.secondary,
                secondary_stream_key=layer_stream_key(
                    base_seed, layer.layer_id
                ),
                occ_origin=task.occ_start,
                backend=self.backend,
            )
            result = device.launch(
                kernel,
                n_threads_total=task.n_trials,
                threads_per_block=self.threads_per_block,
                batch_blocks=self.batch_blocks,
            )
            modeled_total += result.modeled_seconds
            modeled_total += device.transfers.d2h(
                out_bytes, f"ylt_layer{layer.layer_id}"
            )
            profile = profile.merged(
                modeled_activity_profile(
                    result.counters,
                    result.cost.bandwidth_s,
                    result.cost.compute_s,
                )
            )
            layer_meta: Dict[str, Any] = {"layer_id": layer.layer_id}
            meta["layers"].append(merge_meta_occupancy(layer_meta, result))

            device.free(f"elt_tables_layer{layer.layer_id}")
            device.free(f"ylt_layer{layer.layer_id}")
            if not self.flags.chunking:
                device.free(f"local_layer{layer.layer_id}")
            per_layer[layer.layer_id] = out

        leftover = modeled_total - profile.total
        if leftover > 0:
            profile.charge(ACTIVITY_OTHER, leftover)
        meta["transfer_seconds"] = device.transfers.total_seconds
        meta["transfer_bytes"] = device.transfers.total_bytes
        return (
            YearLossTable.from_dict(per_layer),
            profile,
            modeled_total,
            meta,
        )
