"""(iii) Basic GPU engine — the paper's unoptimised CUDA implementation.

One simulated device (Tesla C2075 by default), one thread per trial,
direct access tables and all intermediates in global memory.  The engine
stages inputs over the (modeled) PCIe bus, launches
:class:`~repro.engines.gpu_common.ARABasicKernel`, and reports both the
functional YLT (exact) and the modeled device seconds.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.core.secondary import layer_stream_key
from repro.engines.base import Engine
from repro.engines.gpu_common import (
    ARABasicKernel,
    build_layer_tables,
    merge_meta_occupancy,
    modeled_activity_profile,
)
from repro.gpusim.device import DeviceSpec, TESLA_C2075
from repro.gpusim.kernel import GPUDevice
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities
from repro.utils.timer import ACTIVITY_OTHER, ActivityProfile
from repro.utils.validation import check_positive


class GPUBasicEngine(Engine):
    """Basic CUDA implementation on one simulated GPU.

    Parameters
    ----------
    device_spec:
        Simulated hardware (paper: Tesla C2075).
    threads_per_block:
        CUDA block size (the paper's Figure 2 sweeps 128–640; 256 is its
        observed sweet spot and the default here).
    batch_blocks:
        Functional batching granularity (results/cost unaffected).
    """

    name = "gpu"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        device_spec: DeviceSpec = TESLA_C2075,
        threads_per_block: int = 256,
        batch_blocks: int = 256,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
            backend=backend,
        )
        check_positive("threads_per_block", threads_per_block)
        check_positive("batch_blocks", batch_blocks)
        self.device_spec = device_spec
        self.threads_per_block = int(threads_per_block)
        self.batch_blocks = int(batch_blocks)

    def capabilities(self) -> EngineCapabilities:
        # One device, one kernel launch per layer: a single whole-range
        # task per lane (block-level batching happens inside the
        # simulated device, not in the plan).
        return EngineCapabilities(
            engine=self.name,
            n_slots=1,
            kernel=self.kernel,
            slot_batching="whole",
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        device = GPUDevice(self.device_spec)
        word = self.dtype.itemsize
        base_seed = self._secondary_base_seed()

        per_layer: Dict[int, np.ndarray] = {}
        modeled_total = 0.0
        profile = ActivityProfile()
        meta: Dict[str, Any] = {
            "device": self.device_spec.name,
            "kernel": self.kernel,
            "secondary": self.secondary is not None,
            "layers": [],
        }

        # The YET (event ids only — timestamps are not needed once trials
        # are time-ordered) is staged once and shared by all layers.
        yet_bytes = yet.n_occurrences * 4
        device.alloc("yet_event_ids", yet_bytes)
        modeled_total += device.transfers.h2d(yet_bytes, "yet")

        for layer in portfolio.layers:
            (task,) = plan.layer_tasks(layer.layer_id)
            lookups, stacked, table_bytes = build_layer_tables(
                portfolio.elts_of(layer),
                catalog_size,
                self.lookup_kind,
                self.dtype,
                self.kernel,
            )
            device.alloc(f"elt_tables_layer{layer.layer_id}", table_bytes)
            modeled_total += device.transfers.h2d(
                table_bytes, f"elt_tables_layer{layer.layer_id}"
            )
            # Per-thread lx/lox intermediates live in local (= global)
            # memory; CUDA sizes local memory by *resident* threads.
            local_bytes = (
                self.device_spec.n_sms
                * self.device_spec.max_threads_per_sm
                * yet.max_events_per_trial
                * word
                * 2
            )
            device.alloc(f"local_intermediates_layer{layer.layer_id}", local_bytes)
            out_bytes = yet.n_trials * 8
            device.alloc(f"ylt_layer{layer.layer_id}", out_bytes)

            out = np.empty(yet.n_trials, dtype=np.float64)
            kernel = ARABasicKernel(
                yet=yet,
                lookups=lookups,
                layer_terms=layer.terms,
                out=out,
                dtype=self.dtype,
                kernel=self.kernel,
                stacked=stacked,
                secondary=self.secondary,
                secondary_stream_key=layer_stream_key(
                    base_seed, layer.layer_id
                ),
                occ_origin=task.occ_start,
                backend=self.backend,
            )
            result = device.launch(
                kernel,
                n_threads_total=task.n_trials,
                threads_per_block=self.threads_per_block,
                batch_blocks=self.batch_blocks,
            )
            modeled_total += result.modeled_seconds
            modeled_total += device.transfers.d2h(
                out_bytes, f"ylt_layer{layer.layer_id}"
            )
            profile = profile.merged(
                modeled_activity_profile(
                    result.counters,
                    result.cost.bandwidth_s,
                    result.cost.compute_s,
                )
            )
            layer_meta: Dict[str, Any] = {"layer_id": layer.layer_id}
            meta["layers"].append(merge_meta_occupancy(layer_meta, result))

            device.free(f"elt_tables_layer{layer.layer_id}")
            device.free(f"local_intermediates_layer{layer.layer_id}")
            device.free(f"ylt_layer{layer.layer_id}")
            per_layer[layer.layer_id] = out

        # Whatever modeled time is not attributable to a Figure 6 activity
        # (launch overhead, PCIe staging) lands in "other".
        leftover = modeled_total - profile.total
        if leftover > 0:
            profile.charge(ACTIVITY_OTHER, leftover)
        meta["transfer_seconds"] = device.transfers.total_seconds
        meta["transfer_bytes"] = device.transfers.total_bytes
        return (
            YearLossTable.from_dict(per_layer),
            profile,
            modeled_total,
            meta,
        )
