"""Engine abstract base class and shared plumbing."""

from __future__ import annotations

import abc
import time
from typing import Any, Dict

import numpy as np

from repro.core.analysis import AnalysisResult
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities, Planner
from repro.utils.timer import ActivityProfile
from repro.utils.validation import check_positive


class Engine(abc.ABC):
    """One implementation of aggregate risk analysis.

    Engines are plan executors: :meth:`capabilities` declares how the
    engine wants the trial space decomposed (lanes, kernel, balance,
    batching), the shared :class:`~repro.plan.planner.Planner` turns
    that into an :class:`~repro.plan.plan.ExecutionPlan`, and
    :meth:`_execute` runs the plan's tasks — no engine owns its own
    decomposition loop.  Because tasks are keyed by global trial and
    occurrence index, a plan's results are bit-for-bit identical for any
    scheduler concurrency.

    Subclasses implement :meth:`_execute`; :meth:`run` wraps it with input
    validation, planning, and end-to-end wall timing, so every engine
    returns a uniformly shaped
    :class:`~repro.core.analysis.AnalysisResult`.

    Parameters
    ----------
    lookup_kind:
        ELT representation (``"direct"`` is the paper's choice and the
        default everywhere).
    dtype:
        Working precision of the loss accumulation.  The optimised GPU
        engines override the default to ``float32`` (the paper's
        reduced-precision optimisation) unless told otherwise.
    kernel:
        Numerical core: ``"ragged"`` (the fused zero-copy CSR kernel of
        :mod:`repro.core.kernels`, the default) or ``"dense"`` (the
        legacy padded trial-block kernel).
    secondary:
        Optional :class:`~repro.core.secondary.SecondaryUncertainty`:
        per-(occurrence, ELT) damage-ratio multipliers applied inside the
        kernel.  The ragged path samples them with counter-based streams
        keyed by global occurrence index (reproducible for a given
        ``secondary_seed`` and invariant to engine decomposition); the
        dense path draws per batch.
    secondary_seed:
        Seed of the multiplier streams (ignored without ``secondary``).
    """

    #: registry name, overridden by subclasses
    name: str = "abstract"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
    ) -> None:
        from repro.core.kernels import DEFAULT_KERNEL, check_kernel

        self.lookup_kind = lookup_kind
        self.dtype = np.dtype(dtype)
        self.kernel = check_kernel(DEFAULT_KERNEL if kernel is None else kernel)
        self.secondary = secondary
        self.secondary_seed = secondary_seed

    def _secondary_base_seed(self) -> int:
        """Resolve ``secondary_seed`` to one integer base key (or 0)."""
        from repro.core.secondary import resolve_secondary_seed

        if self.secondary is None:
            return 0
        return resolve_secondary_seed(self.secondary_seed)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def capabilities(self) -> EngineCapabilities:
        """Decomposition profile the planner builds this engine's plans
        from.  The base default is a single-lane plan; engines with real
        parallel lanes (multicore workers, multi-GPU devices) override.
        """
        return EngineCapabilities(
            engine=self.name,
            n_slots=1,
            kernel=self.kernel,
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )

    def plan_for(
        self, yet: YearEventTable, portfolio: Portfolio
    ) -> ExecutionPlan:
        """The :class:`ExecutionPlan` this engine would execute."""
        return Planner().plan(yet, portfolio, self.capabilities())

    # ------------------------------------------------------------------
    def run(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan | None = None,
    ) -> AnalysisResult:
        """Validate inputs, plan (unless given one), execute, and time.

        ``plan`` lets callers precompute or share a plan (the quote
        service, plan-inspection tooling); it must have been built for
        this YET/portfolio shape.
        """
        check_positive("catalog_size", catalog_size)
        portfolio.validate()
        if yet.n_trials == 0:
            raise ValueError("YET has no trials")
        started = time.perf_counter()
        if plan is None:
            plan = self.plan_for(yet, portfolio)
        else:
            if plan.n_trials != yet.n_trials:
                raise ValueError(
                    f"plan was built for {plan.n_trials} trials, "
                    f"YET has {yet.n_trials}"
                )
            portfolio_layers = {layer.layer_id for layer in portfolio.layers}
            if set(plan.layer_ids) != portfolio_layers:
                raise ValueError(
                    f"plan was built for layers "
                    f"{sorted(set(plan.layer_ids))}, portfolio has "
                    f"{sorted(portfolio_layers)} — a plan is only valid "
                    "for the portfolio it was planned from"
                )
        ylt, profile, modeled_seconds, meta = self._execute(
            yet, portfolio, int(catalog_size), plan
        )
        wall = time.perf_counter() - started
        meta.setdefault("plan", plan.summary())
        return AnalysisResult(
            ylt=ylt,
            profile=profile,
            engine=self.name,
            wall_seconds=wall,
            modeled_seconds=modeled_seconds,
            meta=meta,
        )

    @abc.abstractmethod
    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        """Execute ``plan``; produce (ylt, profile, modeled seconds, meta)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lookup_kind={self.lookup_kind!r}, "
            f"dtype={self.dtype}, kernel={self.kernel!r})"
        )
