"""Engine abstract base class and shared plumbing."""

from __future__ import annotations

import abc
import threading
import time
from typing import TYPE_CHECKING, Any, Dict

import numpy as np

from repro.core.analysis import AnalysisResult
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities, Planner
from repro.utils.timer import ActivityProfile
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.store.base import ResultStore

# Process-wide count of actual engine executions (calls that reached
# ``_execute``).  Replay hits do not touch it, which is exactly what the
# memoisation tests assert: a store hit is *zero* engine task
# executions, not merely a fast one.
_EXECUTION_LOCK = threading.Lock()
_EXECUTIONS = 0


def execution_count() -> int:
    """Engine executions (``_execute`` calls) so far in this process."""
    with _EXECUTION_LOCK:
        return _EXECUTIONS


def _record_execution() -> None:
    global _EXECUTIONS
    with _EXECUTION_LOCK:
        _EXECUTIONS += 1


class Engine(abc.ABC):
    """One implementation of aggregate risk analysis.

    Engines are plan executors: :meth:`capabilities` declares how the
    engine wants the trial space decomposed (lanes, kernel, balance,
    batching), the shared :class:`~repro.plan.planner.Planner` turns
    that into an :class:`~repro.plan.plan.ExecutionPlan`, and
    :meth:`_execute` runs the plan's tasks — no engine owns its own
    decomposition loop.  Because tasks are keyed by global trial and
    occurrence index, a plan's results are bit-for-bit identical for any
    scheduler concurrency.

    Subclasses implement :meth:`_execute`; :meth:`run` wraps it with input
    validation, planning, and end-to-end wall timing, so every engine
    returns a uniformly shaped
    :class:`~repro.core.analysis.AnalysisResult`.

    Parameters
    ----------
    lookup_kind:
        ELT representation (``"direct"`` is the paper's choice and the
        default everywhere).
    dtype:
        Working precision of the loss accumulation.  The optimised GPU
        engines override the default to ``float32`` (the paper's
        reduced-precision optimisation) unless told otherwise.
    kernel:
        Numerical core: ``"ragged"`` (the fused zero-copy CSR kernel of
        :mod:`repro.core.kernels`, the default) or ``"dense"`` (the
        legacy padded trial-block kernel).
    secondary:
        Optional :class:`~repro.core.secondary.SecondaryUncertainty`:
        per-(occurrence, ELT) damage-ratio multipliers applied inside the
        kernel.  The ragged path samples them with counter-based streams
        keyed by global occurrence index (reproducible for a given
        ``secondary_seed`` and invariant to engine decomposition); the
        dense path draws per batch.
    secondary_seed:
        Seed of the multiplier streams (ignored without ``secondary``).
    backend:
        Kernel backend the ragged path dispatches through — a registry
        name (``"numpy"``/``"numba"``/``"cupy"``/``"auto"``), a
        :class:`~repro.backends.base.KernelBackend` instance, or None
        to follow the ``REPRO_KERNEL_BACKEND``-then-numpy precedence of
        :func:`repro.backends.resolve_backend`.  Deliberately absent
        from :meth:`capabilities`, plan fingerprints and store keys:
        backends are held to the oracle's results, so backend choice
        never changes what a run *is*, only how fast it gets there.
        The resolved name is surfaced in ``result.meta["backend"]``.
    """

    #: registry name, overridden by subclasses
    name: str = "abstract"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
    ) -> None:
        from repro.core.kernels import DEFAULT_KERNEL, check_kernel

        self.lookup_kind = lookup_kind
        self.dtype = np.dtype(dtype)
        self.kernel = check_kernel(DEFAULT_KERNEL if kernel is None else kernel)
        self.secondary = secondary
        self.secondary_seed = secondary_seed
        self.backend = backend

    def backend_name(self) -> str:
        """The kernel backend this engine's runs dispatch to (resolved)."""
        from repro.backends import active_backend_name

        return active_backend_name(self.backend)

    def _secondary_base_seed(self) -> int:
        """Resolve ``secondary_seed`` to one integer base key (or 0)."""
        from repro.core.secondary import resolve_secondary_seed

        if self.secondary is None:
            return 0
        return resolve_secondary_seed(self.secondary_seed)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def capabilities(self) -> EngineCapabilities:
        """Decomposition profile the planner builds this engine's plans
        from.  The base default is a single-lane plan; engines with real
        parallel lanes (multicore workers, multi-GPU devices) override.
        """
        return EngineCapabilities(
            engine=self.name,
            n_slots=1,
            kernel=self.kernel,
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )

    def plan_for(
        self, yet: YearEventTable, portfolio: Portfolio
    ) -> ExecutionPlan:
        """The :class:`ExecutionPlan` this engine would execute."""
        return Planner().plan(yet, portfolio, self.capabilities())

    def plan_missing(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        store: "ResultStore | None",
        segment_trials: int | None = None,
        plan: ExecutionPlan | None = None,
    ):
        """Store-aware delta plan under this engine's numeric config.

        Every task of the plan (the engine-native :meth:`plan_for`
        decomposition by default, or the fixed-stride segmentation when
        ``segment_trials`` is given) is assigned its content-addressed
        :func:`~repro.store.keys.segment_key` and probed against
        ``store``; the returned :class:`~repro.plan.delta.DeltaPlan`
        separates segments already computed (by any engine of the same
        numeric configuration, any process, any sweep) from the missing
        ones a fleet must execute.
        """
        return Planner().plan_missing(
            yet,
            portfolio,
            self.capabilities(),
            store,
            lookup_kind=self.lookup_kind,
            secondary=self.secondary,
            secondary_seed=self._secondary_base_seed(),
            segment_trials=segment_trials,
            plan=plan,
        )

    # ------------------------------------------------------------------
    def analysis_key(
        self,
        plan: ExecutionPlan,
        yet: YearEventTable,
        portfolio: Portfolio,
    ) -> str:
        """Whole-analysis store key of running ``plan`` on these inputs.

        Built from the plan fingerprint plus content fingerprints of
        every numeric input (see :func:`repro.store.keys.analysis_key`);
        two runs share a key exactly when their YLTs are interchangeable
        bit-for-bit.
        """
        from repro.store.keys import analysis_key  # deferred import

        return analysis_key(
            plan,
            yet,
            portfolio,
            dtype=self.capabilities().dtype,
            lookup_kind=self.lookup_kind,
            secondary=self.secondary,
            secondary_seed=self._secondary_base_seed(),
        )

    def run(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan | None = None,
        store: "ResultStore | None" = None,
    ) -> AnalysisResult:
        """Validate inputs, plan (unless given one), execute, and time.

        ``plan`` lets callers precompute or share a plan (the quote
        service, plan-inspection tooling); it must have been built for
        this YET/portfolio shape.

        ``store`` (a :class:`~repro.store.base.ResultStore`) memoises
        the whole analysis: when the run's
        :meth:`analysis_key` is present, the stored YLT is returned
        bit-for-bit with *zero* engine task executions; otherwise the
        run executes normally and its YLT is persisted under that key.
        """
        check_positive("catalog_size", catalog_size)
        portfolio.validate()
        if yet.n_trials == 0:
            raise ValueError("YET has no trials")
        started = time.perf_counter()
        if plan is None:
            plan = self.plan_for(yet, portfolio)
        else:
            if plan.n_trials != yet.n_trials:
                raise ValueError(
                    f"plan was built for {plan.n_trials} trials, "
                    f"YET has {yet.n_trials}"
                )
            portfolio_layers = {layer.layer_id for layer in portfolio.layers}
            if set(plan.layer_ids) != portfolio_layers:
                raise ValueError(
                    f"plan was built for layers "
                    f"{sorted(set(plan.layer_ids))}, portfolio has "
                    f"{sorted(portfolio_layers)} — a plan is only valid "
                    "for the portfolio it was planned from"
                )
        if store is not None:
            return self._run_stored(
                yet, portfolio, int(catalog_size), plan, store, started
            )
        ylt, profile, modeled_seconds, meta = self._execute(
            yet, portfolio, int(catalog_size), plan
        )
        _record_execution()
        wall = time.perf_counter() - started
        meta.setdefault("plan", plan.summary())
        meta.setdefault("backend", self.backend_name())
        return AnalysisResult(
            ylt=ylt,
            profile=profile,
            engine=self.name,
            wall_seconds=wall,
            modeled_seconds=modeled_seconds,
            meta=meta,
        )

    def _run_stored(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
        store: "ResultStore",
        started: float,
    ) -> AnalysisResult:
        """The memoised execution path: replay or compute-and-persist.

        Runs through :meth:`~repro.store.base.ResultStore.get_or_compute`,
        so concurrent identical runs — other threads *and*, on a
        :class:`~repro.store.SharedFileStore`, other processes — execute
        once and everyone else replays; a failed write-through costs
        durability, never the result.
        """
        from repro.store.codec import (  # deferred imports
            entry_from_ylt,
            ylt_from_entry,
        )

        replay_key = self.analysis_key(plan, yet, portfolio)
        computed: Dict[str, Any] = {}

        def produce():
            ylt, profile, modeled_seconds, meta = self._execute(
                yet, portfolio, catalog_size, plan
            )
            _record_execution()
            computed.update(
                ylt=ylt,
                profile=profile,
                modeled_seconds=modeled_seconds,
                meta=meta,
            )
            return entry_from_ylt(
                ylt,
                meta={
                    "engine": self.name,
                    "modeled_seconds": modeled_seconds,
                },
            )

        entry = store.get_or_compute(replay_key, produce)
        if not computed:  # replay: zero engine task executions
            return AnalysisResult(
                ylt=ylt_from_entry(entry),
                profile=ActivityProfile(),
                engine=self.name,
                wall_seconds=time.perf_counter() - started,
                modeled_seconds=entry.meta.get("modeled_seconds"),
                meta={
                    "plan": plan.summary(),
                    "replay": {
                        "hit": True,
                        "key": replay_key,
                        "computed_by": entry.meta.get("engine"),
                        "store": type(store).__name__,
                    },
                },
            )
        meta = computed["meta"]
        meta.setdefault("replay", {"hit": False, "key": replay_key})
        meta.setdefault("plan", plan.summary())
        meta.setdefault("backend", self.backend_name())
        return AnalysisResult(
            ylt=computed["ylt"],
            profile=computed["profile"],
            engine=self.name,
            wall_seconds=time.perf_counter() - started,
            modeled_seconds=computed["modeled_seconds"],
            meta=meta,
        )

    @abc.abstractmethod
    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        """Execute ``plan``; produce (ylt, profile, modeled seconds, meta)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lookup_kind={self.lookup_kind!r}, "
            f"dtype={self.dtype}, kernel={self.kernel!r})"
        )
