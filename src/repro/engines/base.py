"""Engine abstract base class and shared plumbing."""

from __future__ import annotations

import abc
import time
from typing import Any, Dict

import numpy as np

from repro.core.analysis import AnalysisResult
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.utils.timer import ActivityProfile
from repro.utils.validation import check_positive


class Engine(abc.ABC):
    """One implementation of aggregate risk analysis.

    Subclasses implement :meth:`_execute`; :meth:`run` wraps it with input
    validation and end-to-end wall timing, so every engine returns a
    uniformly shaped :class:`~repro.core.analysis.AnalysisResult`.

    Parameters
    ----------
    lookup_kind:
        ELT representation (``"direct"`` is the paper's choice and the
        default everywhere).
    dtype:
        Working precision of the loss accumulation.  The optimised GPU
        engines override the default to ``float32`` (the paper's
        reduced-precision optimisation) unless told otherwise.
    kernel:
        Numerical core: ``"ragged"`` (the fused zero-copy CSR kernel of
        :mod:`repro.core.kernels`, the default) or ``"dense"`` (the
        legacy padded trial-block kernel).
    secondary:
        Optional :class:`~repro.core.secondary.SecondaryUncertainty`:
        per-(occurrence, ELT) damage-ratio multipliers applied inside the
        kernel.  The ragged path samples them with counter-based streams
        keyed by global occurrence index (reproducible for a given
        ``secondary_seed`` and invariant to engine decomposition); the
        dense path draws per batch.
    secondary_seed:
        Seed of the multiplier streams (ignored without ``secondary``).
    """

    #: registry name, overridden by subclasses
    name: str = "abstract"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
    ) -> None:
        from repro.core.kernels import DEFAULT_KERNEL, check_kernel

        self.lookup_kind = lookup_kind
        self.dtype = np.dtype(dtype)
        self.kernel = check_kernel(DEFAULT_KERNEL if kernel is None else kernel)
        self.secondary = secondary
        self.secondary_seed = secondary_seed

    def _secondary_base_seed(self) -> int:
        """Resolve ``secondary_seed`` to one integer base key (or 0)."""
        from repro.core.secondary import resolve_secondary_seed

        if self.secondary is None:
            return 0
        return resolve_secondary_seed(self.secondary_seed)

    # ------------------------------------------------------------------
    def run(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
    ) -> AnalysisResult:
        """Validate inputs, execute, and time the full run."""
        check_positive("catalog_size", catalog_size)
        portfolio.validate()
        if yet.n_trials == 0:
            raise ValueError("YET has no trials")
        started = time.perf_counter()
        ylt, profile, modeled_seconds, meta = self._execute(
            yet, portfolio, int(catalog_size)
        )
        wall = time.perf_counter() - started
        return AnalysisResult(
            ylt=ylt,
            profile=profile,
            engine=self.name,
            wall_seconds=wall,
            modeled_seconds=modeled_seconds,
            meta=meta,
        )

    @abc.abstractmethod
    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        """Produce (ylt, activity profile, modeled seconds or None, meta)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(lookup_kind={self.lookup_kind!r}, "
            f"dtype={self.dtype}, kernel={self.kernel!r})"
        )
