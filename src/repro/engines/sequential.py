"""(i) Sequential engine — the paper's single-core C++ baseline.

One thread, executing a single-lane :class:`~repro.plan.plan.
ExecutionPlan`: the shared :class:`~repro.plan.planner.Planner` cuts the
trial space into batch tasks (a fixed depth, or the ragged autotuner's
byte budget) and :func:`~repro.plan.execute.execute_plan_cpu` streams
them with a double-buffered fetch.  The per-activity wall-clock profile
directly measures the Figure 6 breakdown (the paper's finding on this
implementation: >65% of time in loss lookup, ~31% in the numerical term
computations).

``ReferenceEngine`` additionally exposes the line-by-line scalar oracle
through the same engine interface, for validation runs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.algorithm import reference_layer_losses
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.plan.execute import execute_plan_cpu
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities
from repro.plan.scheduler import Scheduler
from repro.utils.timer import ACTIVITY_OTHER, ActivityProfile


class SequentialEngine(Engine):
    """Single-threaded batched execution of Algorithm 1.

    Parameters
    ----------
    batch_trials:
        Trials per plan task (bounds the working block's memory).
        ``None`` lets the planner's ragged autotuner size batches to its
        byte budget (the dense path treats ``None`` as the legacy 8192).
    kernel:
        ``"ragged"`` (fused CSR kernel, :mod:`repro.core.kernels`, the
        default) or ``"dense"`` (legacy padded kernel).
    """

    name = "sequential"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        batch_trials: int | None = 8192,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
            backend=backend,
        )
        if batch_trials is not None and batch_trials < 1:
            raise ValueError(f"batch_trials must be >= 1, got {batch_trials}")
        self.batch_trials = None if batch_trials is None else int(batch_trials)

    def capabilities(self) -> EngineCapabilities:
        return EngineCapabilities(
            engine=self.name,
            n_slots=1,
            kernel=self.kernel,
            batch_trials=self.batch_trials,
            slot_batching="batched",
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        profile = ActivityProfile()
        ylt = execute_plan_cpu(
            yet,
            portfolio,
            catalog_size,
            plan,
            lookup_kind=self.lookup_kind,
            dtype=self.dtype,
            secondary=self.secondary,
            secondary_seed=self.secondary_seed,
            profile=profile,
            scheduler=Scheduler(max_workers=1),
            backend=self.backend,
        )
        meta = {
            "batch_trials": self.batch_trials,
            "n_threads": 1,
            "kernel": self.kernel,
            "secondary": self.secondary is not None,
        }
        return ylt, profile, None, meta


class ReferenceEngine(Engine):
    """Algorithm 1 verbatim (scalar loops) behind the engine interface.

    Pure-Python and extremely slow — the correctness oracle, not a
    performance point.  Ignores ``lookup_kind``/``dtype`` (it always uses
    dict semantics in ``float64``, the most literal reading of the
    pseudocode).  With ``secondary`` it draws the *same* counter-based
    multipliers as the fused ragged kernel (addressed by global
    occurrence index), so a seeded secondary run can be cross-checked
    end to end against any vectorised engine.
    """

    name = "reference"

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        profile = ActivityProfile()
        base_seed = self._secondary_base_seed()
        per_layer: Dict[int, np.ndarray] = {}
        with profile.track(ACTIVITY_OTHER):
            for layer in portfolio.layers:
                out = np.zeros(yet.n_trials, dtype=np.float64)
                # Execute the plan's tasks (a single whole-range task
                # for this engine's single-lane capabilities, but any
                # valid plan works — tasks carry global indices).
                for task in plan.layer_tasks(layer.layer_id):
                    out[task.trial_start : task.trial_stop] = (
                        reference_layer_losses(
                            yet,
                            portfolio,
                            layer,
                            trial_start=task.trial_start,
                            trial_stop=task.trial_stop,
                            secondary=self.secondary,
                            base_seed=base_seed,
                        )
                    )
                per_layer[layer.layer_id] = out
        # The scalar oracle never dispatches through the backend
        # registry, whatever was requested.
        meta = {
            "scalar": True,
            "secondary": self.secondary is not None,
            "backend": "numpy",
        }
        return YearLossTable.from_dict(per_layer), profile, None, meta
