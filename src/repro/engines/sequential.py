"""(i) Sequential engine — the paper's single-core C++ baseline.

One thread, trials processed in batches through the shared vectorised
kernel.  The batch size bounds peak memory without changing results; the
per-activity wall-clock profile directly measures the Figure 6 breakdown
(the paper's finding on this implementation: >65% of time in loss lookup,
~31% in the numerical term computations).

``ReferenceEngine`` additionally exposes the line-by-line scalar oracle
through the same engine interface, for validation runs.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.core.algorithm import aggregate_risk_analysis_reference
from repro.core.kernels import run_ragged
from repro.core.vectorized import run_vectorized
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.utils.timer import ACTIVITY_OTHER, ActivityProfile


class SequentialEngine(Engine):
    """Single-threaded batched execution of Algorithm 1.

    Parameters
    ----------
    batch_trials:
        Trials per kernel batch (bounds the working block's memory).
        ``None`` lets the ragged path's autotuner size batches to its
        byte budget (the dense path treats ``None`` as the legacy 8192).
    kernel:
        ``"ragged"`` (fused CSR kernel, :mod:`repro.core.kernels`, the
        default) or ``"dense"`` (legacy padded kernel).
    """

    name = "sequential"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        batch_trials: int | None = 8192,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
        )
        if batch_trials is not None and batch_trials < 1:
            raise ValueError(f"batch_trials must be >= 1, got {batch_trials}")
        self.batch_trials = None if batch_trials is None else int(batch_trials)

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        profile = ActivityProfile()
        if self.kernel == "ragged":
            ylt = run_ragged(
                yet,
                portfolio,
                catalog_size,
                lookup_kind=self.lookup_kind,
                dtype=self.dtype,
                batch_trials=self.batch_trials,
                profile=profile,
                secondary=self.secondary,
                secondary_seed=self.secondary_seed,
            )
        else:
            ylt = run_vectorized(
                yet,
                portfolio,
                catalog_size,
                lookup_kind=self.lookup_kind,
                dtype=self.dtype,
                batch_trials=(
                    8192 if self.batch_trials is None else self.batch_trials
                ),
                profile=profile,
                secondary=self.secondary,
                secondary_seed=self.secondary_seed,
            )
        meta = {
            "batch_trials": self.batch_trials,
            "n_threads": 1,
            "kernel": self.kernel,
            "secondary": self.secondary is not None,
        }
        return ylt, profile, None, meta


class ReferenceEngine(Engine):
    """Algorithm 1 verbatim (scalar loops) behind the engine interface.

    Pure-Python and extremely slow — the correctness oracle, not a
    performance point.  Ignores ``lookup_kind``/``dtype`` (it always uses
    dict semantics in ``float64``, the most literal reading of the
    pseudocode).
    """

    name = "reference"

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        if self.secondary is not None:
            raise NotImplementedError(
                "the scalar reference engine has no secondary-uncertainty "
                "path; use any vectorised engine"
            )
        profile = ActivityProfile()
        with profile.track(ACTIVITY_OTHER):
            ylt = aggregate_risk_analysis_reference(yet, portfolio)
        return ylt, profile, None, {"scalar": True}
