"""Engine registry: name → class, with keyword filtering.

Engines accept different keyword options (``n_cores`` only makes sense
for multicore, ``threads_per_block`` only for GPU engines...).  The
registry filters the caller's keyword arguments down to each engine's
constructor signature so high-level sweeps can pass a superset.
"""

from __future__ import annotations

import inspect
from typing import Any, Dict, Tuple, Type

from repro.engines.base import Engine
from repro.engines.gpu_basic import GPUBasicEngine
from repro.engines.gpu_optimized import GPUOptimizedEngine
from repro.engines.multicore import MulticoreEngine
from repro.engines.multigpu import MultiGPUEngine
from repro.engines.sequential import ReferenceEngine, SequentialEngine

_REGISTRY: Dict[str, Type[Engine]] = {
    ReferenceEngine.name: ReferenceEngine,
    SequentialEngine.name: SequentialEngine,
    MulticoreEngine.name: MulticoreEngine,
    GPUBasicEngine.name: GPUBasicEngine,
    GPUOptimizedEngine.name: GPUOptimizedEngine,
    MultiGPUEngine.name: MultiGPUEngine,
}


def available_engines() -> Tuple[str, ...]:
    """Registry names in the paper's presentation order."""
    return tuple(_REGISTRY)


def engine_class(name: str) -> Type[Engine]:
    """The engine class registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; available: {available_engines()}"
        ) from None


def create_engine(name: str, **options: Any) -> Engine:
    """Instantiate engine ``name``, keeping only options it understands.

    Unknown names raise; options not in the engine's constructor are
    silently dropped (so sweep code can pass one option superset to all
    engines).
    """
    cls = engine_class(name)
    signature = inspect.signature(cls.__init__)
    accepted = {
        key: value
        for key, value in options.items()
        if key in signature.parameters
    }
    return cls(**accepted)
