"""The five implementations of aggregate risk analysis.

Mirrors the paper's Section III inventory:

=================  ====================================================
Registry name      Paper implementation
=================  ====================================================
``reference``      Algorithm 1 verbatim (correctness oracle; not timed
                   in the paper, provided here for validation)
``sequential``     (i) sequential C++ on one CPU core
``multicore``      (ii) C++/OpenMP on a multi-core CPU
``gpu``            (iii) basic CUDA on a many-core GPU (simulated)
``gpu-optimized``  (iv) optimised CUDA: chunking, loop unrolling,
                   reduced precision, kernel registers (simulated)
``multi-gpu``      (v) optimised kernel decomposed over multiple GPUs
                   managed by CPU threads (simulated)
=================  ====================================================

CPU engines report *measured* wall-clock activity profiles; GPU engines
additionally report *modeled* device seconds from the
:mod:`repro.gpusim` cost model.
"""

from repro.engines.base import Engine
from repro.engines.sequential import ReferenceEngine, SequentialEngine
from repro.engines.multicore import MulticoreEngine
from repro.engines.gpu_basic import GPUBasicEngine
from repro.engines.gpu_optimized import GPUOptimizedEngine, OptimizationFlags
from repro.engines.multigpu import MultiGPUEngine
from repro.engines.registry import available_engines, create_engine

__all__ = [
    "Engine",
    "ReferenceEngine",
    "SequentialEngine",
    "MulticoreEngine",
    "GPUBasicEngine",
    "GPUOptimizedEngine",
    "OptimizationFlags",
    "MultiGPUEngine",
    "available_engines",
    "create_engine",
]
