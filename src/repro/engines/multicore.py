"""(ii) Multicore engine — the paper's C++/OpenMP implementation.

The paper parallelises by trial: "a single thread is employed per trial"
with OpenMP scheduling threads over cores (Figure 1a), and additionally
oversubscribes each core with many threads (Figure 1b).  Here the shared
:class:`~repro.plan.planner.Planner` lays the trial space onto
``n_cores * threads_per_core`` lanes — each a logical "thread" — and the
:class:`~repro.plan.scheduler.Scheduler` runs those lanes on a pool of
``n_cores`` OS threads.  NumPy's gathers and ufuncs release the GIL, so
the lanes genuinely run in parallel; like the paper's CPU, the shared
memory bus bounds the achievable speedup — random ELT lookups have no
locality for the cache hierarchy to exploit.

With ``kernel="ragged"`` (the default) lanes are cut at equal cumulative
*occurrence* counts — the multi-GPU engine's ``balance="events"`` rule —
so ragged YETs hand every worker a near-equal share of actual lookups;
inside a lane, tasks stream through the executor's double-buffered fetch
(chunk fetch overlaps reduce, matching the sequential engine).  The
dense kernel keeps the paper's equal-trial split, one task per lane.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.plan.execute import execute_plan_cpu
from repro.plan.plan import ExecutionPlan
from repro.plan.planner import EngineCapabilities
from repro.plan.scheduler import Scheduler
from repro.utils.parallel import available_cpu_count
from repro.utils.timer import ActivityProfile
from repro.utils.validation import check_positive


class MulticoreEngine(Engine):
    """Trial-parallel execution on a pool of OS threads.

    Parameters
    ----------
    n_cores:
        Worker threads mapped to cores (defaults to all available) —
        the scheduler's concurrency.  Results are bit-for-bit identical
        for any value: the plan fixes the decomposition, the scheduler
        only picks how many lanes run at once.
    threads_per_core:
        Oversubscription factor (Figure 1b's axis): the plan receives
        ``n_cores * threads_per_core`` lanes, scheduled onto the
        ``n_cores`` workers.
    """

    name = "multicore"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        n_cores: int | None = None,
        threads_per_core: int = 1,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
            backend=backend,
        )
        self.n_cores = int(n_cores) if n_cores else available_cpu_count()
        check_positive("n_cores", self.n_cores)
        check_positive("threads_per_core", threads_per_core)
        self.threads_per_core = int(threads_per_core)

    @property
    def n_logical_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    def capabilities(self) -> EngineCapabilities:
        # Ragged lanes sub-batch (streaming double buffer); dense lanes
        # stay whole so the dense secondary stream keeps its historical
        # chunk-start seeds.
        return EngineCapabilities(
            engine=self.name,
            n_slots=self.n_logical_threads,
            kernel=self.kernel,
            balance="auto",
            slot_batching="batched" if self.kernel == "ragged" else "whole",
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        # Merged per-activity seconds are *CPU* seconds across workers
        # (they sum over threads); the engine's wall_seconds field
        # reports elapsed time.
        profile = ActivityProfile()
        ylt = execute_plan_cpu(
            yet,
            portfolio,
            catalog_size,
            plan,
            lookup_kind=self.lookup_kind,
            dtype=self.dtype,
            secondary=self.secondary,
            secondary_seed=self.secondary_seed,
            profile=profile,
            scheduler=Scheduler(max_workers=self.n_cores),
            backend=self.backend,
        )
        meta = {
            "n_cores": self.n_cores,
            "threads_per_core": self.threads_per_core,
            "n_logical_threads": self.n_logical_threads,
            "kernel": self.kernel,
            "balance": plan.balance,
            "secondary": self.secondary is not None,
        }
        return ylt, profile, None, meta
