"""(ii) Multicore engine — the paper's C++/OpenMP implementation.

The paper parallelises by trial: "a single thread is employed per trial"
with OpenMP scheduling threads over cores (Figure 1a), and additionally
oversubscribes each core with many threads (Figure 1b).  Here the trial
space is split into contiguous chunks executed by a pool of OS threads.
NumPy's gathers and ufuncs release the GIL, so the chunks genuinely run
in parallel; like the paper's CPU, the shared memory bus bounds the
achievable speedup — random ELT lookups have no locality for the cache
hierarchy to exploit.

``n_threads = n_cores * threads_per_core`` mirrors the paper's Figure 1b
oversubscription axis: past the core count extra threads only help by
overlapping memory latency, so returns diminish quickly (our measured
curve; the perfmodel reproduces the paper's exact one).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.core.kernels import (
    build_layer_tables,
    layer_trial_batch_ragged,
    layer_trial_batch_secondary_ragged,
)
from repro.core.secondary import layer_stream_key, layer_trial_batch_secondary
from repro.core.vectorized import layer_trial_batch
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.utils.bufpool import ScratchBufferPool
from repro.utils.parallel import (
    available_cpu_count,
    balanced_chunk_ranges,
    chunk_ranges,
    run_threaded,
)
from repro.utils.rng import stable_hash_seed
from repro.utils.timer import ACTIVITY_FETCH, ActivityProfile
from repro.utils.validation import check_positive


class MulticoreEngine(Engine):
    """Trial-parallel execution on a pool of OS threads.

    With ``kernel="ragged"`` (the default) the trial space is split by
    cumulative *occurrence* counts — the multi-GPU engine's
    ``balance="events"`` rule via the shared
    :func:`~repro.utils.parallel.balanced_chunk_ranges` — so ragged YETs
    hand every worker a near-equal share of actual lookups instead of
    trial counts.  The dense kernel keeps the paper's equal-trial split.

    Parameters
    ----------
    n_cores:
        Worker threads mapped to cores (defaults to all available).
    threads_per_core:
        Oversubscription factor (Figure 1b's axis): the trial space is
        split into ``n_cores * threads_per_core`` chunks, each a logical
        "thread", scheduled onto the ``n_cores`` workers.
    """

    name = "multicore"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        n_cores: int | None = None,
        threads_per_core: int = 1,
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
        )
        self.n_cores = int(n_cores) if n_cores else available_cpu_count()
        check_positive("n_cores", self.n_cores)
        check_positive("threads_per_core", threads_per_core)
        self.threads_per_core = int(threads_per_core)

    @property
    def n_logical_threads(self) -> int:
        return self.n_cores * self.threads_per_core

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        profile = ActivityProfile()
        per_layer: Dict[int, np.ndarray] = {}
        base_seed = self._secondary_base_seed()

        n_chunks = min(self.n_logical_threads, yet.n_trials)
        if self.kernel == "ragged":
            # Occurrence-balanced decomposition: ragged YETs load-balance
            # on actual work (lookups ∝ occurrences), not trial counts.
            chunks = balanced_chunk_ranges(yet.offsets, n_chunks)
        else:
            chunks = chunk_ranges(yet.n_trials, n_chunks)
        # One scratch pool per chunk slot, reused across layers: pools
        # are not thread-safe, but chunk i is a distinct task per layer
        # and layers run back-to-back, so each pool has one borrower at
        # a time and its buffers amortise over the whole run.
        pools: List[ScratchBufferPool] = [ScratchBufferPool() for _ in chunks]
        for layer in portfolio.layers:
            # Lookup tables are built once (through the shared cache) and
            # read concurrently by all workers — the paper's design ("all
            # threads within a block access the same ELT") at CPU scale.
            with profile.track(ACTIVITY_FETCH):
                lookups, stacked, _ = build_layer_tables(
                    portfolio.elts_of(layer),
                    catalog_size,
                    self.lookup_kind,
                    self.dtype,
                    self.kernel,
                )
            out = np.empty(yet.n_trials, dtype=np.float64)
            # Each chunk gets its own profile; charges are merged after
            # the join.  Merged seconds are *CPU* seconds across workers
            # (they sum over threads); the engine's wall_seconds field
            # reports elapsed time.
            worker_profiles: List[ActivityProfile] = [
                ActivityProfile() for _ in chunks
            ]

            stream_key = layer_stream_key(base_seed, layer.layer_id)

            def make_task(chunk_idx: int):
                start, stop = chunks[chunk_idx]
                wprofile = worker_profiles[chunk_idx]
                pool = pools[chunk_idx]

                def task() -> None:
                    if self.kernel == "ragged":
                        # Zero-copy CSR views into the shared YET.
                        with wprofile.track(ACTIVITY_FETCH):
                            ids, offs = yet.csr_block(start, stop)
                        if self.secondary is not None:
                            # Counter-based streams keyed by global
                            # occurrence index: the same multipliers
                            # regardless of how many chunks this run
                            # split into (decomposition invariance).
                            out[start:stop] = layer_trial_batch_secondary_ragged(
                                ids,
                                offs,
                                lookups,
                                layer.terms,
                                self.secondary,
                                stream_key,
                                stacked=stacked,
                                occ_base=int(yet.offsets[start]),
                                profile=wprofile,
                                dtype=self.dtype,
                                pool=pool,
                            )
                            return
                        out[start:stop] = layer_trial_batch_ragged(
                            ids,
                            offs,
                            lookups,
                            layer.terms,
                            stacked=stacked,
                            profile=wprofile,
                            dtype=self.dtype,
                            pool=pool,
                        )
                        return
                    sub = yet.slice_trials(start, stop)
                    with wprofile.track(ACTIVITY_FETCH):
                        dense = sub.to_dense()
                    if self.secondary is not None:
                        # Dense draws are sequential-stream: reproducible
                        # per (layer, chunk start), but not invariant to
                        # the decomposition — the ragged path is.
                        out[start:stop] = layer_trial_batch_secondary(
                            dense,
                            lookups,
                            layer.terms,
                            self.secondary,
                            seed=stable_hash_seed(
                                base_seed,
                                "dense-secondary",
                                layer.layer_id,
                                start,
                            ),
                            profile=wprofile,
                            dtype=self.dtype,
                        )
                        return
                    out[start:stop] = layer_trial_batch(
                        dense,
                        lookups,
                        layer.terms,
                        profile=wprofile,
                        dtype=self.dtype,
                    )

                return task

            run_threaded(
                [make_task(i) for i in range(len(chunks))],
                max_workers=self.n_cores,
            )
            for wprofile in worker_profiles:
                profile = profile.merged(wprofile)
            per_layer[layer.layer_id] = out

        meta = {
            "n_cores": self.n_cores,
            "threads_per_core": self.threads_per_core,
            "n_logical_threads": self.n_logical_threads,
            "kernel": self.kernel,
            "balance": "events" if self.kernel == "ragged" else "trials",
            "secondary": self.secondary is not None,
        }
        return YearLossTable.from_dict(per_layer), profile, None, meta
