"""ARA kernels for the simulated GPU, shared by engines (iii)–(v).

Two kernels mirror the paper's CUDA implementations:

* :class:`ARABasicKernel` — implementation (iii): all intermediates
  (per-event ``lx``/``lox`` arrays) live in global/local memory, so every
  step of Algorithm 1 re-reads and re-writes them ("the basic parallel
  implementation on the GPU requires high memory transactions").
* :class:`ARAOptimizedKernel` — implementation (iv): the four
  optimisations of Section III, individually toggleable for ablation:

  - **chunking** — events are staged through shared memory in fixed-size
    chunks and the term computations run on the staged chunk, removing
    the intermediate global traffic and giving each thread ``chunk``
    independent loads in flight (the ``mlp`` the cost model rewards);
  - **loop unrolling** — fewer dynamic instructions per (event, ELT);
  - **reduced precision** — ``float32`` tables and arithmetic;
  - **registers** — per-thread accumulators move from shared memory into
    the register file.

Both kernels compute through the same NumPy step functions as the CPU
engines, so their YLTs are exact (basic) or float32-accurate (optimised
with reduced precision) relative to the scalar reference.

Traffic accounting per (event, ELT) pair, basic kernel:
one RANDOM lookup + four STRIDED intermediate accesses (write/read ``lx``,
read/write ``lox``); plus nine STRIDED accesses per event for the
occurrence/cumulative/aggregate steps; plus coalesced YET reads and YLT
writes.  The optimised kernel keeps only the RANDOM lookups and coalesced
streams, moving everything else on-chip — which is exactly why the paper
measures it ~2x faster (38.47 s → 20.63 s).

With ``kernel="ragged"`` both kernel classes switch to
:func:`record_ragged_traffic`, the fused formulation's own ledger
(coalesced CSR streams, fused gather, no global intermediates), so
modeled seconds reflect what the fused kernel actually moves rather than
reusing the dense ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.kernels import (
    build_layer_tables,
    check_kernel,
    layer_trial_batch_ragged,
    layer_trial_batch_secondary_ragged,
    occ_chunk_for,
)
from repro.core.secondary import (
    SecondaryUncertainty,
    layer_trial_batch_secondary,
)
from repro.core.terms import (
    apply_aggregate_terms_cumulative,
    apply_occurrence_terms,
)
from repro.data.layer import LayerTerms
from repro.data.yet import YearEventTable
from repro.gpusim.kernel import SimKernel
from repro.gpusim.memory import DeviceCounters
from repro.lookup.base import LossLookup
from repro.lookup.combined import StackedDirectTable
from repro.utils.bufpool import ScratchBufferPool
from repro.utils.rng import stable_hash_seed
from repro.utils.timer import (
    ACTIVITY_FETCH,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_LOOKUP,
    ACTIVITY_OTHER,
    ActivityProfile,
)

# Dynamic instructions per (event, ELT) iteration of the inner loop.
INSTR_PER_ITER_ROLLED = 8.0
INSTR_PER_ITER_UNROLLED = 3.0

# Register footprints (occupancy inputs) of the two kernels.
BASIC_REGISTERS_PER_THREAD = 20
OPTIMIZED_REGISTERS_PER_THREAD = 32

# Floating-point ops per event for each phase (fx, sub, max, min, share;
# accumulate; clamp pipelines).
FLOPS_FINANCIAL_PER_LOOKUP = 5.0
FLOPS_ACCUM_PER_LOOKUP = 1.0
FLOPS_LAYER_PER_EVENT = 9.0

# Extra work per (event, ELT) pair with secondary uncertainty on: one
# Philox counter round for the uniform, the bin-index scale, and the
# multiply into the gross loss (the quantile-table read is charged as a
# random global access separately).
FLOPS_SECONDARY_PER_LOOKUP = 12.0


@dataclass(frozen=True)
class OptimizationFlags:
    """Which of the paper's four GPU optimisations are active."""

    chunking: bool = True
    unroll: bool = True
    float32: bool = True
    registers: bool = True

    @classmethod
    def none(cls) -> "OptimizationFlags":
        return cls(chunking=False, unroll=False, float32=False, registers=False)

    @classmethod
    def all(cls) -> "OptimizationFlags":
        return cls()

    def describe(self) -> str:
        on = [
            name
            for name in ("chunking", "unroll", "float32", "registers")
            if getattr(self, name)
        ]
        return "+".join(on) if on else "none"


def optimized_shared_bytes_per_block(
    threads_per_block: int,
    chunk_events: int,
    word_bytes: int,
    flags: OptimizationFlags,
) -> int:
    """Shared-memory request of the optimised kernel per block.

    Two staging buffers per thread (current chunk + prefetched next),
    plus the accumulators when the register optimisation is off.  Shared
    by the kernel class and the analytic performance model.
    """
    if not flags.chunking:
        return 0
    per_thread = chunk_events * word_bytes * 2
    if not flags.registers:
        per_thread += chunk_events * word_bytes
    return threads_per_block * per_thread


def optimized_mlp(flags: OptimizationFlags, chunk_events: int) -> float:
    """Memory-level parallelism of the optimised kernel per thread."""
    return float(chunk_events) if flags.chunking else 1.0


def optimized_barrier_intensity(flags: OptimizationFlags) -> float:
    """Barrier stall exposure (chunk staging synchronises per chunk)."""
    return 0.12 if flags.chunking else 0.0


def max_feasible_threads_per_block(
    shared_mem_per_sm_bytes: int,
    chunk_events: int,
    word_bytes: int,
    flags: OptimizationFlags,
    warp_size: int = 32,
    cap: int = 256,
) -> int:
    """Largest warp-multiple block size whose shared request fits one SM.

    Used by ablation sweeps: configurations with bigger per-thread shared
    footprints (float64, no register optimisation) must shrink the block
    to stay launchable, exactly as a CUDA programmer would.
    """
    if cap < warp_size:
        raise ValueError(f"cap {cap} below warp size {warp_size}")
    best = 0
    tpb = warp_size
    while tpb <= cap:
        if (
            optimized_shared_bytes_per_block(tpb, chunk_events, word_bytes, flags)
            <= shared_mem_per_sm_bytes
        ):
            best = tpb
        tpb += warp_size
    if best == 0:
        raise ValueError(
            f"no feasible block size: even {warp_size} threads need "
            f"{optimized_shared_bytes_per_block(warp_size, chunk_events, word_bytes, flags)} "
            f"B of shared memory (> {shared_mem_per_sm_bytes} B); reduce "
            f"chunk_events"
        )
    return best


def record_basic_traffic(
    counters: DeviceCounters,
    n_occ: float,
    n_trials: float,
    n_elts: int,
    word: int,
) -> None:
    """Ledger entries of the basic kernel for ``n_occ`` occurrences.

    Shared by :class:`ARABasicKernel` (per executed range) and the
    analytic performance model (once, with workload totals), so the two
    can never disagree about what the kernel does.
    """
    per_pair = float(n_occ) * n_elts
    # Trial events streamed from the YET (4-byte ids, coalesced).
    counters.global_coalesced(n_occ * 4, activity=ACTIVITY_FETCH)
    # One direct-access-table read per (event, ELT): random, uncoalesced.
    counters.global_random(per_pair, word, activity=ACTIVITY_LOOKUP)
    # lx written then re-read; lox read-modify-written (lines 8-13), all
    # in global/local memory in the basic implementation.
    counters.global_strided(4.0 * per_pair, word, activity=ACTIVITY_FINANCIAL)
    counters.flops(
        (FLOPS_FINANCIAL_PER_LOOKUP + FLOPS_ACCUM_PER_LOOKUP) * per_pair,
        word,
        activity=ACTIVITY_FINANCIAL,
    )
    # Occurrence clamp, cumulative sum, aggregate clamp, difference and
    # final sum (lines 15-29): ~9 strided accesses + 9 flops per event.
    counters.global_strided(9.0 * n_occ, word, activity=ACTIVITY_LAYER)
    counters.flops(FLOPS_LAYER_PER_EVENT * n_occ, word, activity=ACTIVITY_LAYER)
    # Year loss written back, coalesced (one float64 per trial/thread).
    counters.global_coalesced(n_trials * 8, activity=ACTIVITY_OTHER)
    counters.instruction_count(INSTR_PER_ITER_ROLLED * per_pair)


def record_optimized_traffic(
    counters: DeviceCounters,
    n_occ: float,
    n_trials: float,
    n_elts: int,
    word: int,
    flags: OptimizationFlags,
    chunk_events: int,
) -> None:
    """Ledger entries of the optimised kernel (flag-dependent).

    Shared by :class:`ARAOptimizedKernel` and the performance model.
    """
    per_pair = float(n_occ) * n_elts
    counters.global_coalesced(n_occ * 4, activity=ACTIVITY_FETCH)
    counters.global_random(per_pair, word, activity=ACTIVITY_LOOKUP)

    if flags.chunking:
        # Events staged into shared memory (1 write + n_elts reads per
        # occurrence); term computations run on-chip.
        counters.shared(n_occ * (1.0 + n_elts))
        if not flags.registers:
            # Accumulators in shared memory: read-modify-write per pair.
            counters.shared(2.0 * per_pair)
        # Financial and layer term constants come from constant memory
        # (one broadcast read per chunk per term set).
        n_chunks = max(1.0, n_occ / chunk_events)
        counters.constant(n_chunks * (n_elts + 1))
    else:
        # Without chunking the intermediates stay in global memory,
        # exactly like the basic kernel.
        counters.global_strided(
            4.0 * per_pair, word, activity=ACTIVITY_FINANCIAL
        )
        counters.global_strided(9.0 * n_occ, word, activity=ACTIVITY_LAYER)

    counters.flops(
        (FLOPS_FINANCIAL_PER_LOOKUP + FLOPS_ACCUM_PER_LOOKUP) * per_pair,
        word,
        activity=ACTIVITY_FINANCIAL,
    )
    counters.flops(FLOPS_LAYER_PER_EVENT * n_occ, word, activity=ACTIVITY_LAYER)
    counters.global_coalesced(n_trials * 8, activity=ACTIVITY_OTHER)

    instr = INSTR_PER_ITER_UNROLLED if flags.unroll else INSTR_PER_ITER_ROLLED
    counters.instruction_count(instr * per_pair)


def record_ragged_traffic(
    counters: DeviceCounters,
    n_occ: float,
    n_trials: float,
    n_elts: int,
    word: int,
    flags: OptimizationFlags,
    occ_chunk: int,
    secondary: bool = False,
) -> None:
    """Ledger entries of the *fused ragged* kernel (flag-dependent).

    The ragged formulation's traffic differs from the dense ledger in
    exactly the ways the fusion wins on hardware:

    * the trial stream is the CSR arrays — coalesced event ids **plus
      the coalesced offsets array** — instead of a padded id block;
    * one fused gather per (event, ELT) pair (random, irreducible), with
      the gathered chunk staged on-chip and the financial terms broadcast
      over it in place: with ``flags.chunking`` there is **no** global
      intermediate traffic, without it the gathered block spills to
      global memory and is re-read once by the terms pass (2 accesses
      per pair — still half the dense basic kernel's 4);
    * the segment reduction + occurrence/aggregate clamps make one
      strided pass over the combined vector (2 accesses per event)
      instead of the dense path's nine;
    * with ``secondary``, one quantile-table read per pair (random) and
      the counter-RNG arithmetic.

    Shared by both ARA kernel classes when ``kernel="ragged"`` so the
    modeled GPU seconds show the same fusion win the CPU wall clock
    measures.
    """
    per_pair = float(n_occ) * n_elts
    # CSR streams: event ids and the offsets array, both coalesced.
    counters.global_coalesced(n_occ * 4, activity=ACTIVITY_FETCH)
    counters.global_coalesced((n_trials + 1) * 8, activity=ACTIVITY_FETCH)
    # The fused gather: one random table read per (event, ELT) pair.
    counters.global_random(per_pair, word, activity=ACTIVITY_LOOKUP)
    if secondary:
        # Per-pair damage-ratio multiplier: one quantile-table read.
        counters.global_random(per_pair, word, activity=ACTIVITY_FINANCIAL)
        counters.flops(
            FLOPS_SECONDARY_PER_LOOKUP * per_pair,
            word,
            activity=ACTIVITY_FINANCIAL,
        )

    if flags.chunking:
        # Gathered chunk staged on-chip; terms broadcast in place, and
        # the occurrence clamp + segment accumulation consume the staged
        # combined values before they ever reach global memory.
        counters.shared(n_occ * (1.0 + n_elts))
        counters.shared(2.0 * n_occ)
        if not flags.registers:
            counters.shared(2.0 * per_pair)
        n_chunks = max(1.0, n_occ / max(1, occ_chunk))
        counters.constant(n_chunks * (n_elts + 1))
    else:
        # Without staging the gathered block spills to global memory and
        # the in-place terms pass re-reads it (write + read per pair),
        # and the combined vector makes one strided round trip — still
        # half the padded basic kernel's four per-pair accesses and a
        # fraction of its nine per-event layer accesses.
        counters.global_strided(
            2.0 * per_pair, word, activity=ACTIVITY_FINANCIAL
        )
        counters.global_strided(2.0 * n_occ, word, activity=ACTIVITY_LAYER)

    counters.flops(
        (FLOPS_FINANCIAL_PER_LOOKUP + FLOPS_ACCUM_PER_LOOKUP) * per_pair,
        word,
        activity=ACTIVITY_FINANCIAL,
    )
    counters.flops(FLOPS_LAYER_PER_EVENT * n_occ, word, activity=ACTIVITY_LAYER)
    counters.global_coalesced(n_trials * 8, activity=ACTIVITY_OTHER)

    instr = INSTR_PER_ITER_UNROLLED if flags.unroll else INSTR_PER_ITER_ROLLED
    counters.instruction_count(instr * per_pair)


# ``build_layer_tables`` is defined in :mod:`repro.core.kernels` (the
# selection rule is shared with the CPU engines) and re-exported from the
# import block above for the GPU engines.


class _ARAKernelBase(SimKernel):
    """Shared functional body of both ARA kernels (one thread per trial).

    ``kernel`` selects the functional compute: ``"dense"`` (the legacy
    padded block) or ``"ragged"`` (the fused CSR path of
    :mod:`repro.core.kernels`, fed by ``stacked`` when the layer uses
    direct tables).  The *traffic ledger* is unchanged either way — the
    simulated device still models the paper's CUDA kernels; only the
    host-side functional arithmetic switches implementation.
    """

    def __init__(
        self,
        yet: YearEventTable,
        lookups: Sequence[LossLookup],
        layer_terms: LayerTerms,
        out: np.ndarray,
        dtype: np.dtype,
        kernel: str = "dense",
        stacked: StackedDirectTable | None = None,
        secondary: SecondaryUncertainty | None = None,
        secondary_stream_key: int = 0,
        occ_origin: int = 0,
        backend=None,
    ) -> None:
        if out.shape != (yet.n_trials,):
            raise ValueError(
                f"output array shape {out.shape} != ({yet.n_trials},)"
            )
        self.yet = yet
        self.lookups = list(lookups)
        self.layer_terms = layer_terms
        self.out = out
        self.dtype = np.dtype(dtype)
        self.kernel = check_kernel(kernel)
        self.stacked = stacked
        self.secondary = secondary
        self.secondary_stream_key = int(secondary_stream_key)
        # Kernel backend the host-side functional compute dispatches
        # through (the traffic ledger never depends on it).
        self.backend = backend
        # Global occurrence index of this (sub-)YET's first occurrence:
        # multi-device engines pass their slice's origin so the ragged
        # path's counter-based secondary draws stay decomposition-
        # invariant across device counts.
        self.occ_origin = int(occ_origin)
        self._pool = ScratchBufferPool()

    @property
    def word_bytes(self) -> int:
        return self.dtype.itemsize

    @property
    def n_elts(self) -> int:
        return self.stacked.n_elts if self.stacked is not None else len(self.lookups)

    @property
    def occ_chunk(self) -> int:
        """Occurrence-chunk depth of the fused ragged gather."""
        return occ_chunk_for(max(1, self.n_elts), self.word_bytes)

    def _compute_range(self, start: int, stop: int) -> tuple[np.ndarray, int]:
        """Functional work for trials [start, stop): returns (year, n_occ)."""
        if self.kernel == "ragged":
            ids, offs = self.yet.csr_block(start, stop)
            if self.secondary is not None:
                year = layer_trial_batch_secondary_ragged(
                    ids,
                    offs,
                    self.lookups,
                    self.layer_terms,
                    self.secondary,
                    self.secondary_stream_key,
                    stacked=self.stacked,
                    occ_base=self.occ_origin + int(self.yet.offsets[start]),
                    dtype=self.dtype,
                    pool=self._pool,
                    backend=self.backend,
                )
            else:
                year = layer_trial_batch_ragged(
                    ids,
                    offs,
                    self.lookups,
                    self.layer_terms,
                    stacked=self.stacked,
                    dtype=self.dtype,
                    pool=self._pool,
                    backend=self.backend,
                )
            self.out[start:stop] = year
            return year, ids.size
        chunk = self.yet.slice_trials(start, stop)
        dense = chunk.to_dense()
        if self.secondary is not None:
            # occ_origin distinguishes devices of a multi-GPU split whose
            # sub-YETs all start their local batch ranges at 0 — without
            # it two devices would replay identical multiplier streams
            # on different trials.
            year = layer_trial_batch_secondary(
                dense,
                self.lookups,
                self.layer_terms,
                self.secondary,
                seed=stable_hash_seed(
                    self.secondary_stream_key,
                    "gpu-dense-secondary",
                    self.occ_origin,
                    start,
                ),
                dtype=self.dtype,
            )
            self.out[start:stop] = year
            return year, chunk.n_occurrences
        combined = np.zeros(dense.shape, dtype=self.dtype)
        for lookup in self.lookups:
            gross = lookup.lookup(dense)
            net = lookup.terms.apply(gross)
            combined += net.astype(self.dtype, copy=False)
        occ = apply_occurrence_terms(combined, self.layer_terms, out=combined)
        totals = occ.sum(axis=1, dtype=np.float64)
        year = apply_aggregate_terms_cumulative(totals, self.layer_terms)
        self.out[start:stop] = year
        return year, chunk.n_occurrences


class ARABasicKernel(_ARAKernelBase):
    """Implementation (iii): intermediates in global/local memory.

    With ``kernel="ragged"`` the ledger switches to
    :func:`record_ragged_traffic` (no optimisation flags: the gathered
    block still spills to global memory, but the CSR streams and the
    fused single-pass reduction already halve the strided traffic) — so
    modeled seconds show the fusion win even on the unoptimised engine.
    """

    name = "ara-basic"
    registers_per_thread = BASIC_REGISTERS_PER_THREAD
    mlp = 1.0
    barrier_intensity = 0.0

    def run_range(self, start: int, stop: int, counters: DeviceCounters) -> None:
        _, n_occ = self._compute_range(start, stop)
        if self.kernel == "ragged":
            record_ragged_traffic(
                counters,
                n_occ=n_occ,
                n_trials=stop - start,
                n_elts=self.n_elts,
                word=self.word_bytes,
                flags=OptimizationFlags.none(),
                occ_chunk=self.occ_chunk,
                secondary=self.secondary is not None,
            )
            return
        record_basic_traffic(
            counters,
            n_occ=n_occ,
            n_trials=stop - start,
            n_elts=self.n_elts,
            word=self.word_bytes,
        )


class ARAOptimizedKernel(_ARAKernelBase):
    """Implementation (iv): chunking + unrolling + float32 + registers."""

    name = "ara-optimized"
    registers_per_thread = OPTIMIZED_REGISTERS_PER_THREAD

    def __init__(
        self,
        yet: YearEventTable,
        lookups: Sequence[LossLookup],
        layer_terms: LayerTerms,
        out: np.ndarray,
        dtype: np.dtype,
        flags: OptimizationFlags,
        chunk_events: int = 24,
        kernel: str = "dense",
        stacked: StackedDirectTable | None = None,
        secondary: SecondaryUncertainty | None = None,
        secondary_stream_key: int = 0,
        occ_origin: int = 0,
        backend=None,
    ) -> None:
        super().__init__(
            yet,
            lookups,
            layer_terms,
            out,
            dtype,
            kernel=kernel,
            stacked=stacked,
            secondary=secondary,
            secondary_stream_key=secondary_stream_key,
            occ_origin=occ_origin,
            backend=backend,
        )
        if chunk_events < 1:
            raise ValueError(f"chunk_events must be >= 1, got {chunk_events}")
        self.flags = flags
        self.chunk_events = int(chunk_events)

    # -- resource footprint ------------------------------------------------
    @property
    def mlp(self) -> float:  # type: ignore[override]
        # Chunked prefetch keeps a whole chunk of independent loads in
        # flight per thread; without chunking loads serialise behind the
        # global intermediate updates.
        return optimized_mlp(self.flags, self.chunk_events)

    @property
    def barrier_intensity(self) -> float:  # type: ignore[override]
        # Chunk staging requires block-wide synchronisation per chunk.
        return optimized_barrier_intensity(self.flags)

    def shared_bytes_per_block(self, threads_per_block: int) -> int:
        return optimized_shared_bytes_per_block(
            threads_per_block, self.chunk_events, self.word_bytes, self.flags
        )

    # -- execution ----------------------------------------------------------
    def run_range(self, start: int, stop: int, counters: DeviceCounters) -> None:
        _, n_occ = self._compute_range(start, stop)
        if self.kernel == "ragged":
            record_ragged_traffic(
                counters,
                n_occ=n_occ,
                n_trials=stop - start,
                n_elts=self.n_elts,
                word=self.word_bytes,
                flags=self.flags,
                occ_chunk=self.occ_chunk,
                secondary=self.secondary is not None,
            )
            return
        record_optimized_traffic(
            counters,
            n_occ=n_occ,
            n_trials=stop - start,
            n_elts=self.n_elts,
            word=self.word_bytes,
            flags=self.flags,
            chunk_events=self.chunk_events,
        )


def modeled_activity_profile(
    counters: DeviceCounters, bandwidth_s: float, compute_s: float
) -> ActivityProfile:
    """Distribute modeled kernel seconds over the Figure 6 activities.

    Bandwidth-bound seconds are split proportionally to each activity's
    bytes moved; compute seconds proportionally to its flops.  This is the
    modeled analogue of the measured per-activity wall profile.
    """
    profile = ActivityProfile()
    total_bytes = sum(counters.activity_bytes.values())
    if total_bytes > 0:
        for activity, nbytes in counters.activity_bytes.items():
            profile.charge(activity, bandwidth_s * nbytes / total_bytes)
    total_flops = sum(counters.activity_flops.values())
    if total_flops > 0:
        for activity, flops in counters.activity_flops.items():
            profile.charge(activity, compute_s * flops / total_flops)
    return profile


def merge_meta_occupancy(meta: Dict, result) -> Dict:
    """Copy launch/occupancy details of a KernelResult into engine meta."""
    occ = result.cost.occupancy
    meta.update(
        {
            "threads_per_block": result.launch.threads_per_block,
            "n_blocks": result.launch.n_blocks,
            "blocks_per_sm": occ.blocks_per_sm,
            "occupancy": occ.occupancy,
            "limiting_resource": occ.limiting_resource,
            "concurrency_factor": result.cost.concurrency_factor,
            "memory_bound": result.cost.memory_bound,
        }
    )
    return meta
