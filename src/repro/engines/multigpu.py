"""(v) Multi-GPU engine — the paper's fastest implementation.

The optimised kernel decomposed over a pool of simulated Tesla M2090s:
the shared :class:`~repro.plan.planner.Planner` block-partitions the
trial space into one lane per device (equal trial counts, the paper's
rule, or equal occurrence counts with ``balance="events"``), each device
receives the full ELT tables plus its YET slice, and the
:class:`~repro.plan.scheduler.Scheduler` drives one *real* host thread
per device — the paper's "a thread on the CPU invokes and manages a GPU"
architecture.  Modeled time is the fork-join makespan: the slowest
device's staging + kernel + copy-back.

The default block size is 32 — the warp size — which the paper's Figure 4
finds optimal for this kernel: its deep chunking (``chunk_events=96``,
768 B of shared staging per thread) means a 64-thread block already
consumes the entire 48 KB shared memory of an SM, and beyond 64 threads
the launch is infeasible ("shared memory overflow").
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.core.secondary import layer_stream_key
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.engines.gpu_common import (
    ARAOptimizedKernel,
    OptimizationFlags,
    build_layer_tables,
    merge_meta_occupancy,
    modeled_activity_profile,
)
from repro.gpusim.device import DeviceSpec, TESLA_M2090
from repro.gpusim.kernel import GPUDevice, KernelResult
from repro.gpusim.multi import MultiGPU
from repro.plan.plan import ExecutionPlan, PlanTask
from repro.plan.planner import EngineCapabilities
from repro.plan.scheduler import Scheduler
from repro.plan.staging import (
    STAGING_OVERLAP,
    STAGING_SERIAL,
    TransferSchedule,
    check_staging,
    overlap_pipeline_seconds,
)
from repro.utils.timer import ACTIVITY_OTHER, ActivityProfile
from repro.utils.validation import check_positive


class MultiGPUEngine(Engine):
    """Optimised kernel over ``n_devices`` simulated GPUs.

    Parameters
    ----------
    n_devices:
        Pool size (the paper's platform has four M2090s).
    threads_per_block:
        Block size per device kernel (32 = warp size is the paper's and
        our optimum; Figure 4's sweep).
    chunk_events:
        Per-thread staging depth (96 events → 768 B/thread in float32,
        saturating shared memory at 64 threads/block).
    balance:
        Trial-partitioning strategy: ``"trials"`` (the paper's equal
        trial-count split) or ``"events"`` (equal occurrence counts — an
        extension that load-balances ragged YETs).  Resolved by the
        shared planner, the same rule the multicore engine's ragged
        path uses.
    staging:
        Table-broadcast schedule (modeled time only; functional results
        are identical either way).  ``"serial"`` (default) stages each
        layer's tables before its kernel, the paper's behaviour and the
        historically pinned modeled numbers.  ``"overlap"`` prices the
        :class:`~repro.plan.staging.TransferSchedule`: byte-identical
        table broadcasts are deduped across layers sharing ELTs, and
        each device streams layer ``i+1``'s tables while layer ``i``'s
        kernel runs (copy/compute overlap), never slower than serial.
    """

    name = "multi-gpu"

    def __init__(
        self,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        device_spec: DeviceSpec = TESLA_M2090,
        n_devices: int = 4,
        threads_per_block: int = 32,
        chunk_events: int = 96,
        flags: OptimizationFlags | None = None,
        batch_blocks: int = 2048,
        balance: str = "trials",
        kernel: str | None = None,
        secondary=None,
        secondary_seed=None,
        backend=None,
        staging: str = STAGING_SERIAL,
    ) -> None:
        super().__init__(
            lookup_kind=lookup_kind,
            dtype=dtype,
            kernel=kernel,
            secondary=secondary,
            secondary_seed=secondary_seed,
            backend=backend,
        )
        check_positive("n_devices", n_devices)
        check_positive("threads_per_block", threads_per_block)
        check_positive("chunk_events", chunk_events)
        if balance not in ("trials", "events"):
            raise ValueError(
                f"balance must be 'trials' or 'events', got {balance!r}"
            )
        self.device_spec = device_spec
        self.n_devices = int(n_devices)
        self.threads_per_block = int(threads_per_block)
        self.chunk_events = int(chunk_events)
        self.flags = flags if flags is not None else OptimizationFlags.all()
        self.batch_blocks = int(batch_blocks)
        self.balance = balance
        self.staging = check_staging(staging)

    @property
    def working_dtype(self) -> np.dtype:
        return np.dtype(np.float32) if self.flags.float32 else self.dtype

    def capabilities(self) -> EngineCapabilities:
        # One lane per device, one launch per (layer, device).
        return EngineCapabilities(
            engine=self.name,
            n_slots=self.n_devices,
            kernel=self.kernel,
            balance=self.balance,
            slot_batching="whole",
            dtype=self.working_dtype.str,
            secondary=self.secondary is not None,
        )

    def _execute(
        self,
        yet: YearEventTable,
        portfolio: Portfolio,
        catalog_size: int,
        plan: ExecutionPlan,
    ) -> tuple[YearLossTable, ActivityProfile, float | None, Dict[str, Any]]:
        pool = MultiGPU(self.n_devices, spec=self.device_spec)
        scheduler = Scheduler(max_workers=self.n_devices)
        dtype = self.working_dtype
        base_seed = self._secondary_base_seed()

        per_layer: Dict[int, np.ndarray] = {}
        profile = ActivityProfile()
        meta: Dict[str, Any] = {
            "device": self.device_spec.name,
            "n_devices": self.n_devices,
            "flags": self.flags.describe(),
            "chunk_events": self.chunk_events,
            "balance": plan.balance,
            "kernel": self.kernel,
            "secondary": self.secondary is not None,
            "staging": self.staging,
            "per_device": [],
        }
        modeled_total = 0.0
        overlap = self.staging == STAGING_OVERLAP
        schedule = TransferSchedule.for_portfolio(portfolio, dtype)
        if overlap:
            meta["transfer_schedule"] = schedule.summary()
        # Alloc name of the device-resident copy of each unique table
        # block (the first layer staging a key owns the allocation).
        table_names: Dict[Any, str] = {}
        # Per-device (stage, compute) legs per layer, for the pipelined
        # makespan under ``staging="overlap"``.
        stage_legs: List[List[float]] = [[] for _ in range(self.n_devices)]
        compute_legs: List[List[float]] = [[] for _ in range(self.n_devices)]

        for layer in portfolio.layers:
            # Every device needs the full ELT tables (lookups are not
            # partitionable by trial); tables are built once on the host
            # (through the shared cache) and conceptually broadcast to
            # each device.
            lookups, stacked, table_bytes = build_layer_tables(
                portfolio.elts_of(layer),
                catalog_size,
                self.lookup_kind,
                dtype,
                self.kernel,
            )
            out = np.empty(yet.n_trials, dtype=np.float64)
            fresh = schedule.is_fresh(layer.layer_id)
            table_key = (tuple(sorted(layer.elt_ids)), dtype.str)
            if fresh:
                table_names[table_key] = f"tables_layer{layer.layer_id}"
            table_name = table_names[table_key]

            def run_device(
                slot: int, tasks: List[PlanTask]
            ) -> tuple[KernelResult, float, float, PlanTask]:
                (task,) = tasks  # whole-lane plans: one launch per device
                device: GPUDevice = pool.devices[slot]
                sub_yet = yet.slice_trials(task.trial_start, task.trial_stop)
                stage_in = 0.0
                yet_bytes = sub_yet.n_occurrences * 4
                name = f"layer{layer.layer_id}"
                device.alloc(f"yet_{name}", yet_bytes)
                stage_in += device.transfers.h2d(yet_bytes, f"yet_{name}")
                alloc_name = table_name if overlap else f"tables_{name}"
                if not overlap or fresh:
                    # Serial mode restages every layer (the paper's
                    # behaviour); overlap mode broadcasts each unique
                    # table block once and keeps it device-resident.
                    device.alloc(alloc_name, table_bytes)
                    stage_in += device.transfers.h2d(table_bytes, alloc_name)
                out_bytes = sub_yet.n_trials * 8
                device.alloc(f"ylt_{name}", out_bytes)

                kernel = ARAOptimizedKernel(
                    yet=sub_yet,
                    lookups=lookups,
                    layer_terms=layer.terms,
                    out=out[task.trial_start : task.trial_stop],
                    dtype=dtype,
                    flags=self.flags,
                    chunk_events=self.chunk_events,
                    kernel=self.kernel,
                    stacked=stacked,
                    secondary=self.secondary,
                    secondary_stream_key=layer_stream_key(
                        base_seed, layer.layer_id
                    ),
                    # Global origin of this device's YET slice keeps
                    # the counter-based secondary draws identical for
                    # any device count.
                    occ_origin=task.occ_start,
                    backend=self.backend,
                )
                result = device.launch(
                    kernel,
                    n_threads_total=sub_yet.n_trials,
                    threads_per_block=self.threads_per_block,
                    batch_blocks=self.batch_blocks,
                )
                copy_back = device.transfers.d2h(out_bytes, f"ylt_{name}")
                device.free(f"yet_{name}")
                if not overlap:
                    device.free(alloc_name)
                device.free(f"ylt_{name}")
                return result, stage_in, copy_back, task

            # One real host thread per device (the paper's management
            # scheme); the scheduler joins and we take the makespan.
            outcomes = scheduler.run_layer(plan, layer.layer_id, run_device)
            per_device_seconds: List[float] = []
            for slot, (result, stage_in, copy_back, task) in outcomes:
                staging = stage_in + copy_back
                device_seconds = result.modeled_seconds + staging
                per_device_seconds.append(device_seconds)
                stage_legs[slot].append(stage_in)
                compute_legs[slot].append(result.modeled_seconds + copy_back)
                profile = profile.merged(
                    modeled_activity_profile(
                        result.counters,
                        result.cost.bandwidth_s,
                        result.cost.compute_s,
                    )
                )
                device_meta: Dict[str, Any] = {
                    "device_id": slot,
                    "layer_id": layer.layer_id,
                    "trials": (task.trial_start, task.trial_stop),
                    "staging_seconds": staging,
                    "kernel_seconds": result.modeled_seconds,
                }
                meta["per_device"].append(
                    merge_meta_occupancy(device_meta, result)
                )
            if not overlap:
                modeled_total += pool.modeled_makespan(per_device_seconds)
            per_layer[layer.layer_id] = out

        if overlap:
            # The pipelined makespan prices the whole layer sequence at
            # once per device (copy/compute overlap spans layer
            # boundaries), then the slowest device dominates.
            modeled_total = pool.modeled_makespan(
                [
                    overlap_pipeline_seconds(stage_legs[s], compute_legs[s])
                    for s in range(self.n_devices)
                ]
            )

        # Devices ran concurrently: the merged per-activity profile summed
        # device-seconds, so normalise it to the makespan for Figure 6.
        if profile.total > 0 and modeled_total > 0:
            profile = profile.scaled(modeled_total / profile.total)
        leftover = modeled_total - profile.total
        if leftover > 0:
            profile.charge(ACTIVITY_OTHER, leftover)
        return (
            YearLossTable.from_dict(per_layer),
            profile,
            modeled_total,
            meta,
        )
