"""Probable Maximum Loss (PML) — quantiles of the annual loss.

PML at a return period of N years is the loss exceeded with annual
probability 1/N, i.e. the (1 − 1/N)-quantile of the YLT's per-trial
losses.  It is the headline metric the paper names as a YLT product
(Section I, citing Woo and Wilkinson).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.ylt import YearLossTable
from repro.metrics.curves import quantile
from repro.utils.validation import check_in_range, check_positive

#: Return periods (years) conventionally quoted in cat-risk reporting.
STANDARD_RETURN_PERIODS = (10, 25, 50, 100, 250, 500, 1000)


def value_at_risk(annual_losses: np.ndarray, confidence: float) -> float:
    """VaR at ``confidence`` — the confidence-quantile of annual losses.

    ``value_at_risk(losses, 0.99)`` is the loss exceeded in only 1% of
    simulated years.
    """
    check_in_range("confidence", confidence, 0.0, 1.0)
    return quantile(annual_losses, confidence)


def pml(annual_losses: np.ndarray, return_period_years: float) -> float:
    """PML at a return period: VaR at confidence ``1 − 1/rp``.

    >>> import numpy as np
    >>> losses = np.arange(1.0, 101.0)  # 100 equally likely years
    >>> pml(losses, 100.0)
    100.0
    """
    check_positive("return_period_years", return_period_years)
    if return_period_years <= 1.0:
        raise ValueError(
            f"return period must exceed 1 year, got {return_period_years}"
        )
    return value_at_risk(annual_losses, 1.0 - 1.0 / return_period_years)


def pml_table(
    ylt: YearLossTable,
    layer_id: int | None = None,
    return_periods: Sequence[float] = STANDARD_RETURN_PERIODS,
) -> Dict[float, float]:
    """PML at each return period for one layer (or the whole portfolio).

    Return periods beyond the simulated trial count are reported against
    the maximum simulated loss (the empirical curve cannot resolve
    deeper) — callers wanting strictness should request periods within
    ``ylt.n_trials``.
    """
    series = (
        ylt.portfolio_losses() if layer_id is None else ylt.layer_losses(layer_id)
    )
    return {
        float(rp): pml(series, float(rp))
        for rp in return_periods
        if rp > 1.0
    }
