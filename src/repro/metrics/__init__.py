"""Portfolio risk metrics derived from Year Loss Tables.

The paper motivates aggregate risk analysis by the metrics an insurer
derives from the YLT (Section I): the Probable Maximum Loss (PML) and the
Tail Value-at-Risk (TVaR), used for internal risk management and
regulatory/rating-agency reporting.  This subpackage implements those and
the standard exceedance-probability curves they come from.
"""

from repro.metrics.curves import ExceedanceCurve, aep_curve, oep_curve
from repro.metrics.pml import pml, pml_table, value_at_risk
from repro.metrics.tvar import tail_value_at_risk, tvar_table
from repro.metrics.stats import ylt_summary
from repro.metrics.convergence import (
    convergence_table,
    pml_confidence_interval,
    pml_relative_error,
)

__all__ = [
    "ExceedanceCurve",
    "aep_curve",
    "oep_curve",
    "pml",
    "pml_table",
    "value_at_risk",
    "tail_value_at_risk",
    "tvar_table",
    "ylt_summary",
    "convergence_table",
    "pml_confidence_interval",
    "pml_relative_error",
]
