"""Exceedance-probability curves (EP curves) from trial losses.

An EP curve gives, for each loss threshold, the annual probability that
losses exceed it.  Two standard variants:

* **AEP** (aggregate exceedance probability) — thresholds against the
  *total annual* loss per trial: exactly what a YLT row contains.
* **OEP** (occurrence exceedance probability) — thresholds against the
  *largest single occurrence* loss per trial; computed from per-trial
  maxima which :func:`oep_curve` accepts.

Both are empirical survival functions over trials; with a million
pre-simulated trials (the paper's scale) the curves are smooth deep into
the tail, which is precisely why the YET methodology pre-simulates so
many years.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_in_range


@dataclass(frozen=True)
class ExceedanceCurve:
    """An empirical exceedance curve.

    Attributes
    ----------
    losses:
        Loss thresholds, strictly increasing (the sorted distinct trial
        losses).
    probabilities:
        ``P(annual loss > losses[i])``, non-increasing in ``i``.
    """

    losses: np.ndarray
    probabilities: np.ndarray

    def __post_init__(self) -> None:
        if self.losses.shape != self.probabilities.shape:
            raise ValueError("losses and probabilities must align")
        if self.losses.ndim != 1:
            raise ValueError("curve arrays must be 1-D")

    def probability_of_exceeding(self, threshold: float) -> float:
        """P(loss > threshold), stepwise from the empirical curve."""
        if self.losses.size == 0:
            return 0.0
        idx = int(np.searchsorted(self.losses, threshold, side="right")) - 1
        if idx < 0:
            # Threshold strictly below the smallest recorded loss: every
            # trial exceeds it.
            return 1.0
        return float(self.probabilities[idx])

    def loss_at_return_period(self, years: float) -> float:
        """Loss with annual exceedance probability ``1/years``.

        The "1-in-N-years" loss, the standard presentation of PML.
        """
        if years <= 1.0:
            raise ValueError(f"return period must exceed 1 year, got {years}")
        target = 1.0 / years
        # probabilities are non-increasing; find the smallest loss whose
        # exceedance probability is at or below the target ("the 1-in-N
        # loss is exceeded with probability 1/N").
        idx = np.searchsorted(self.probabilities[::-1], target, side="right")
        pos = self.probabilities.size - int(idx)
        if pos >= self.losses.size:
            return float(self.losses[-1])
        return float(self.losses[pos])

    @property
    def max_loss(self) -> float:
        return float(self.losses[-1]) if self.losses.size else 0.0


def _empirical_curve(per_trial_values: np.ndarray) -> ExceedanceCurve:
    values = np.asarray(per_trial_values, dtype=np.float64)
    if values.ndim != 1:
        raise ValueError(f"expected 1-D per-trial values, got {values.shape}")
    n = values.size
    if n == 0:
        return ExceedanceCurve(
            losses=np.empty(0), probabilities=np.empty(0)
        )
    sorted_losses, counts = np.unique(values, return_counts=True)
    # Trials strictly above each distinct loss value.
    above = n - np.cumsum(counts)
    return ExceedanceCurve(
        losses=sorted_losses, probabilities=above / n
    )


def aep_curve(annual_losses: np.ndarray) -> ExceedanceCurve:
    """Aggregate EP curve from a YLT loss row (per-trial annual losses)."""
    return _empirical_curve(annual_losses)


def oep_curve(max_occurrence_losses: np.ndarray) -> ExceedanceCurve:
    """Occurrence EP curve from per-trial maximum occurrence losses."""
    return _empirical_curve(max_occurrence_losses)


def exceedance_probability(
    annual_losses: np.ndarray, threshold: float
) -> float:
    """Direct P(annual loss > threshold) without building a curve."""
    losses = np.asarray(annual_losses, dtype=np.float64)
    if losses.size == 0:
        return 0.0
    return float((losses > threshold).mean())


def quantile(annual_losses: np.ndarray, q: float) -> float:
    """Empirical ``q``-quantile of annual losses (higher interpolation).

    The "higher" rule makes the quantile an actually attained trial loss,
    the convention used for regulatory VaR.
    """
    check_in_range("q", q, 0.0, 1.0)
    losses = np.asarray(annual_losses, dtype=np.float64)
    if losses.size == 0:
        raise ValueError("cannot take a quantile of zero trials")
    return float(np.quantile(losses, q, method="higher"))
