"""Tail Value-at-Risk (TVaR / expected shortfall).

TVaR at confidence ``q`` is the expected annual loss *given* that the
loss is at or above the ``q``-VaR — the coherent tail metric the paper
lists alongside PML (Section I, citing Gaivoronski & Pflug and
Glasserman et al.).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.data.ylt import YearLossTable
from repro.metrics.pml import value_at_risk
from repro.utils.validation import check_in_range

#: Confidence levels conventionally quoted for tail metrics.
STANDARD_CONFIDENCES = (0.90, 0.95, 0.99, 0.995, 0.999)


def tail_value_at_risk(annual_losses: np.ndarray, confidence: float) -> float:
    """Mean loss in the worst ``(1 − confidence)`` share of years.

    Always at least the VaR at the same confidence (property-tested), and
    equal to it only when the tail is flat.
    """
    check_in_range("confidence", confidence, 0.0, 1.0)
    losses = np.asarray(annual_losses, dtype=np.float64)
    if losses.size == 0:
        raise ValueError("cannot take TVaR of zero trials")
    var = value_at_risk(losses, confidence)
    tail = losses[losses >= var]
    # ``tail`` is non-empty: the "higher" quantile rule guarantees the
    # VaR itself is an attained loss.
    return float(tail.mean())


def tvar_table(
    ylt: YearLossTable,
    layer_id: int | None = None,
    confidences: Sequence[float] = STANDARD_CONFIDENCES,
) -> Dict[float, float]:
    """TVaR at each confidence for one layer (or the whole portfolio)."""
    series = (
        ylt.portfolio_losses() if layer_id is None else ylt.layer_losses(layer_id)
    )
    return {
        float(c): tail_value_at_risk(series, float(c)) for c in confidences
    }
