"""Summary statistics of a Year Loss Table."""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.data.ylt import YearLossTable
from repro.metrics.pml import pml
from repro.metrics.tvar import tail_value_at_risk


def ylt_summary(
    ylt: YearLossTable, layer_id: int | None = None
) -> Dict[str, Any]:
    """One-row summary of a YLT series for reports and examples.

    Includes the moments used for pricing (mean = pure premium, standard
    deviation for loading) plus tail landmarks (99% VaR/TVaR, 1-in-250
    PML) and the fraction of loss-free years.
    """
    series = (
        ylt.portfolio_losses() if layer_id is None else ylt.layer_losses(layer_id)
    )
    if series.size == 0:
        raise ValueError("empty YLT series")
    mean = float(series.mean())
    std = float(series.std(ddof=1)) if series.size > 1 else 0.0
    return {
        "n_trials": int(series.size),
        "mean": mean,
        "std": std,
        "cv": std / mean if mean > 0 else float("inf"),
        "min": float(series.min()),
        "max": float(series.max()),
        "median": float(np.median(series)),
        "zero_fraction": float((series == 0.0).mean()),
        "var_99": pml(series, 100.0),
        "tvar_99": tail_value_at_risk(series, 0.99),
        "pml_250": pml(series, 250.0) if series.size >= 250 else float(series.max()),
    }
