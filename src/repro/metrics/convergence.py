"""Convergence diagnostics: how many trials do the metrics need?

The YET methodology's premise is that a *large* pre-simulated trial set
(the paper: one million years) estimates tail metrics stably.  This
module quantifies that:

* :func:`pml_confidence_interval` — a distribution-free confidence
  interval for the PML at a return period, from the binomial
  distribution of the exceedance count over order statistics (the
  standard non-parametric quantile CI).
* :func:`convergence_table` — PML/TVaR estimates on nested subsamples of
  the trial set, showing the estimate settle as trials grow (the
  empirical argument for the paper's 1M-trial runs, and hence for the
  speed its GPU implementations deliver).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np
from scipy import stats

from repro.metrics.pml import pml
from repro.metrics.tvar import tail_value_at_risk
from repro.utils.rng import SeedLike, default_rng
from repro.utils.validation import check_in_range, check_positive


def pml_confidence_interval(
    annual_losses: np.ndarray,
    return_period_years: float,
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Distribution-free CI for the PML at a return period.

    The PML at return period ``T`` is the ``q = 1 − 1/T`` quantile.  With
    ``n`` i.i.d. trials, the number of losses at or below the true
    quantile is Binomial(n, q); inverting it gives order-statistic ranks
    whose values bracket the quantile with the requested coverage.
    """
    check_positive("return_period_years", return_period_years)
    if return_period_years <= 1.0:
        raise ValueError("return period must exceed 1 year")
    check_in_range("confidence", confidence, 0.0, 1.0, inclusive=False)
    losses = np.sort(np.asarray(annual_losses, dtype=np.float64))
    n = losses.size
    if n == 0:
        raise ValueError("cannot build a CI from zero trials")
    q = 1.0 - 1.0 / return_period_years
    alpha = 1.0 - confidence
    lo_rank = int(stats.binom.ppf(alpha / 2, n, q))
    hi_rank = int(stats.binom.ppf(1 - alpha / 2, n, q))
    lo_rank = min(max(lo_rank, 0), n - 1)
    hi_rank = min(max(hi_rank, lo_rank), n - 1)
    return float(losses[lo_rank]), float(losses[hi_rank])


def pml_relative_error(
    annual_losses: np.ndarray,
    return_period_years: float,
    confidence: float = 0.95,
) -> float:
    """Half-width of the PML CI relative to the point estimate.

    The single-number "is my trial set big enough?" diagnostic: e.g. a
    1-in-250 PML needs far more trials than a 1-in-10 PML for the same
    relative error.
    """
    estimate = pml(annual_losses, return_period_years)
    if estimate == 0.0:
        return 0.0
    lo, hi = pml_confidence_interval(
        annual_losses, return_period_years, confidence
    )
    return (hi - lo) / (2.0 * estimate)


def convergence_table(
    annual_losses: np.ndarray,
    return_period_years: float = 100.0,
    tvar_confidence: float = 0.99,
    fractions: Sequence[float] = (0.05, 0.1, 0.25, 0.5, 1.0),
    seed: SeedLike = 0,
) -> List[Dict[str, float]]:
    """PML and TVaR estimates on nested random subsamples of the trials.

    Rows carry the subsample size, the two tail estimates and the PML's
    relative CI half-width — the curve that flattens as the trial count
    approaches "enough".
    """
    losses = np.asarray(annual_losses, dtype=np.float64)
    if losses.size == 0:
        raise ValueError("empty loss series")
    rng = default_rng(seed)
    permuted = losses[rng.permutation(losses.size)]
    rows: List[Dict[str, float]] = []
    for fraction in fractions:
        check_in_range("fraction", fraction, 0.0, 1.0)
        # Floor at 2 (a 1-trial quantile is meaningless), but never past
        # the series itself: on tiny YLTs the floor used to exceed the
        # array, silently slicing fewer trials than the row reported.
        size = min(losses.size, max(2, int(round(losses.size * fraction))))
        sample = permuted[:size]
        if size < return_period_years:
            # Quantile beyond the sample's resolution: report the max and
            # flag the row as unresolved.
            rows.append(
                {
                    "n_trials": size,
                    "pml": float(sample.max()),
                    "tvar": float(sample.max()),
                    "pml_rel_error": float("nan"),
                    "resolved": 0.0,
                }
            )
            continue
        rows.append(
            {
                "n_trials": size,
                "pml": pml(sample, return_period_years),
                "tvar": tail_value_at_risk(sample, tvar_confidence),
                "pml_rel_error": pml_relative_error(
                    sample, return_period_years
                ),
                "resolved": 1.0,
            }
        )
    return rows
