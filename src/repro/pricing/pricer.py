"""Layer pricing from simulated year losses.

Standard property-cat pricing: the technical premium is the expected
annual loss (pure premium) plus a volatility loading proportional to the
standard deviation plus a cost-of-capital charge on the tail capital the
contract consumes — all three read directly off the YLT the analysis
produces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.layer import Layer
from repro.metrics.pml import value_at_risk
from repro.metrics.tvar import tail_value_at_risk
from repro.utils.validation import check_in_range, check_nonnegative


@dataclass(frozen=True)
class PricingAssumptions:
    """Loadings applied on top of the pure premium.

    Attributes
    ----------
    volatility_loading:
        Multiplier on the annual-loss standard deviation.
    capital_confidence:
        Confidence at which tail capital is measured (TVaR level).
    cost_of_capital:
        Annual charge per unit of tail capital allocated.
    expense_ratio:
        Share of the final premium consumed by expenses/brokerage; the
        technical premium is grossed up by ``1 / (1 - expense_ratio)``.
    """

    volatility_loading: float = 0.25
    capital_confidence: float = 0.99
    cost_of_capital: float = 0.06
    expense_ratio: float = 0.10

    def __post_init__(self) -> None:
        check_nonnegative("volatility_loading", self.volatility_loading)
        check_in_range("capital_confidence", self.capital_confidence, 0.0, 1.0)
        check_nonnegative("cost_of_capital", self.cost_of_capital)
        check_in_range("expense_ratio", self.expense_ratio, 0.0, 0.99)


@dataclass(frozen=True)
class LayerQuote:
    """A priced layer.

    ``rate_on_line`` is premium over occurrence limit — the market's
    standard normalised price of an XL layer (when the limit is finite).
    """

    layer_id: int
    expected_loss: float
    loss_std: float
    tail_capital: float
    technical_premium: float
    premium: float
    rate_on_line: float

    @property
    def loss_ratio(self) -> float:
        """Expected losses over premium (underwriting margin view)."""
        return self.expected_loss / self.premium if self.premium > 0 else 0.0


def price_layer(
    layer: Layer,
    annual_losses: np.ndarray,
    assumptions: PricingAssumptions | None = None,
) -> LayerQuote:
    """Price one layer from its simulated per-trial annual losses.

    Parameters
    ----------
    layer:
        The contract (used for its id and occurrence limit).
    annual_losses:
        The layer's YLT row (``ylt.layer_losses(layer.layer_id)``).
    assumptions:
        Loading parameters; defaults are market-plausible.
    """
    a = assumptions or PricingAssumptions()
    losses = np.asarray(annual_losses, dtype=np.float64)
    if losses.size == 0:
        raise ValueError("cannot price a layer with zero simulated trials")

    expected = float(losses.mean())
    std = float(losses.std(ddof=1)) if losses.size > 1 else 0.0
    tvar = tail_value_at_risk(losses, a.capital_confidence)
    # Capital consumed: tail expectation beyond the expected loss.
    tail_capital = max(tvar - expected, 0.0)

    technical = (
        expected
        + a.volatility_loading * std
        + a.cost_of_capital * tail_capital
    )
    premium = technical / (1.0 - a.expense_ratio)

    occ_limit = layer.terms.occ_limit
    rate_on_line = (
        premium / occ_limit
        if np.isfinite(occ_limit) and occ_limit > 0
        else float("nan")
    )

    return LayerQuote(
        layer_id=layer.layer_id,
        expected_loss=expected,
        loss_std=std,
        tail_capital=tail_capital,
        technical_premium=technical,
        premium=premium,
        rate_on_line=rate_on_line,
    )
