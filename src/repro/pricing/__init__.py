"""Reinsurance contract pricing on top of aggregate risk analysis.

The paper's headline use case is **real-time pricing** (its title result:
a 1M-trial analysis in under 5 seconds makes interactive quoting
feasible).  This subpackage implements the standard actuarial pricing
pipeline over YLTs — expected loss plus loadings — and the interactive
workflow: quote a candidate layer against a live portfolio by running the
analysis on demand.
"""

from repro.pricing.pricer import LayerQuote, PricingAssumptions, price_layer
from repro.pricing.realtime import (
    QuoteRecord,
    QuoteRequest,
    QuoteService,
    RealTimePricer,
)

__all__ = [
    "LayerQuote",
    "PricingAssumptions",
    "price_layer",
    "QuoteRecord",
    "QuoteRequest",
    "QuoteService",
    "RealTimePricer",
]
