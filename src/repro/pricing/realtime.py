"""Real-time pricing workflow: quote candidate layers interactively.

This is the scenario the paper's abstract sells: with the analysis at
seconds per million trials, an underwriter can tweak layer terms and
re-quote live.  :class:`RealTimePricer` holds the (expensive, reusable)
inputs — YET and ELT pool — and prices candidate layers on demand,
reusing the engine of choice for each quote.  It also computes the
*marginal* impact of adding the candidate to an existing portfolio, the
quantity an underwriter actually cares about.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

from repro.core.analysis import AggregateRiskAnalysis
from repro.data.elt import EventLossTable
from repro.data.layer import Layer, LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.metrics.tvar import tail_value_at_risk
from repro.pricing.pricer import LayerQuote, PricingAssumptions, price_layer


@dataclass
class QuoteRecord:
    """One interactive quote: the price plus how long it took."""

    quote: LayerQuote
    analysis_seconds: float
    engine: str
    marginal_tvar: float | None = None
    meta: Dict[str, Any] = field(default_factory=dict)


class RealTimePricer:
    """Interactive layer-quoting session over a fixed YET and ELT pool.

    Parameters
    ----------
    yet:
        The pre-simulated trial database (shared by all quotes).
    elts:
        The ELT pool candidate layers may reference.
    catalog_size:
        Event-id address space.
    engine:
        Engine used per quote (``"multicore"`` default: the fastest
        *measured* engine in this container).
    book:
        Optional existing portfolio for marginal-impact quoting.
    """

    def __init__(
        self,
        yet: YearEventTable,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        engine: str = "multicore",
        book: Portfolio | None = None,
        assumptions: PricingAssumptions | None = None,
        **engine_options: Any,
    ) -> None:
        self.yet = yet
        self.elts = {elt.elt_id: elt for elt in elts}
        if len(self.elts) != len(elts):
            raise ValueError("duplicate ELT ids in pool")
        self.catalog_size = int(catalog_size)
        self.engine = engine
        self.engine_options = engine_options
        self.assumptions = assumptions or PricingAssumptions()
        self.book = book
        self.history: List[QuoteRecord] = []
        self._book_tvar: float | None = None

    # ------------------------------------------------------------------
    def _book_tail(self, confidence: float) -> float:
        """Tail capital of the existing book (computed once, cached)."""
        if self.book is None:
            return 0.0
        if self._book_tvar is None:
            self._book_tvar = tail_value_at_risk(
                self._book_portfolio_losses(), confidence
            )
        return self._book_tvar

    def quote(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
    ) -> QuoteRecord:
        """Price a candidate layer; returns the quote and its latency.

        The analysis runs only for the candidate layer (the book's tail is
        cached), so quote latency is one single-layer analysis — the
        real-time quantity the paper optimises.
        """
        for elt_id in elt_ids:
            if elt_id not in self.elts:
                raise KeyError(f"unknown ELT id {elt_id}")
        candidate = Layer(layer_id=layer_id, elt_ids=tuple(elt_ids), terms=terms)
        portfolio = Portfolio()
        for elt_id in candidate.elt_ids:
            portfolio.add_elt(self.elts[elt_id])
        portfolio.add_layer(candidate)

        started = time.perf_counter()
        ara = AggregateRiskAnalysis(portfolio, self.catalog_size)
        result = ara.run(self.yet, engine=self.engine, **self.engine_options)
        elapsed = time.perf_counter() - started

        losses = result.ylt.layer_losses(layer_id)
        quote = price_layer(candidate, losses, self.assumptions)

        marginal: float | None = None
        if self.book is not None:
            confidence = self.assumptions.capital_confidence
            book_tail = self._book_tail(confidence)
            combined = tail_value_at_risk(
                losses
                + self._book_portfolio_losses(),
                confidence,
            )
            marginal = combined - book_tail

        record = QuoteRecord(
            quote=quote,
            analysis_seconds=elapsed,
            engine=self.engine,
            marginal_tvar=marginal,
            meta={"n_trials": self.yet.n_trials, "n_elts": len(elt_ids)},
        )
        self.history.append(record)
        return record

    # cached book losses for marginal metrics
    _book_losses = None

    def _book_portfolio_losses(self):
        if self.book is None:
            raise RuntimeError("no book portfolio configured")
        if self._book_losses is None:
            ara = AggregateRiskAnalysis(self.book, self.catalog_size)
            result = ara.run(self.yet, engine=self.engine, **self.engine_options)
            self._book_losses = result.ylt.portfolio_losses()
        return self._book_losses

    @property
    def mean_quote_seconds(self) -> float:
        """Average quote latency over the session (real-time-ness KPI)."""
        if not self.history:
            return 0.0
        return sum(r.analysis_seconds for r in self.history) / len(self.history)
