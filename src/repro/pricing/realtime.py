"""Real-time pricing: from one-at-a-time quotes to a concurrent service.

This is the scenario the paper's abstract sells: with the analysis at
seconds per million trials, an underwriter can tweak layer terms and
re-quote live.  Two workflows live here:

* :class:`RealTimePricer` — the original interactive session: each
  ``quote()`` runs one full engine analysis for the candidate layer.
  Simple, engine-agnostic, and the measured *baseline* of the
  ``PLAN-ABLATE`` benchmark.
* :class:`QuoteService` — the concurrent quote service built on the
  plan layer.  It accepts many candidate layers at once
  (:meth:`QuoteService.quote_many`, :meth:`QuoteService.quote_async`),
  schedules quote tasks on a shared worker pool, and dedupes work
  across in-flight quotes through a plan-level
  :class:`~repro.plan.cache.PlanResultCache`:

  - lookup tables are shared via the process-wide
    :class:`~repro.lookup.factory.LookupCache` (as everywhere);
  - the *combined per-occurrence loss vector* — the expensive
    gather + financial-terms prefix of Algorithm 1, which depends on
    the ELT set but **not** on the candidate's layer terms — is
    computed once per (ELT set, YET, secondary stream) and reused by
    every candidate over that set, including marginal re-quotes
    against the book's already-computed segments;
  - finished per-candidate year-loss vectors are cached too, so
    re-quoting an unchanged structure is a pure cache hit.

  Quotes are **bit-for-bit identical** to a sequential-engine run of the
  same candidate: the cached vector is decomposition-invariant (tasks
  are keyed by global occurrence index) and the finish is exactly the
  fused kernel's layer-terms pass.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.analysis import AggregateRiskAnalysis
from repro.core.kernels import (
    KERNEL_RAGGED,
    build_layer_tables,
    combined_occurrence_losses,
    finish_layer_losses,
)
from repro.core.secondary import layer_stream_key, resolve_secondary_seed
from repro.data.elt import EventLossTable
from repro.data.layer import Layer, LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.metrics.tvar import tail_value_at_risk
from repro.plan.cache import (
    PlanResultCache,
    elt_set_fingerprint,
    yet_fingerprint,
)
from repro.plan.planner import EngineCapabilities, Planner
from repro.plan.scheduler import Scheduler
from repro.pricing.pricer import LayerQuote, PricingAssumptions, price_layer
from repro.utils.bufpool import ScratchBufferPool
from repro.utils.parallel import available_cpu_count
from repro.utils.retry import Deadline


@dataclass
class QuoteRecord:
    """One quote: the price plus how long it took (and where it came from)."""

    quote: LayerQuote
    analysis_seconds: float
    engine: str
    marginal_tvar: float | None = None
    meta: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class QuoteRequest:
    """One candidate layer to quote: covered ELTs plus contract terms."""

    elt_ids: Tuple[int, ...]
    terms: LayerTerms
    layer_id: int = 9999
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "elt_ids", tuple(int(e) for e in self.elt_ids)
        )


class _PricingSessionBase:
    """Shared state of the pricing workflows: YET, ELT pool, book."""

    def __init__(
        self,
        yet: YearEventTable,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        book: Portfolio | None = None,
        assumptions: PricingAssumptions | None = None,
    ) -> None:
        self.yet = yet
        self.elts = {elt.elt_id: elt for elt in elts}
        if len(self.elts) != len(elts):
            raise ValueError("duplicate ELT ids in pool")
        self.catalog_size = int(catalog_size)
        self.assumptions = assumptions or PricingAssumptions()
        self.book = book
        self.history: List[QuoteRecord] = []

    def _resolve_elts(self, elt_ids: Sequence[int]) -> List[EventLossTable]:
        for elt_id in elt_ids:
            if elt_id not in self.elts:
                raise KeyError(f"unknown ELT id {elt_id}")
        return [self.elts[int(e)] for e in elt_ids]

    @property
    def mean_quote_seconds(self) -> float:
        """Average quote latency over the session (real-time-ness KPI)."""
        if not self.history:
            return 0.0
        return sum(r.analysis_seconds for r in self.history) / len(self.history)


class RealTimePricer(_PricingSessionBase):
    """Interactive layer-quoting session over a fixed YET and ELT pool.

    Each quote is one full engine analysis of the candidate layer — the
    paper's real-time quantity, and the sequential baseline the
    ``PLAN-ABLATE`` benchmark compares :class:`QuoteService` against.

    Parameters
    ----------
    yet:
        The pre-simulated trial database (shared by all quotes).
    elts:
        The ELT pool candidate layers may reference.
    catalog_size:
        Event-id address space.
    engine:
        Engine used per quote (``"multicore"`` default: the fastest
        *measured* engine in this container).
    book:
        Optional existing portfolio for marginal-impact quoting.
    """

    def __init__(
        self,
        yet: YearEventTable,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        engine: str = "multicore",
        book: Portfolio | None = None,
        assumptions: PricingAssumptions | None = None,
        **engine_options: Any,
    ) -> None:
        super().__init__(
            yet, elts, catalog_size, book=book, assumptions=assumptions
        )
        self.engine = engine
        self.engine_options = engine_options
        self._book_tvar: float | None = None
        self._book_losses = None

    # ------------------------------------------------------------------
    def _book_tail(self, confidence: float) -> float:
        """Tail capital of the existing book (computed once, cached)."""
        if self.book is None:
            return 0.0
        if self._book_tvar is None:
            self._book_tvar = tail_value_at_risk(
                self._book_portfolio_losses(), confidence
            )
        return self._book_tvar

    def quote(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
    ) -> QuoteRecord:
        """Price a candidate layer; returns the quote and its latency.

        The analysis runs only for the candidate layer (the book's tail is
        cached), so quote latency is one single-layer analysis — the
        real-time quantity the paper optimises.
        """
        candidate = Layer(
            layer_id=layer_id,
            elt_ids=tuple(int(e) for e in elt_ids),
            terms=terms,
        )
        portfolio = Portfolio()
        for elt in self._resolve_elts(candidate.elt_ids):
            portfolio.add_elt(elt)
        portfolio.add_layer(candidate)

        started = time.perf_counter()
        ara = AggregateRiskAnalysis(portfolio, self.catalog_size)
        result = ara.run(self.yet, engine=self.engine, **self.engine_options)
        elapsed = time.perf_counter() - started

        losses = result.ylt.layer_losses(layer_id)
        quote = price_layer(candidate, losses, self.assumptions)

        marginal: float | None = None
        if self.book is not None:
            confidence = self.assumptions.capital_confidence
            book_tail = self._book_tail(confidence)
            combined = tail_value_at_risk(
                losses + self._book_portfolio_losses(), confidence
            )
            marginal = combined - book_tail

        record = QuoteRecord(
            quote=quote,
            analysis_seconds=elapsed,
            engine=self.engine,
            marginal_tvar=marginal,
            meta={"n_trials": self.yet.n_trials, "n_elts": len(elt_ids)},
        )
        self.history.append(record)
        return record

    def _book_portfolio_losses(self):
        if self.book is None:
            raise RuntimeError("no book portfolio configured")
        if self._book_losses is None:
            ara = AggregateRiskAnalysis(self.book, self.catalog_size)
            result = ara.run(self.yet, engine=self.engine, **self.engine_options)
            self._book_losses = result.ylt.portfolio_losses()
        return self._book_losses


class QuoteService(_PricingSessionBase):
    """Concurrent quote service: many candidate layers, shared work.

    Parameters
    ----------
    yet, elts, catalog_size, book, assumptions:
        As for :class:`RealTimePricer`.
    max_workers:
        Width of the quote worker pool *and* of the plan used to compute
        base vectors (defaults to the machine's usable CPU count).
        Results are bit-for-bit identical for any value.
    lookup_kind, dtype:
        Lookup representation and working precision of the analysis
        (the fused ragged kernel path; defaults match the engines').
    secondary, secondary_seed:
        Optional secondary uncertainty; draws are keyed by the candidate
        ``layer_id``'s stream and the global occurrence index, exactly
        like the engines, so seeded service quotes equal seeded engine
        runs.  (Candidates with different ``layer_id`` draw independent
        streams and therefore cannot share a base vector.)
    backend:
        Kernel backend the base-vector gather dispatches through (a
        registry name, instance, or None for the
        ``REPRO_KERNEL_BACKEND``-then-numpy default).  Excluded from
        every cache key — backends are held to the numpy oracle's
        results, so quotes are interchangeable across backends.
    cache_size:
        LRU capacity of the base-vector cache (entries are one word per
        YET occurrence each); the finished-loss cache holds
        ``4 * cache_size`` vectors of one float64 per trial.  Both
        caches are hard-bounded — eviction counts appear in
        :meth:`cache_stats`.
    store:
        Optional :class:`~repro.store.base.ResultStore` backing both
        caches (e.g. :func:`repro.store.default_store`).  Base combined
        occurrence-loss vectors and finished year-loss vectors are then
        content-addressed and durable: they survive process restarts,
        are shared by every worker process pointing at the same cache
        directory, and LRU eviction costs a re-read instead of a
        re-compute.
    """

    def __init__(
        self,
        yet: YearEventTable,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        book: Portfolio | None = None,
        assumptions: PricingAssumptions | None = None,
        max_workers: int | None = None,
        lookup_kind: str = "direct",
        dtype: np.dtype | type = np.float64,
        secondary=None,
        secondary_seed=None,
        backend=None,
        cache_size: int = 16,
        store=None,
    ) -> None:
        super().__init__(
            yet, elts, catalog_size, book=book, assumptions=assumptions
        )
        if max_workers is None:
            self.max_workers = available_cpu_count()
        else:
            self.max_workers = int(max_workers)
        if self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.lookup_kind = lookup_kind
        self.dtype = np.dtype(dtype)
        # Kernel backend for the base-vector gather (never part of
        # cache keys: backends are pinned to the oracle's results).
        self.backend = backend
        self.secondary = secondary
        self._secondary_base_seed = (
            resolve_secondary_seed(secondary_seed)
            if secondary is not None
            else 0
        )
        self._yet_fp = yet_fingerprint(yet)
        self.store = store
        self._base_cache = PlanResultCache(
            maxsize=cache_size, store=store, namespace="quote-base"
        )
        self._loss_cache = PlanResultCache(
            maxsize=4 * cache_size, store=store, namespace="quote-losses"
        )
        self._scheduler = Scheduler(max_workers=self.max_workers)
        self._planner = Planner()
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._book_tvar: float | None = None
        self._book_losses: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _pool_executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="quote-service",
                )
            return self._executor

    def close(self) -> None:
        """Shut the quote worker pool down (idempotent)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "QuoteService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def backend_name(self) -> str:
        """Resolved kernel-backend name quotes dispatch to."""
        from repro.backends import active_backend_name

        return active_backend_name(self.backend)

    def _stream_key(self, layer_id: int) -> int:
        if self.secondary is None:
            return 0
        return layer_stream_key(self._secondary_base_seed, int(layer_id))

    def _base_key(self, elts: Sequence[EventLossTable], stream_key: int):
        return (
            "base",
            elt_set_fingerprint(elts),
            self._yet_fp,
            self.dtype.str,
            self.lookup_kind,
            stream_key if self.secondary is not None else None,
        )

    # ------------------------------------------------------------------
    # The shared base vector (steps 1–2 of Algorithm 1)
    # ------------------------------------------------------------------
    def _base_vector(
        self,
        elts: Sequence[EventLossTable],
        stream_key: int,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Combined per-occurrence losses for an ELT set (cached).

        Computed as a plan: the planner lays the YET onto
        ``max_workers`` event-balanced lanes of autotuned batch tasks,
        and the scheduler runs the lanes concurrently, each task filling
        its global occurrence range of the shared vector.  Concurrent
        quotes over the same ELT set join the in-flight computation
        instead of repeating it.
        """
        key = self._base_key(elts, stream_key)
        return self._base_cache.get_or_compute(
            key,
            lambda: self._compute_base(list(elts), stream_key),
            deadline=deadline,
        )

    def _compute_base(
        self, elts: List[EventLossTable], stream_key: int
    ) -> np.ndarray:
        lookups, stacked, _ = build_layer_tables(
            elts, self.catalog_size, self.lookup_kind, self.dtype,
            KERNEL_RAGGED,
        )
        probe = Portfolio.single_layer(elts)
        caps = EngineCapabilities(
            engine="quote-service",
            n_slots=self.max_workers,
            kernel=KERNEL_RAGGED,
            dtype=self.dtype.str,
            secondary=self.secondary is not None,
        )
        plan = self._planner.plan(self.yet, probe, caps)
        base = np.empty(self.yet.n_occurrences, dtype=self.dtype)

        def run_slot(slot: int, tasks) -> None:
            pool = ScratchBufferPool()
            for task in tasks:
                ids, _offs = self.yet.csr_block(
                    task.trial_start, task.trial_stop
                )
                combined_occurrence_losses(
                    ids,
                    lookups,
                    stacked=stacked,
                    dtype=self.dtype,
                    out=base[task.occ_start : task.occ_stop],
                    pool=pool,
                    secondary=self.secondary,
                    stream_key=stream_key,
                    occ_base=task.occ_start,
                    backend=self.backend,
                )

        self._scheduler.run_layer(plan, probe.layers[0].layer_id, run_slot)
        base.flags.writeable = False  # cached: shared across quotes
        return base

    # ------------------------------------------------------------------
    # Candidate losses (steps 3–4 against the cached base)
    # ------------------------------------------------------------------
    def _losses_for(
        self,
        elts: Sequence[EventLossTable],
        terms: LayerTerms,
        stream_key: int,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Cached year losses for (ELT set, layer terms, stream)."""
        key = ("losses", self._base_key(elts, stream_key), terms.as_tuple())

        def compute() -> np.ndarray:
            base = self._base_vector(elts, stream_key, deadline=deadline)
            scratch = base.copy()  # finish mutates (occurrence clamp)
            year = finish_layer_losses(scratch, self.yet.offsets, terms)
            year.flags.writeable = False
            return year

        return self._loss_cache.get_or_compute(
            key, compute, deadline=deadline
        )

    def candidate_losses(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
        deadline: Deadline | None = None,
    ) -> np.ndarray:
        """Per-trial year losses of a candidate layer (cached, frozen).

        Bit-for-bit what a sequential-engine run of the same
        single-layer portfolio produces.  ``deadline`` propagates the
        caller's end-to-end budget into the cache waits and store
        fetches below; expired work raises the typed
        :class:`~repro.utils.retry.DeadlineExceeded` instead of
        computing.
        """
        return self._losses_for(
            self._resolve_elts(elt_ids),
            terms,
            self._stream_key(layer_id),
            deadline=deadline,
        )

    # ------------------------------------------------------------------
    # Book (marginal quoting)
    # ------------------------------------------------------------------
    def _book_portfolio_losses(self) -> np.ndarray:
        if self.book is None:
            raise RuntimeError("no book portfolio configured")
        with self._lock:
            cached = self._book_losses
        if cached is not None:
            return cached
        # Memoised like RealTimePricer's book losses: the book is fixed
        # for the session, so the per-layer sum (and, transitively, the
        # book's base/loss cache entries) is paid once, not per quote —
        # and cannot be LRU-evicted out from under a many-layer book.
        total = np.zeros(self.yet.n_trials, dtype=np.float64)
        for layer in self.book.layers:
            total += self._losses_for(
                self.book.elts_of(layer),
                layer.terms,
                self._stream_key(layer.layer_id),
            )
        total.flags.writeable = False
        with self._lock:
            if self._book_losses is None:
                self._book_losses = total
            return self._book_losses

    def _book_tail(self, confidence: float) -> float:
        if self.book is None:
            return 0.0
        with self._lock:
            cached = self._book_tvar
        if cached is not None:
            return cached
        value = tail_value_at_risk(self._book_portfolio_losses(), confidence)
        with self._lock:
            self._book_tvar = value
        return value

    # ------------------------------------------------------------------
    # Quoting
    # ------------------------------------------------------------------
    def quote(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
        deadline: Deadline | None = None,
    ) -> QuoteRecord:
        """Price one candidate layer through the shared caches."""
        request = QuoteRequest(
            elt_ids=tuple(elt_ids), terms=terms, layer_id=layer_id
        )
        return self._quote_one(request, deadline=deadline)

    def quote_async(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
        deadline: Deadline | None = None,
    ) -> "Future[QuoteRecord]":
        """Schedule a quote on the worker pool; returns a future.

        Concurrent quotes sharing an ELT set dedupe their base pass
        through the in-flight cache — N marginal re-quotes cost one
        expensive pass plus N cheap finishes.

        ``deadline`` rides along to the worker thread: a request whose
        budget expires while still queued behind busy lanes is
        abandoned (typed ``DeadlineExceeded`` on the future) *before*
        any kernel work runs.
        """
        request = QuoteRequest(
            elt_ids=tuple(elt_ids), terms=terms, layer_id=layer_id
        )
        return self._pool_executor().submit(
            self._quote_one, request, deadline
        )

    def quote_many(
        self, requests: Iterable[QuoteRequest | Tuple],
    ) -> List[QuoteRecord]:
        """Quote a batch of candidate layers concurrently.

        ``requests`` are :class:`QuoteRequest` objects or
        ``(elt_ids, terms)`` / ``(elt_ids, terms, layer_id)`` tuples.
        Returns records in request order.  This is the service's
        headline path: the batch shares lookup tables, base vectors and
        in-flight computations, so quoting N structures over one ELT
        set costs one gather+financial pass and N layer-term finishes.
        """
        normalised: List[QuoteRequest] = []
        for req in requests:
            if isinstance(req, QuoteRequest):
                normalised.append(req)
            else:
                normalised.append(QuoteRequest(*req))
        if not normalised:
            return []
        executor = self._pool_executor()
        futures = [executor.submit(self._quote_one, r) for r in normalised]
        return [future.result() for future in futures]

    def _quote_one(
        self,
        request: QuoteRequest,
        deadline: Deadline | None = None,
    ) -> QuoteRecord:
        if deadline is not None:
            # Expired while queued: cancelled, never computed.
            deadline.check(f"quote of {request.label or request.elt_ids}")
        candidate = Layer(
            layer_id=request.layer_id,
            elt_ids=request.elt_ids,
            terms=request.terms,
        )
        elts = self._resolve_elts(request.elt_ids)
        stream_key = self._stream_key(request.layer_id)
        cached = (
            self._loss_cache.peek(
                (
                    "losses",
                    self._base_key(elts, stream_key),
                    request.terms.as_tuple(),
                )
            )
            is not None
        )

        started = time.perf_counter()
        losses = self.candidate_losses(
            request.elt_ids,
            request.terms,
            layer_id=request.layer_id,
            deadline=deadline,
        )
        quote = price_layer(candidate, losses, self.assumptions)
        marginal: float | None = None
        if self.book is not None:
            confidence = self.assumptions.capital_confidence
            book_tail = self._book_tail(confidence)
            combined = tail_value_at_risk(
                losses + self._book_portfolio_losses(), confidence
            )
            marginal = combined - book_tail
        elapsed = time.perf_counter() - started

        record = QuoteRecord(
            quote=quote,
            analysis_seconds=elapsed,
            engine="quote-service",
            marginal_tvar=marginal,
            meta={
                "n_trials": self.yet.n_trials,
                "n_elts": len(request.elt_ids),
                "label": request.label,
                "cached": cached,
            },
        )
        with self._lock:
            self.history.append(record)
        return record

    # ------------------------------------------------------------------
    # Fleet offload: ride the shared job queue
    # ------------------------------------------------------------------
    def loss_store_key(
        self,
        elt_ids: Sequence[int],
        terms: LayerTerms,
        layer_id: int = 9999,
    ) -> str:
        """The durable store key of a candidate's finished year losses.

        This is the address the loss cache writes through to when a
        ``store=`` is configured — and the content-addressed identity
        fleet quote jobs carry, so any worker process sharing the store
        can compute a candidate on this service's behalf.
        """
        elts = self._resolve_elts(elt_ids)
        stream_key = self._stream_key(layer_id)
        return self._loss_cache.store_key(
            ("losses", self._base_key(elts, stream_key), terms.as_tuple())
        )

    def enqueue_quotes(
        self,
        queue,
        requests: Iterable[QuoteRequest | Tuple],
        workload_spec=None,
        sweep_id: str | None = None,
    ):
        """Offload a batch of candidates to fleet workers.

        Store-aware like segment submission: candidates whose finished
        loss vectors are already persisted are skipped (``reused``),
        the rest become ``"quote"`` jobs on ``queue`` (a
        :class:`~repro.fleet.jobs.JobQueue`).  Once workers drain the
        sweep, :meth:`quote_many` over the same requests is pure store
        hits — pricing happens locally against worker-computed vectors,
        bit-for-bit what this service would have computed itself.

        Requires this service to be store-backed; ``workload_spec``
        embeds the seeded workload recipe so external ``repro-fleet
        worker`` processes can rebuild the ELT pool (in-process workers
        take the registered context instead).  Returns a
        :class:`~repro.fleet.sweep.SweepTicket`-style summary dict.
        """
        if self.store is None:
            raise ValueError(
                "enqueue_quotes needs a store-backed QuoteService "
                "(store=...): workers deliver results through the store"
            )
        from repro.fleet.context import fleet_config, spec_dict
        from repro.fleet.jobs import JOB_KIND_QUOTE, FleetJob
        from repro.store.keys import fingerprint_digest

        normalised: List[QuoteRequest] = []
        for req in requests:
            normalised.append(
                req if isinstance(req, QuoteRequest) else QuoteRequest(*req)
            )
        keys = [
            self.loss_store_key(r.elt_ids, r.terms, r.layer_id)
            for r in normalised
        ]
        if sweep_id is None:
            sweep_id = "quotes-" + fingerprint_digest(
                "quote-sweep", tuple(keys)
            )[:16]
        manifest = {
            "sweep_id": sweep_id,
            "kind": "quotes",
            "config": fleet_config(
                KERNEL_RAGGED,
                self.dtype,
                self.lookup_kind,
                self.catalog_size,
                self.secondary,
                self._secondary_base_seed,
            ),
            "workload": (
                {"spec": spec_dict(workload_spec)}
                if workload_spec is not None
                else {}
            ),
            "requests": [
                {
                    "elt_ids": list(r.elt_ids),
                    "terms": list(r.terms.as_tuple()),
                    "layer_id": r.layer_id,
                }
                for r in normalised
            ],
        }
        queue.save_sweep(sweep_id, manifest)
        jobs = []
        reused = 0
        for index, (request, key) in enumerate(zip(normalised, keys)):
            if self.store.contains(key):
                reused += 1
                continue
            jobs.append(
                FleetJob(
                    job_id=f"{sweep_id}.q{index:06d}",
                    sweep_id=sweep_id,
                    kind=JOB_KIND_QUOTE,
                    key=key,
                    payload={
                        "elt_ids": list(request.elt_ids),
                        "terms": list(request.terms.as_tuple()),
                        "layer_id": request.layer_id,
                    },
                )
            )
        submitted = queue.submit(jobs)
        return {
            "sweep_id": sweep_id,
            "n_requests": len(normalised),
            "submitted": submitted,
            "reused": reused,
            "keys": keys,
        }

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/eviction counters of the plan-level result caches
        (plus the backing store's, when one is configured)."""
        stats = {
            "base": self._base_cache.stats(),
            "losses": self._loss_cache.stats(),
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats
