"""One entry point per paper table/figure (the DESIGN.md experiment index).

Every function returns an :class:`~repro.bench.runner.ExperimentReport`
whose rows interleave three sources:

* ``paper_*`` columns — the published numbers (Section IV/V, Figures 1–6);
* ``model_*`` columns — the analytic model at full paper scale;
* ``measured_*`` columns — the real engines on a scaled-down workload
  (CPU engines: wall seconds; GPU engines: the gpusim-modeled seconds of
  the actually-executed simulated kernels, with wall seconds as sanity).

``measured_spec`` defaults keep each experiment inside a few seconds so
the whole suite can run in CI; pass ``BENCH_DEFAULT``/``BENCH_LARGE`` for
tighter measured statistics.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.bench.runner import ExperimentReport, get_workload, measure_engine
from repro.data.presets import BENCH_SMALL, PAPER, WorkloadSpec
from repro.engines.gpu_common import (
    OptimizationFlags,
    max_feasible_threads_per_block,
)
from repro.gpusim.device import TESLA_C2075, TESLA_M2090
from repro.lookup.factory import LOOKUP_KINDS, build_lookup, memory_report
from repro.perfmodel.activities import activity_breakdown_table, predict_all
from repro.perfmodel.calibration import (
    PAPER_FIG1B,
    PAPER_FIG5_SECONDS,
    PAPER_MULTICORE_SPEEDUPS,
    PAPER_MULTIGPU,
    PAPER_SEQ_BREAKDOWN,
)
from repro.perfmodel.cpu import (
    predict_multicore,
    predict_multicore_oversubscribed,
    predict_sequential,
)
from repro.perfmodel.gpu import predict_gpu_basic, predict_gpu_optimized
from repro.perfmodel.multigpu import predict_multi_gpu, scaling_curve
from repro.utils.rng import default_rng
from repro.utils.timer import ACTIVITIES

#: default measured workload — small enough for CI, same shape as PAPER
DEFAULT_MEASURED = BENCH_SMALL

#: kernel used by the paper-figure experiments' *measured* rows.  Their
#: model_* columns price the paper's padded dense CUDA/CPU kernels, so
#: measurements must run the same ledger; the KERNEL-ABLATE pair is
#: where the fused ragged kernel (the engine default) is compared.
PAPER_KERNEL = "dense"


# ----------------------------------------------------------------------
# SEQ-SCALE: linear scaling of the sequential implementation (§IV.A)
# ----------------------------------------------------------------------
def seq_scaling(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED, measure: bool = True
) -> ExperimentReport:
    """Runtime vs each workload dimension; the paper reports linearity."""
    report = ExperimentReport(
        exp_id="SEQ-SCALE",
        title="Sequential runtime scaling in trials/events/ELTs/layers",
    )
    dimensions = {
        "n_trials": lambda s, f: s.with_(n_trials=max(1, int(s.n_trials * f))),
        "events_per_trial": lambda s, f: s.with_(
            events_per_trial=max(1, int(s.events_per_trial * f))
        ),
        "elts_per_layer": lambda s, f: s.with_(
            elts_per_layer=max(1, int(s.elts_per_layer * f))
        ),
        "n_layers": lambda s, f: s.with_(n_layers=max(1, int(s.n_layers * f))),
    }
    for dim, make in dimensions.items():
        for factor in (1.0, 2.0, 4.0):
            spec = make(measured_spec, factor) if factor != 1.0 else measured_spec
            # n_layers scaling needs >1 layer to be visible.
            if dim == "n_layers" and factor > 1.0:
                spec = measured_spec.with_(n_layers=int(factor))
            model = predict_sequential(spec)
            row = {
                "dimension": dim,
                "factor": factor,
                "model_seconds": model.total_seconds,
            }
            if measure:
                result = measure_engine(spec, "sequential", kernel=PAPER_KERNEL)
                row["measured_seconds"] = result.wall_seconds
            report.add(**row)
    report.note(
        "model_seconds scale exactly linearly per dimension (the paper's "
        "§IV.A observation); measured_seconds track within benchmarking "
        "noise and fixed overheads."
    )
    report.note(
        f"paper sequential breakdown at full scale: "
        f"{PAPER_SEQ_BREAKDOWN['total']} s total, "
        f"{PAPER_SEQ_BREAKDOWN['loss_lookup']} s (66%) lookup, "
        f"{PAPER_SEQ_BREAKDOWN['financial_and_layer']} s (31%) numeric."
    )
    return report


# ----------------------------------------------------------------------
# FIG-1a: multicore cores sweep
# ----------------------------------------------------------------------
def fig1a(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    core_counts: Sequence[int] = (1, 2, 4, 8),
) -> ExperimentReport:
    """Figure 1a: execution time vs number of CPU cores."""
    report = ExperimentReport(
        exp_id="FIG-1a", title="Multicore CPU: cores vs execution time"
    )
    seq_model = predict_sequential(PAPER).total_seconds
    measured_base = None
    for n in core_counts:
        model = predict_multicore(PAPER, n_cores=n)
        row = {
            "n_cores": n,
            "paper_speedup": PAPER_MULTICORE_SPEEDUPS.get(n),
            "model_paper_seconds": model.total_seconds,
            "model_speedup": seq_model / model.total_seconds,
        }
        if measure:
            result = measure_engine(
                measured_spec, "multicore", n_cores=n, kernel=PAPER_KERNEL
            )
            if measured_base is None:
                measured_base = result.wall_seconds
            row["measured_seconds"] = result.wall_seconds
            row["measured_speedup"] = measured_base / result.wall_seconds
        report.add(**row)
    report.note(
        "shape: sub-linear speedup saturating by 8 cores (memory-bandwidth "
        "bound random lookups) — paper: 1.5x/2.2x/2.6x at 2/4/8 cores."
    )
    return report


# ----------------------------------------------------------------------
# FIG-1b: oversubscription sweep
# ----------------------------------------------------------------------
def fig1b(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    threads_per_core: Sequence[int] = (1, 4, 16, 64, 256),
    n_cores: int = 8,
) -> ExperimentReport:
    """Figure 1b: 8-core runtime vs threads per core."""
    report = ExperimentReport(
        exp_id="FIG-1b",
        title="Multicore CPU: total threads vs execution time (8 cores)",
    )
    for t in threads_per_core:
        model = predict_multicore_oversubscribed(
            PAPER, threads_per_core=t, n_cores=n_cores
        )
        row = {
            "threads_per_core": t,
            "total_threads": n_cores * t,
            "model_paper_seconds": model.total_seconds,
        }
        if measure:
            result = measure_engine(
                measured_spec,
                "multicore",
                n_cores=n_cores,
                threads_per_core=t,
                kernel=PAPER_KERNEL,
            )
            row["measured_seconds"] = result.wall_seconds
        report.add(**row)
    report.note(
        f"paper endpoints: {PAPER_FIG1B['threads_per_core_1']} s at 1 "
        f"thread/core -> {PAPER_FIG1B['threads_per_core_256']} s at 256 "
        "(diminishing returns); the model reproduces the saturating drop."
    )
    return report


# ----------------------------------------------------------------------
# FIG-2: GPU threads-per-block sweep (basic kernel)
# ----------------------------------------------------------------------
def fig2(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    block_sizes: Sequence[int] = (128, 256, 384, 512, 640),
) -> ExperimentReport:
    """Figure 2: basic GPU kernel, threads per block vs time."""
    report = ExperimentReport(
        exp_id="FIG-2",
        title="Basic GPU kernel: threads per block vs execution time",
    )
    for tpb in block_sizes:
        model = predict_gpu_basic(PAPER, threads_per_block=tpb)
        row = {
            "threads_per_block": tpb,
            "model_paper_seconds": model.total_seconds,
            "occupancy": model.meta["occupancy"],
        }
        if measure:
            result = measure_engine(
                measured_spec, "gpu", threads_per_block=tpb, kernel=PAPER_KERNEL
            )
            row["sim_modeled_seconds"] = result.modeled_seconds
        report.add(**row)
    report.note(
        "shape: 128 threads/block measurably slower (under-occupied SMs); "
        "best from 256 with flat/diminishing returns beyond — matches the "
        "paper's reading of Figure 2."
    )
    return report


# ----------------------------------------------------------------------
# FIG-3: multi-GPU scaling and efficiency
# ----------------------------------------------------------------------
def fig3(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    device_counts: Sequence[int] = (1, 2, 3, 4),
) -> ExperimentReport:
    """Figures 3a/3b: execution time and efficiency vs number of GPUs."""
    report = ExperimentReport(
        exp_id="FIG-3", title="Multiple GPUs: time (3a) and efficiency (3b)"
    )
    curve = scaling_curve(PAPER, device_counts=list(device_counts))
    measured_base = None
    for row_model in curve:
        n = int(row_model["n_gpus"])
        row = {
            "n_gpus": n,
            "model_paper_seconds": row_model["seconds"],
            "model_efficiency": row_model["efficiency"],
        }
        if measure:
            result = measure_engine(
                measured_spec, "multi-gpu", n_devices=n, kernel=PAPER_KERNEL
            )
            if measured_base is None:
                measured_base = result.modeled_seconds
            row["sim_modeled_seconds"] = result.modeled_seconds
            row["sim_efficiency"] = measured_base / (
                n * result.modeled_seconds
            )
        report.add(**row)
    report.note(
        f"paper: 4.35 s on 4 GPUs, ~4x over one GPU, ~100% efficiency; "
        f"model: {curve[-1]['seconds']:.2f} s, "
        f"{curve[-1]['efficiency']*100:.1f}% efficiency."
    )
    report.note(
        f"paper single-GPU (M2090) lookup time "
        f"{PAPER_MULTIGPU['single_gpu_lookup_seconds']} s drops to "
        f"{PAPER_MULTIGPU['lookup_seconds']} s on four."
    )
    return report


# ----------------------------------------------------------------------
# FIG-4: multi-GPU threads-per-block sweep (optimised kernel)
# ----------------------------------------------------------------------
def fig4(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    block_sizes: Sequence[int] = (16, 32, 48, 64, 96),
) -> ExperimentReport:
    """Figure 4: four GPUs, threads per block vs time (optimised kernel)."""
    report = ExperimentReport(
        exp_id="FIG-4",
        title="Four GPUs, optimised kernel: threads per block vs time",
    )
    for tpb in block_sizes:
        row = {"threads_per_block": tpb}
        try:
            model = predict_multi_gpu(PAPER, threads_per_block=tpb)
            row["model_paper_seconds"] = model.total_seconds
            row["blocks_per_sm"] = model.meta["blocks_per_sm"]
            row["feasible"] = True
        except ValueError:
            row["model_paper_seconds"] = None
            row["feasible"] = False
        if measure and row["feasible"]:
            result = measure_engine(
                measured_spec,
                "multi-gpu",
                threads_per_block=tpb,
                kernel=PAPER_KERNEL,
            )
            row["sim_modeled_seconds"] = result.modeled_seconds
        report.add(**row)
    report.note(
        "shape: best at 32 threads/block (the warp size: whole blocks swap "
        "on latency stalls); 16 wastes warp lanes; >64 infeasible — shared "
        "memory overflow, the paper's stated reason the sweep stops at 64."
    )
    return report


# ----------------------------------------------------------------------
# FIG-5: the headline summary across all five implementations
# ----------------------------------------------------------------------
def fig5(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED, measure: bool = True
) -> ExperimentReport:
    """Figure 5: average total seconds for implementations (i)-(v)."""
    report = ExperimentReport(
        exp_id="FIG-5",
        title="Total execution time of all five implementations",
    )
    predictions = predict_all(PAPER)
    seq_paper = PAPER_FIG5_SECONDS["sequential"]
    seq_model = predictions["sequential"].total_seconds
    measured_wall_seq = None
    for name, prediction in predictions.items():
        row = {
            "implementation": name,
            "paper_seconds": PAPER_FIG5_SECONDS[name],
            "paper_speedup": seq_paper / PAPER_FIG5_SECONDS[name],
            "model_paper_seconds": prediction.total_seconds,
            "model_speedup": seq_model / prediction.total_seconds,
        }
        if measure:
            result = measure_engine(measured_spec, name, kernel=PAPER_KERNEL)
            if result.modeled_seconds is None:
                # CPU engines: real wall seconds, comparable to each other.
                row["measured_wall_seconds"] = result.wall_seconds
                if name == "sequential":
                    measured_wall_seq = result.wall_seconds
                if measured_wall_seq:
                    row["measured_wall_speedup"] = (
                        measured_wall_seq / result.wall_seconds
                    )
            else:
                # GPU engines: gpusim-modeled seconds of the executed
                # simulated kernels (not comparable with wall seconds).
                row["sim_modeled_seconds"] = result.modeled_seconds
        report.add(**row)
    report.note(
        "paper headline: 77x multi-GPU over sequential CPU; model: "
        f"{seq_model / predictions['multi-gpu'].total_seconds:.0f}x."
    )
    report.note(
        "measured CPU rows are wall seconds in this container (thread "
        "overheads dominate on tiny workloads — use --scale default/large "
        "for representative multicore speedups); GPU rows report the "
        "gpusim-modeled seconds of actually-executed simulated kernels."
    )
    return report


# ----------------------------------------------------------------------
# FIG-6: per-activity breakdown
# ----------------------------------------------------------------------
def fig6(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED, measure: bool = True
) -> ExperimentReport:
    """Figure 6: percentage of time per activity per implementation."""
    report = ExperimentReport(
        exp_id="FIG-6",
        title="Share of time per activity (fetch/lookup/financial/layer)",
    )
    for row_model in activity_breakdown_table(PAPER):
        report.add(source="model-paper", **row_model)
    if measure:
        for name in ("sequential", "multicore", "gpu", "gpu-optimized", "multi-gpu"):
            result = measure_engine(measured_spec, name, kernel=PAPER_KERNEL)
            fractions = result.profile.fractions()
            row = {
                "source": "measured",
                "implementation": name,
                "total": result.profile.total,
            }
            for activity in ACTIVITIES:
                row[activity] = result.profile.seconds.get(activity, 0.0)
                row[f"{activity}_pct"] = 100.0 * fractions.get(activity, 0.0)
            report.add(**row)
    report.note(
        "paper landmarks: sequential lookup 222.61 s (~66%); multi-GPU "
        f"lookup {PAPER_MULTIGPU['lookup_seconds']} s = "
        f"{PAPER_MULTIGPU['lookup_fraction']*100:.2f}% of total; terms "
        f"drop to {PAPER_MULTIGPU['terms_seconds']} s."
    )
    return report


# ----------------------------------------------------------------------
# DS-TABLE: lookup data-structure trade-off (§III)
# ----------------------------------------------------------------------
def data_structures(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    n_queries: int = 200_000,
) -> ExperimentReport:
    """Direct access table vs compact representations (memory & speed)."""
    report = ExperimentReport(
        exp_id="DS-TABLE",
        title="ELT lookup structures: memory vs accesses vs throughput",
    )
    workload = get_workload(measured_spec)
    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)
    rng = default_rng(1234)
    queries = rng.integers(
        1, workload.catalog.n_events + 1, size=n_queries
    ).astype(np.int64)

    memory_rows = {
        row["kind"]: row
        for row in memory_report(elts, workload.catalog.n_events)
    }
    for kind in LOOKUP_KINDS:
        row = {
            "kind": kind,
            "total_bytes": memory_rows[kind]["total_bytes"],
            "accesses_per_lookup": memory_rows[kind]["accesses_per_lookup"],
        }
        if measure:
            lookup = build_lookup(
                elts[0], workload.catalog.n_events, kind=kind
            )
            started = time.perf_counter()
            lookup.lookup(queries)
            elapsed = time.perf_counter() - started
            row["measured_ns_per_lookup"] = 1e9 * elapsed / n_queries
        report.add(**row)
    report.note(
        "the paper's §III argument quantified: the direct table spends "
        "the most memory and the fewest accesses; at paper scale its 15 "
        "ELTs materialise 30M loss slots for 300K non-zero losses."
    )
    report.note(
        "combined-table variant (the paper's second implementation) loses "
        "because threads must stage row indices first — charged as shared-"
        "memory coordination traffic in the GPU cost model."
    )
    return report


# ----------------------------------------------------------------------
# OPT-ABLATE: the four GPU optimisations, cumulatively
# ----------------------------------------------------------------------
def opt_ablation(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    chunk_events: int = 24,
) -> ExperimentReport:
    """Ablation of chunking / unrolling / float32 / registers."""
    report = ExperimentReport(
        exp_id="OPT-ABLATE",
        title="GPU optimisation ablation (cumulative flags)",
    )
    stages = [
        ("none", OptimizationFlags.none()),
        ("chunking", OptimizationFlags(True, False, False, False)),
        ("chunking+unroll", OptimizationFlags(True, True, False, False)),
        ("chunking+unroll+float32", OptimizationFlags(True, True, True, False)),
        ("all four", OptimizationFlags.all()),
    ]
    device = TESLA_C2075
    for label, flags in stages:
        word = 4 if flags.float32 else 8
        if flags.chunking:
            tpb = max_feasible_threads_per_block(
                device.shared_mem_per_sm_bytes, chunk_events, word, flags
            )
        else:
            tpb = 256
        model = predict_gpu_optimized(
            PAPER, threads_per_block=tpb, chunk_events=chunk_events, flags=flags
        )
        row = {
            "flags": label,
            "threads_per_block": tpb,
            "model_paper_seconds": model.total_seconds,
        }
        if measure:
            # Pinned to the dense kernel: this experiment reproduces the
            # paper's ablation of its padded CUDA kernel, which is what
            # the analytic model prices.
            result = measure_engine(
                measured_spec,
                "gpu-optimized",
                threads_per_block=tpb,
                chunk_events=chunk_events,
                flags=flags,
                kernel="dense",
            )
            row["sim_modeled_seconds"] = result.modeled_seconds
        report.add(**row)
    basic = predict_gpu_basic(PAPER).total_seconds
    all_on = report.rows[-1]["model_paper_seconds"]
    report.note(
        f"paper: optimisations take the GPU from 38.47 s to 20.63 s "
        f"(~1.9x); model: {basic:.2f} s -> {all_on:.2f} s "
        f"({basic / all_on:.2f}x), dominated by chunking — consistent with "
        "the paper's remark that the GPU's numerical speed contributed "
        "'surprisingly little'."
    )
    return report


# ----------------------------------------------------------------------
# KERNEL-ABLATE: dense padded kernel vs fused ragged CSR kernel
# ----------------------------------------------------------------------
def kernel_ablation(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    repeats: int = 5,
) -> ExperimentReport:
    """Fused ragged CSR kernel vs the legacy dense padded kernel."""
    from repro.core.kernels import dense_intermediate_bytes, run_ragged
    from repro.core.vectorized import run_vectorized
    from repro.utils.bufpool import ScratchBufferPool

    report = ExperimentReport(
        exp_id="KERNEL-ABLATE",
        title="Kernel path ablation: dense padded vs fused ragged CSR",
    )
    if measure:
        workload = get_workload(measured_spec)
        yet, portfolio = workload.yet, workload.portfolio
        catalog = workload.catalog.n_events
        for dtype_label, dtype in (("float64", np.float64), ("float32", np.float32)):
            itemsize = np.dtype(dtype).itemsize
            for kernel in ("dense", "ragged"):
                pool = ScratchBufferPool()

                def run_once() -> None:
                    if kernel == "dense":
                        run_vectorized(yet, portfolio, catalog, dtype=dtype)
                    else:
                        run_ragged(yet, portfolio, catalog, dtype=dtype, pool=pool)

                run_once()  # warm the lookup cache and the scratch pool
                best = min(_timed_seconds(run_once) for _ in range(max(1, repeats)))
                if kernel == "dense":
                    # Analytic: the dense path's intermediates are untracked
                    # allocator churn, estimated at its documented peak.
                    peak = dense_intermediate_bytes(
                        yet.n_trials, yet.max_events_per_trial, itemsize
                    )
                else:
                    peak = pool.peak_bytes
                report.add(
                    kernel=kernel,
                    dtype=dtype_label,
                    measured_seconds=best,
                    lookups_per_second=measured_spec.n_lookups / best,
                    peak_intermediate_bytes=peak,
                )
        by_key = {(r["kernel"], r["dtype"]): r for r in report.rows}
        for dtype_label in ("float64", "float32"):
            dense_row = by_key[("dense", dtype_label)]
            ragged_row = by_key[("ragged", dtype_label)]
            report.note(
                f"{dtype_label}: ragged is "
                f"{dense_row['measured_seconds'] / ragged_row['measured_seconds']:.2f}x "
                f"faster than dense with "
                f"{dense_row['peak_intermediate_bytes'] / max(1, ragged_row['peak_intermediate_bytes']):.2f}x "
                "less peak intermediate memory."
            )
    report.note(
        "the ragged path never materialises a (trials, events) dense "
        "block: one stacked gather per occurrence chunk, in-place terms "
        "in pooled scratch, np.add.reduceat over the CSR offsets."
    )
    return report


def _timed_seconds(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started


# ----------------------------------------------------------------------
# KERNEL-ABLATE-SECONDARY: secondary uncertainty, dense vs fused ragged
# ----------------------------------------------------------------------
def kernel_ablation_secondary(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED,
    measure: bool = True,
    repeats: int = 5,
) -> ExperimentReport:
    """Secondary-uncertainty kernels: dense rejection-sampled vs fused.

    The dense path draws ``rng.beta`` per padded (occurrence, ELT) slot;
    the fused ragged path samples counter-based inverse-transform
    multipliers directly into pooled scratch inside the stacked-gather
    chunk.  Same Beta damage-ratio model, same mean-1 guarantee — the
    ablation quantifies the sampling formulation's speedup and the
    memory-footprint gap.
    """
    from repro.core.kernels import dense_intermediate_bytes, run_ragged
    from repro.core.secondary import SecondaryUncertainty
    from repro.core.vectorized import run_vectorized
    from repro.utils.bufpool import ScratchBufferPool

    report = ExperimentReport(
        exp_id="KERNEL-ABLATE-SECONDARY",
        title="Secondary-uncertainty kernel ablation: dense vs fused ragged",
    )
    if measure:
        workload = get_workload(measured_spec)
        yet, portfolio = workload.yet, workload.portfolio
        catalog = workload.catalog.n_events
        su = SecondaryUncertainty(4.0, 4.0)
        for dtype_label, dtype in (("float64", np.float64), ("float32", np.float32)):
            itemsize = np.dtype(dtype).itemsize
            for kernel in ("dense", "ragged"):
                pool = ScratchBufferPool()

                def run_once() -> None:
                    if kernel == "dense":
                        run_vectorized(
                            yet,
                            portfolio,
                            catalog,
                            dtype=dtype,
                            secondary=su,
                            secondary_seed=42,
                        )
                    else:
                        run_ragged(
                            yet,
                            portfolio,
                            catalog,
                            dtype=dtype,
                            pool=pool,
                            secondary=su,
                            secondary_seed=42,
                        )

                run_once()  # warm lookup cache, scratch pool, quantile table
                best = min(_timed_seconds(run_once) for _ in range(max(1, repeats)))
                if kernel == "dense":
                    peak = dense_intermediate_bytes(
                        yet.n_trials,
                        yet.max_events_per_trial,
                        itemsize,
                        secondary=True,
                    )
                else:
                    peak = pool.peak_bytes
                report.add(
                    kernel=kernel,
                    dtype=dtype_label,
                    measured_seconds=best,
                    lookups_per_second=measured_spec.n_lookups / best,
                    peak_intermediate_bytes=peak,
                )
        by_key = {(r["kernel"], r["dtype"]): r for r in report.rows}
        for dtype_label in ("float64", "float32"):
            dense_row = by_key[("dense", dtype_label)]
            ragged_row = by_key[("ragged", dtype_label)]
            report.note(
                f"{dtype_label}: fused ragged secondary is "
                f"{dense_row['measured_seconds'] / ragged_row['measured_seconds']:.2f}x "
                f"faster than dense secondary with "
                f"{dense_row['peak_intermediate_bytes'] / max(1, ragged_row['peak_intermediate_bytes']):.2f}x "
                "less peak intermediate memory."
            )
    report.note(
        "the fused path replaces per-slot Beta rejection sampling with "
        "one Philox uniform + quantile-table read per (occurrence, ELT) "
        "pair, sampled into pooled scratch beside the gathered block; "
        "draws are keyed by global occurrence index, so results are "
        "invariant to batching and engine decomposition."
    )
    report.note(
        "chunk geometry follows this host's detected L2 budget "
        "(override with REPRO_L2_CACHE_BYTES); the CI artifact in "
        "benchmarks/BENCH_kernels.json pins 1 MiB for cross-machine "
        "comparability, so its absolute numbers can differ from this "
        "report's."
    )
    return report


def quote_bench_spec() -> WorkloadSpec:
    """The pricing-session workload of PLAN-ABLATE / REPLAY-ABLATE.

    Paper-shaped: enough ELTs per layer that the shared
    gather+financial pass dominates a quote, as at paper scale
    (15 ELTs/layer), while staying CI-sized.
    """
    return BENCH_SMALL.with_(
        n_trials=10_000, events_per_trial=80, elts_per_layer=12
    )


def quote_candidates(workload, n_candidates: int) -> list:
    """Deterministic candidate layers over the workload's first ELT set.

    Shared by the quote benchmarks *and* the REPLAY-ABLATE child
    process: because terms derive only from the (seeded) workload, a
    separate process regenerating the same spec produces byte-identical
    candidates — and therefore identical content-addressed store keys.
    """
    from repro.data.layer import LayerTerms

    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)
    elt_ids = tuple(elt.elt_id for elt in elts)
    typical = float(np.mean([float(elt.losses.mean()) for elt in elts]))
    return [
        (
            elt_ids,
            LayerTerms(
                occ_retention=0.4 * k * typical,
                occ_limit=(4.0 + k) * typical,
                agg_retention=0.0,
                agg_limit=(12.0 + 2.0 * k) * typical,
            ),
        )
        for k in range(n_candidates)
    ]


# ----------------------------------------------------------------------
# PLAN-ABLATE: batched QuoteService vs sequential per-quote analyses
# ----------------------------------------------------------------------
def plan_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    n_candidates: int = 8,
    repeats: int = 3,
    worker_counts: Sequence[int] = (1, 2, 8),
) -> ExperimentReport:
    """Quote a batch of candidate layers: plan-level sharing vs re-runs.

    The sequential baseline is the legacy workflow — one
    :class:`~repro.pricing.realtime.RealTimePricer` engine analysis per
    candidate (lookup *tables* already shared through the process-wide
    cache).  The batched rows run the same candidates through a
    :class:`~repro.pricing.realtime.QuoteService`, which additionally
    shares the combined per-occurrence loss vector across the batch: one
    gather+financial pass per ELT set, one cheap layer-terms finish per
    candidate.  Quotes are bit-for-bit identical either way; the ratio
    is pure plan-level reuse.  Worker counts sweep the scheduler's
    concurrency — results are invariant, only latency moves.
    """
    from repro.pricing.realtime import QuoteService, RealTimePricer

    report = ExperimentReport(
        exp_id="PLAN-ABLATE",
        title="Concurrent quote service: shared-plan reuse vs per-quote runs",
    )
    if measured_spec is None:
        measured_spec = quote_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    yet = workload.yet
    catalog_size = workload.catalog.n_events
    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)
    elt_ids = tuple(elt.elt_id for elt in elts)
    candidates = quote_candidates(workload, n_candidates)

    # Warm the process-wide lookup cache so neither side pays the build.
    RealTimePricer(yet, elts, catalog_size, engine="sequential").quote(
        elt_ids=elt_ids, terms=candidates[0][1]
    )

    def run_sequential() -> None:
        pricer = RealTimePricer(yet, elts, catalog_size, engine="sequential")
        for ids, terms in candidates:
            pricer.quote(elt_ids=ids, terms=terms)

    sequential_s = min(
        _timed_seconds(run_sequential) for _ in range(max(1, repeats))
    )
    report.add(
        mode="sequential",
        workers=1,
        n_candidates=n_candidates,
        measured_seconds=sequential_s,
        per_quote_seconds=sequential_s / n_candidates,
        speedup_vs_sequential=1.0,
    )

    for workers in worker_counts:
        stats = {}

        def run_batched() -> None:
            # A fresh service per run: every repeat pays the full cold
            # base pass, so the ratio is honest (no warm-cache credit).
            with QuoteService(
                yet, elts, catalog_size, max_workers=workers
            ) as service:
                service.quote_many(candidates)
                stats.update(service.cache_stats())

        batched_s = min(
            _timed_seconds(run_batched) for _ in range(max(1, repeats))
        )
        report.add(
            mode="quote-service",
            workers=workers,
            n_candidates=n_candidates,
            measured_seconds=batched_s,
            per_quote_seconds=batched_s / n_candidates,
            speedup_vs_sequential=sequential_s / batched_s,
            base_cache=dict(stats.get("base", {})),
        )

    best = max(
        (r for r in report.rows if r["mode"] == "quote-service"),
        key=lambda r: r["speedup_vs_sequential"],
    )
    report.note(
        f"batched quoting of {n_candidates} candidates sharing one "
        f"{len(elt_ids)}-ELT set: best {best['speedup_vs_sequential']:.2f}x "
        f"over sequential re-quoting (at {best['workers']} workers) — one "
        "gather+financial pass reused by every candidate's layer-terms "
        "finish."
    )
    report.note(
        "quotes are bit-for-bit identical to per-candidate sequential "
        "engine runs: the shared base vector is decomposition-invariant "
        "and the finish is the fused kernel's own layer-terms pass."
    )
    return report


# ----------------------------------------------------------------------
# REPLAY-ABLATE: persistent result store — cold runs vs warm replays
# ----------------------------------------------------------------------
def warm_quote_store(params: dict) -> None:
    """Child-process entry point of REPLAY-ABLATE's cross-process row.

    Regenerates the (seeded, deterministic) quote workload from the
    spec fields the parent passed, opens a
    :class:`~repro.store.SharedFileStore` on the parent's cache
    directory and quotes the first ``n_candidates`` candidates — which
    persists the shared base combined-loss vector (and those
    candidates' finished year losses) under content-addressed keys the
    parent process derives identically.
    """
    from repro.pricing.realtime import QuoteService
    from repro.store import SharedFileStore

    spec = WorkloadSpec(**params["spec"])
    workload = get_workload(spec)
    candidates = quote_candidates(workload, int(params.get("n_candidates", 1)))
    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)
    store = SharedFileStore(params["cache_dir"])
    with QuoteService(
        workload.yet,
        elts,
        workload.catalog.n_events,
        max_workers=1,
        store=store,
    ) as service:
        service.quote_many(candidates)


def _spawn_quote_warmer(
    cache_dir, spec: WorkloadSpec, n_candidates: int = 1
) -> None:
    """Run :func:`warm_quote_store` in a separate Python process."""
    import dataclasses
    import json
    import os
    import subprocess
    import sys
    from pathlib import Path

    import repro

    code = (
        "import sys, json\n"
        "from repro.bench.experiments import warm_quote_store\n"
        "warm_quote_store(json.loads(sys.argv[1]))\n"
    )
    params = {
        "cache_dir": str(cache_dir),
        "n_candidates": n_candidates,
        "spec": dataclasses.asdict(spec),
    }
    env = dict(os.environ)
    src_dir = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code, json.dumps(params)],
        capture_output=True,
        text=True,
        env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"quote-warmer child failed ({proc.returncode}):\n{proc.stderr}"
        )


def replay_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    repeats: int = 3,
    n_candidates: int = 8,
    cache_dir=None,
) -> ExperimentReport:
    """Plan persistence & replay: the result store's reuse, measured.

    Three comparisons on one seeded workload:

    * **cold** — a full sequential-engine analysis against an empty
      store (the store's write-through cost is charged here);
    * **warm-memory / warm-file** — the identical analysis replayed
      from the memory tier and, with a fresh process-simulating store,
      from the file tier (``meta.json`` parse + mmap + checksum); both
      must return the stored YLT bit-for-bit with zero engine task
      executions;
    * **quote-cold / quote-warm-xproc / quote-replay** — a batch of
      candidate layers quoted by a storeless service vs a fresh service
      whose :class:`~repro.store.SharedFileStore` was warmed by a
      *separate process* (the many-worker serving shape: the expensive
      base pass happens once per fleet, not once per process), then the
      steady state where the whole batch replays from the store.
    """
    import tempfile
    from pathlib import Path

    from repro.core.analysis import AggregateRiskAnalysis
    from repro.engines.base import execution_count
    from repro.pricing.realtime import QuoteService
    from repro.store import (
        MemoryStore,
        SharedFileStore,
        TieredStore,
        ylt_digest,
    )

    report = ExperimentReport(
        exp_id="REPLAY-ABLATE",
        title="Result-store replay: cold analysis vs warm (memory/file/fleet)",
    )
    if measured_spec is None:
        measured_spec = quote_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    owner = None
    if cache_dir is None:
        owner = tempfile.TemporaryDirectory(prefix="repro-replay-")
        cache_dir = owner.name
    cache_dir = Path(cache_dir)
    analysis_dir = cache_dir / "analysis"
    quote_dir = cache_dir / "quotes"
    try:
        workload = get_workload(measured_spec)
        yet = workload.yet
        catalog_size = workload.catalog.n_events
        ara = AggregateRiskAnalysis(workload.portfolio, catalog_size)

        # -- cold: empty store every repeat (includes the write-through)
        cold_s = float("inf")
        cold_result = None
        for _ in range(max(1, repeats)):
            SharedFileStore(analysis_dir).clear()
            store = TieredStore([MemoryStore(), SharedFileStore(analysis_dir)])
            started = time.perf_counter()
            cold_result = ara.run(yet, engine="sequential", store=store)
            cold_s = min(cold_s, time.perf_counter() - started)
        cold_digest = ylt_digest(cold_result.ylt)
        report.add(
            mode="cold",
            engine="sequential",
            measured_seconds=cold_s,
            speedup_vs_cold=1.0,
            ylt_digest=cold_digest,
        )

        # -- warm-memory: one persistent store, replay from the LRU tier
        warm_store = TieredStore([MemoryStore(), SharedFileStore(analysis_dir)])
        ara.run(yet, engine="sequential", store=warm_store)  # prime memory
        executions_before = execution_count()
        warm_mem_s = float("inf")
        warm_result = None
        for _ in range(max(1, repeats)):
            started = time.perf_counter()
            warm_result = ara.run(yet, engine="sequential", store=warm_store)
            warm_mem_s = min(warm_mem_s, time.perf_counter() - started)
        report.add(
            mode="warm-memory",
            engine="sequential",
            measured_seconds=warm_mem_s,
            speedup_vs_cold=cold_s / warm_mem_s,
            ylt_digest=ylt_digest(warm_result.ylt),
            executions=execution_count() - executions_before,
            replay_hit=bool(warm_result.meta["replay"]["hit"]),
        )

        # -- warm-file: a fresh store per repeat = a restarted process
        warm_file_s = float("inf")
        for _ in range(max(1, repeats)):
            fresh = TieredStore([MemoryStore(), SharedFileStore(analysis_dir)])
            started = time.perf_counter()
            warm_result = ara.run(yet, engine="sequential", store=fresh)
            warm_file_s = min(warm_file_s, time.perf_counter() - started)
        report.add(
            mode="warm-file",
            engine="sequential",
            measured_seconds=warm_file_s,
            speedup_vs_cold=cold_s / warm_file_s,
            ylt_digest=ylt_digest(warm_result.ylt),
            executions=execution_count() - executions_before,
            replay_hit=bool(warm_result.meta["replay"]["hit"]),
        )

        # -- quote batch: storeless service vs fleet-warmed file store
        layer = workload.portfolio.layers[0]
        elts = workload.portfolio.elts_of(layer)
        candidates = quote_candidates(workload, n_candidates)

        quote_cold_s = float("inf")
        for _ in range(max(1, repeats)):
            with QuoteService(
                yet, elts, catalog_size, max_workers=4
            ) as service:
                started = time.perf_counter()
                service.quote_many(candidates)
                quote_cold_s = min(
                    quote_cold_s, time.perf_counter() - started
                )
        report.add(
            mode="quote-cold",
            n_candidates=n_candidates,
            measured_seconds=quote_cold_s,
            per_quote_seconds=quote_cold_s / n_candidates,
            speedup_vs_cold=1.0,
        )

        # A *separate process* computes and persists the shared base
        # vector; this process then quotes the whole batch against it.
        # One timed pass only: it write-throughs the finished loss
        # vectors, so a second pass would measure a different (fully
        # warm) store state — reported separately below.
        _spawn_quote_warmer(quote_dir, measured_spec, n_candidates=1)
        with QuoteService(
            yet,
            elts,
            catalog_size,
            max_workers=4,
            store=SharedFileStore(quote_dir),
        ) as service:
            started = time.perf_counter()
            service.quote_many(candidates)
            quote_fleet_s = time.perf_counter() - started
            fleet_stats = service.cache_stats()
        report.add(
            mode="quote-warm-xproc",
            n_candidates=n_candidates,
            measured_seconds=quote_fleet_s,
            per_quote_seconds=quote_fleet_s / n_candidates,
            speedup_vs_cold=quote_cold_s / quote_fleet_s,
            base_cache=dict(fleet_stats.get("base", {})),
            loss_cache=dict(fleet_stats.get("losses", {})),
        )

        # Fully warm store (every loss vector persisted): repeat quotes
        # of the whole batch are pure store replays — the many-user
        # serving steady state.
        quote_replay_s = float("inf")
        replay_stats = {}
        for _ in range(max(1, repeats)):
            with QuoteService(
                yet,
                elts,
                catalog_size,
                max_workers=4,
                store=SharedFileStore(quote_dir),
            ) as service:
                started = time.perf_counter()
                service.quote_many(candidates)
                quote_replay_s = min(
                    quote_replay_s, time.perf_counter() - started
                )
                replay_stats = service.cache_stats()
        report.add(
            mode="quote-replay",
            n_candidates=n_candidates,
            measured_seconds=quote_replay_s,
            per_quote_seconds=quote_replay_s / n_candidates,
            speedup_vs_cold=quote_cold_s / quote_replay_s,
            base_cache=dict(replay_stats.get("base", {})),
            loss_cache=dict(replay_stats.get("losses", {})),
        )

        report.note(
            f"whole-analysis replay: warm-memory "
            f"{cold_s / warm_mem_s:.1f}x, warm-file (restart) "
            f"{cold_s / warm_file_s:.1f}x over the cold run, YLTs "
            "bit-identical (digest-checked) with zero engine task "
            "executions."
        )
        report.note(
            f"cross-process quote reuse: a child process persisted the "
            f"shared base vector; quoting {n_candidates} candidates in "
            f"this process took {quote_fleet_s:.3f}s "
            f"({quote_cold_s / quote_fleet_s:.1f}x vs storeless) with "
            "zero base-vector computations, and once the batch's loss "
            f"vectors were persisted, re-quoting the batch replays at "
            f"{quote_cold_s / quote_replay_s:.1f}x."
        )
        report.note(
            "invalidation is content-addressed: any change to the YET, "
            "an ELT, layer terms, dtype, kernel/decomposition or the "
            "secondary stream changes the key, so stale entries are "
            "unreachable by construction."
        )
        return report
    finally:
        if owner is not None:
            owner.cleanup()


# ----------------------------------------------------------------------
# EXT-SECONDARY: the future-work extension
# ----------------------------------------------------------------------
# ----------------------------------------------------------------------
# FLEET-ABLATE: distributed sweeps — scale-out and delta re-sweeps
# ----------------------------------------------------------------------
def fleet_bench_spec() -> WorkloadSpec:
    """The fleet-sweep workload: enough segments for real scheduling.

    Two layers over a shared pool and 8 segments per layer at the
    benchmark's stride, so a fleet has 16 comparable jobs to pull — the
    master-worker shape of the companion cluster paper, CI-sized.
    """
    return BENCH_SMALL.with_(
        name="fleet-bench",
        n_trials=16_000,
        events_per_trial=150,
        elts_per_layer=10,
        n_layers=2,
        shared_elt_pool=True,
    )


def fleet_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    n_workers: int = 4,
    segment_trials: int = 1_000,
    delta_fraction: float = 0.1,
    repeats: int = 2,
    cache_dir=None,
) -> ExperimentReport:
    """Fleet sweeps: worker scale-out and store-aware delta re-sweeps.

    Five rows on one seeded workload:

    * **monolithic** — a plain sequential ``Engine.run`` (the
      no-queue baseline; fleet coordination overhead shows against it);
    * **fleet-1 / fleet-N** — cold fleet sweeps (fresh store + queue)
      drained by 1 and ``n_workers`` workers.  Measured wall seconds on
      this host, plus *modeled makespans*: per-job compute seconds are
      measured (each segment entry records them) and scheduled LPT-
      greedy onto hypothetical fleets —
      :func:`repro.fleet.sweep.modeled_makespan`, the fleet analogue of
      the repository's simulated-GPU cost models, meaningful even on
      single-core CI hosts where threads cannot physically overlap;
    * **delta-cold / delta-resweep** — the workload extended by
      ``delta_fraction`` new trials, swept against a fresh store vs
      re-swept against the original sweep's store (only the new tail's
      segments are jobs).  The ratio is the store-aware planning win.

    Every row records the assembled YLT digest; the fleet digests must
    equal the monolithic runs' (bit-for-bit assembly is asserted by the
    benchmark's guards, not just eyeballed).
    """
    import tempfile
    from pathlib import Path

    from repro.core.analysis import AggregateRiskAnalysis
    from repro.data.yet import YearEventTable
    from repro.engines.registry import create_engine
    from repro.fleet.sweep import modeled_makespan
    from repro.store import SharedFileStore
    from repro.store.keys import ylt_digest

    report = ExperimentReport(
        exp_id="FLEET-ABLATE",
        title="Fleet sweeps: distributed job queue + store-aware deltas",
    )
    if measured_spec is None:
        measured_spec = fleet_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    yet = workload.yet
    ara = AggregateRiskAnalysis(workload.portfolio, workload.catalog.n_events)

    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="fleet-ablate-")
        cache_dir = tmp.name
    cache_dir = Path(cache_dir)

    try:
        mono = min(
            (ara.run(yet, engine="sequential") for _ in range(repeats)),
            key=lambda r: r.wall_seconds,
        )
        report.add(
            mode="monolithic",
            workers=1,
            measured_seconds=mono.wall_seconds,
            ylt_digest=ylt_digest(mono.ylt),
        )

        def fleet_run(store, workers, label_yet=yet, analysis=ara):
            return analysis.run_fleet(
                label_yet,
                engine="sequential",
                n_workers=workers,
                store=store,
                segment_trials=segment_trials,
            )

        # -- cold sweeps at 1 and n workers ------------------------------
        # A run warms its store, so each repeat gets a fresh one and
        # min-of-repeats (the suite's standard noise rule) applies to
        # the guarded fleet rows exactly as to the baselines.
        def cold_fleet(label: str, workers: int):
            runs = [
                (
                    fleet_run(
                        SharedFileStore(cache_dir / f"{label}-{k}"), workers
                    ),
                    cache_dir / f"{label}-{k}",
                )
                for k in range(repeats)
            ]
            return min(runs, key=lambda rs: rs[0].wall_seconds)

        fleet_1, store_1_dir = cold_fleet("fleet-1", 1)
        store_1 = SharedFileStore(store_1_dir)
        # per-job compute seconds, recorded by the workers in each
        # segment entry: the modeled-makespan inputs.
        engine_obj = create_engine("sequential")
        delta_plan = engine_obj.plan_missing(
            yet, workload.portfolio, None, segment_trials=segment_trials
        )
        job_seconds = [
            float(store_1.get(record.key).meta["seconds"])
            for record in delta_plan.segments
        ]
        makespan_1 = modeled_makespan(job_seconds, 1)
        makespan_n = modeled_makespan(job_seconds, n_workers)
        report.add(
            mode="fleet-1",
            workers=1,
            measured_seconds=fleet_1.wall_seconds,
            jobs=fleet_1.meta["fleet"]["jobs_submitted"],
            reused=fleet_1.meta["fleet"]["segments_reused"],
            modeled_makespan_seconds=makespan_1,
            modeled_speedup=1.0,
            ylt_digest=ylt_digest(fleet_1.ylt),
        )

        fleet_n, _store_n_dir = cold_fleet(f"fleet-{n_workers}", n_workers)
        report.add(
            mode=f"fleet-{n_workers}",
            workers=n_workers,
            measured_seconds=fleet_n.wall_seconds,
            measured_speedup_vs_1=fleet_1.wall_seconds / fleet_n.wall_seconds,
            jobs=fleet_n.meta["fleet"]["jobs_submitted"],
            reused=fleet_n.meta["fleet"]["segments_reused"],
            modeled_makespan_seconds=makespan_n,
            modeled_speedup=makespan_1 / makespan_n if makespan_n else 0.0,
            ylt_digest=ylt_digest(fleet_n.ylt),
        )

        # -- delta re-sweep: extend the YET by delta_fraction -----------
        tail_trials = max(1, int(yet.n_trials * delta_fraction))
        tail = get_workload(
            measured_spec.with_(
                name=f"{measured_spec.name}-tail",
                n_trials=tail_trials,
                seed=measured_spec.seed + 1,
            )
        ).yet
        extended = YearEventTable.concatenate([yet, tail])

        mono_ext = ara.run(extended, engine="sequential")
        delta_cold = min(
            (
                fleet_run(
                    SharedFileStore(cache_dir / f"delta-cold-{k}"),
                    1,
                    extended,
                )
                for k in range(repeats)
            ),
            key=lambda r: r.wall_seconds,
        )
        report.add(
            mode="delta-cold",
            workers=1,
            measured_seconds=delta_cold.wall_seconds,
            jobs=delta_cold.meta["fleet"]["jobs_submitted"],
            reused=delta_cold.meta["fleet"]["segments_reused"],
            ylt_digest=ylt_digest(delta_cold.ylt),
        )
        # The resweep reuses fleet-1's store, which holds the *base*
        # workload's segments — only the appended tail is new work.  A
        # run mutates its store (the tail lands in it), so each repeat
        # gets a fresh copy of the warmed cache dir; min-of-repeats is
        # the suite's standard noise rule.
        import shutil

        def resweep_once(k: int):
            warmed = cache_dir / f"resweep-{k}"
            shutil.copytree(store_1_dir, warmed)
            return fleet_run(SharedFileStore(warmed), 1, extended)

        resweep = min(
            (resweep_once(k) for k in range(repeats)),
            key=lambda r: r.wall_seconds,
        )
        report.add(
            mode="delta-resweep",
            workers=1,
            measured_seconds=resweep.wall_seconds,
            speedup_vs_cold=delta_cold.wall_seconds / resweep.wall_seconds,
            jobs=resweep.meta["fleet"]["jobs_submitted"],
            reused=resweep.meta["fleet"]["segments_reused"],
            delta_fraction=delta_fraction,
            ylt_digest=ylt_digest(resweep.ylt),
            monolithic_extended_digest=ylt_digest(mono_ext.ylt),
        )
        report.note(
            f"modeled fleet makespan (measured per-job seconds, LPT onto "
            f"{n_workers} workers): {makespan_1:.3f}s -> {makespan_n:.3f}s "
            f"({makespan_1 / makespan_n:.2f}x); measured wall speedup on "
            f"this host: "
            f"{fleet_1.wall_seconds / fleet_n.wall_seconds:.2f}x."
        )
        report.note(
            f"store-aware delta: re-sweeping after a {delta_fraction:.0%} "
            f"YET extension enqueued "
            f"{resweep.meta['fleet']['jobs_submitted']} of "
            f"{resweep.meta['fleet']['n_segments']} segments "
            f"({delta_cold.wall_seconds / resweep.wall_seconds:.1f}x over a "
            "cold sweep of the same extended input)."
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


# ----------------------------------------------------------------------
# CHAOS-ABLATE: fleet sweeps under injected faults
# ----------------------------------------------------------------------
def chaos_bench_spec() -> WorkloadSpec:
    """The chaos workload: the fleet bench at half the trial count.

    Same two-layer shared-pool shape as :func:`fleet_bench_spec` (so
    chaos rows are comparable to fleet rows), sized so a baseline
    sweep is long enough for a lease expiry to be *recoverable within*
    the run — the kill row's inflation bound is meaningful — while the
    whole experiment stays CI-sized.
    """
    return fleet_bench_spec().with_(name="chaos-bench", n_trials=8_000)


def chaos_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    n_workers: int = 4,
    segment_trials: int = 1_000,
    lease_seconds: float = 0.25,
    repeats: int = 2,
    seed: int = 2013,
    base_dir=None,
) -> ExperimentReport:
    """Fleet sweeps under injected faults: same bytes, bounded slowdown.

    Four rows, one seeded workload, every sweep through the same
    chaos harness (:class:`~repro.faults.runner.ChaosRunner`, so the
    baseline carries identical wrapper overhead):

    * **baseline** — an empty fault plan;
    * **kill-1** — 1 of ``n_workers`` dies at its first claim (no
      cleanup; peers must requeue the lease).  Guarded: digest equal
      to baseline, makespan inflation ≤ 2x;
    * **store-faults** — a torn write, transient read corruption,
      transient get IO errors and one dropped put.  Guarded: digest
      equal, zero duplicate-compute leaks (every extra compute is
      accounted to an invalidated entry or a dropped put);
    * **split-brain** — stalled heartbeats (seeded coin flips), a
      duplicate claim, injected read latency.  Guarded: digest equal,
      zero leaks (the dedup machinery absorbs the double claims).

    Timing rows are min-of-``repeats``; digest equality must hold on
    *every* repeat (a single mismatching run is a correctness bug, not
    noise).
    """
    import tempfile
    from pathlib import Path

    from repro.engines.registry import create_engine
    from repro.faults import (
        KIND_CORRUPT,
        KIND_DUPLICATE_CLAIM,
        KIND_IO_ERROR,
        KIND_KILL,
        KIND_LATENCY,
        KIND_STALL_HEARTBEAT,
        KIND_TORN_WRITE,
        OP_CLAIM,
        OP_GET,
        OP_HEARTBEAT,
        OP_PUT,
        ChaosRunner,
        FaultPlan,
        FaultSpec,
        no_faults,
    )

    report = ExperimentReport(
        exp_id="CHAOS-ABLATE",
        title="Chaos-hardened fleet: digest equality under injected faults",
    )
    if measured_spec is None:
        measured_spec = chaos_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="chaos-ablate-")
        base_dir = tmp.name
    base_dir = Path(base_dir)

    plans = {
        "kill-1": lambda: FaultPlan(
            seed,
            [FaultSpec(kind=KIND_KILL, op=OP_CLAIM, at=1, times=1)],
        ),
        "store-faults": lambda: FaultPlan(
            seed,
            [
                FaultSpec(kind=KIND_TORN_WRITE, op=OP_PUT, at=2, times=1),
                FaultSpec(kind=KIND_CORRUPT, op=OP_GET, every=7, times=2),
                FaultSpec(kind=KIND_IO_ERROR, op=OP_GET, every=5, times=4),
                FaultSpec(kind=KIND_IO_ERROR, op=OP_PUT, at=4, times=1),
            ],
        ),
        "split-brain": lambda: FaultPlan(
            seed,
            [
                FaultSpec(
                    kind=KIND_STALL_HEARTBEAT,
                    op=OP_HEARTBEAT,
                    probability=0.6,
                ),
                FaultSpec(
                    kind=KIND_DUPLICATE_CLAIM, op=OP_CLAIM, at=2, times=1
                ),
                FaultSpec(
                    kind=KIND_LATENCY,
                    op=OP_GET,
                    every=4,
                    latency_seconds=0.005,
                ),
            ],
        ),
    }

    try:
        runner = ChaosRunner(
            workload.yet,
            workload.portfolio,
            workload.catalog.n_events,
            create_engine("sequential"),
            base_dir,
            segment_trials=segment_trials,
            n_workers=n_workers,
            lease_seconds=lease_seconds,
        )

        def best_of(label: str, plan_factory) -> "tuple":
            """Min-seconds run; every repeat's digest collected."""
            runs = [
                runner.run(plan_factory(), label=f"{label}-{k}")
                for k in range(repeats)
            ]
            return (
                min(runs, key=lambda r: r.seconds),
                sorted({r.digest for r in runs}),
            )

        baseline, base_digests = best_of(
            "baseline", lambda: no_faults(seed)
        )
        if len(base_digests) != 1:
            raise AssertionError(
                f"fault-free chaos baseline not deterministic: "
                f"{base_digests}"
            )
        report.add(
            mode="baseline",
            workers=n_workers,
            measured_seconds=baseline.seconds,
            rounds=baseline.rounds,
            computed=baseline.computed,
            speculated=baseline.speculated,
            duplicate_compute_leaks=baseline.duplicate_compute_leaks,
            ylt_digest=baseline.digest,
        )

        for mode, plan_factory in plans.items():
            result, digests = best_of(mode, plan_factory)
            report.add(
                mode=mode,
                workers=n_workers,
                measured_seconds=result.seconds,
                inflation_vs_baseline=(
                    result.seconds / baseline.seconds
                    if baseline.seconds
                    else 1.0
                ),
                rounds=result.rounds,
                computed=result.computed,
                speculated=result.speculated,
                store_retries=result.store_retries,
                requeued=result.requeued,
                invalidated=result.invalidated,
                dropped_puts=result.dropped_puts,
                duplicate_compute_leaks=result.duplicate_compute_leaks,
                workers_killed=len(result.killed_workers),
                fault_counts=dict(result.fault_counts),
                ylt_digest=result.digest,
                digest_matches_baseline=(
                    digests == [baseline.digest]
                ),
            )

        kill_row = next(r for r in report.rows if r["mode"] == "kill-1")
        report.note(
            f"digest equality held under every fault plan "
            f"({', '.join(plans)}): injected kills, torn writes, "
            "corruption, IO errors, stalled heartbeats and duplicate "
            "claims change wall-clock, never bytes."
        )
        report.note(
            f"killing 1 of {n_workers} workers at its first claim "
            f"inflated the sweep {kill_row['inflation_vs_baseline']:.2f}x "
            f"(lease {lease_seconds}s; peers requeued the orphaned lease "
            "and speculation back-filled stragglers)."
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


def ext_secondary(
    measured_spec: WorkloadSpec = DEFAULT_MEASURED, measure: bool = True
) -> ExperimentReport:
    """Secondary uncertainty: distributional cost and statistical effect."""
    from repro.core.secondary import SecondaryUncertainty, layer_trial_batch_secondary
    from repro.core.vectorized import layer_trial_batch
    from repro.lookup.factory import build_layer_lookups

    report = ExperimentReport(
        exp_id="EXT-SECONDARY",
        title="Secondary uncertainty inside the kernel (paper future work)",
    )
    if measure:
        workload = get_workload(measured_spec)
        layer = workload.portfolio.layers[0]
        lookups = build_layer_lookups(
            workload.portfolio.elts_of(layer), workload.catalog.n_events
        )
        dense = workload.yet.to_dense()
        started = time.perf_counter()
        base = layer_trial_batch(dense, lookups, layer.terms)
        base_seconds = time.perf_counter() - started
        for cv_label, su in (
            ("none", None),
            ("beta(4,4)", SecondaryUncertainty(4.0, 4.0)),
            ("beta(2,2)", SecondaryUncertainty(2.0, 2.0)),
        ):
            if su is None:
                year = base
                seconds = base_seconds
            else:
                started = time.perf_counter()
                year = layer_trial_batch_secondary(
                    dense, lookups, layer.terms, su, seed=42
                )
                seconds = time.perf_counter() - started
            report.add(
                uncertainty=cv_label,
                multiplier_cv=0.0 if su is None else su.multiplier_cv,
                measured_seconds=seconds,
                mean_year_loss=float(np.mean(year)),
                std_year_loss=float(np.std(year)),
            )
        report.note(
            "per-(occurrence, ELT) damage-ratio sampling roughly doubles "
            "kernel arithmetic; year-loss std shifts while the mean stays "
            "within sampling error when layer terms are loose."
        )
    return report


# ----------------------------------------------------------------------
# SERVE-ABLATE: SLO-grade serving under overload and injected latency
# ----------------------------------------------------------------------
def serve_bench_spec() -> WorkloadSpec:
    """The serving workload of SERVE-ABLATE.

    Sized so one layer-terms finish is milliseconds (a realistic quote
    tail once the base vector is shared) while the whole ablation stays
    CI-sized.
    """
    return BENCH_SMALL.with_(
        n_trials=20_000, events_per_trial=100, elts_per_layer=8
    )


def serve_requests(workload, n: int, offset: int = 0) -> list:
    """``n`` unique candidate quote requests over the first ELT set.

    Terms vary per index through three coprime cycles, so requests are
    pairwise distinct for any CI-scale ``n`` — every admitted quote
    pays a real layer-terms finish instead of a loss-cache hit, and
    disjoint ``offset`` ranges keep benchmark phases from warming each
    other.  Deterministic (terms derive only from the seeded workload),
    so store prewarms address the exact entries serving will fetch.
    """
    from repro.data.layer import LayerTerms
    from repro.pricing.realtime import QuoteRequest

    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)
    elt_ids = tuple(elt.elt_id for elt in elts)
    typical = float(np.mean([float(elt.losses.mean()) for elt in elts]))
    requests = []
    for k in range(n):
        i = offset + k
        requests.append(
            QuoteRequest(
                elt_ids=elt_ids,
                terms=LayerTerms(
                    occ_retention=(0.2 + 0.01 * (i % 97)) * typical,
                    occ_limit=(4.0 + 0.05 * (i % 211)) * typical,
                    agg_retention=0.0,
                    agg_limit=(12.0 + 0.1 * (i % 307)) * typical,
                ),
                label=f"serve-{i}",
            )
        )
    return requests


def serve_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    max_workers: int = 2,
    load_factors: Sequence[float] = (0.5, 1.0, 2.0),
    duration_seconds: float = 1.5,
    capacity_requests: int = 64,
    hedge_requests: int = 40,
    seed: int = 2013,
    base_dir=None,
) -> ExperimentReport:
    """Quote serving under overload: typed sheds, bounded tails, hedges.

    Three phases, one seeded workload:

    1. **capacity** — closed-loop quotes/sec of the bare
       :class:`~repro.pricing.realtime.QuoteService` (the anchor all
       offered rates scale from, so the rows measure *relative*
       overload on any machine);
    2. **open loop** — an admission-controlled
       :class:`~repro.serve.QuoteFrontEnd` offered 0.5x/1x/2x capacity
       with per-request deadlines.  Rows record goodput, shed rate
       (typed, by reason), p50/p95/p99 of *admitted* requests and the
       brownout state reached — at 2x the gate sheds roughly half the
       offered load and the admitted half stays inside the SLO;
    3. **hedged store reads** — the same prewarmed two-tier store
       behind a latency-injecting
       :class:`~repro.faults.store.FaultyStore` on tier 0 (same seeded
       :class:`~repro.faults.plan.FaultPlan` both modes), quoted with
       hedging off then on.  Hedging routes around the injected tier-0
       stalls, cutting p99, while every served loss vector stays
       bit-for-bit equal to a direct sequential-engine run.
    """
    import tempfile
    import zlib
    from pathlib import Path

    from repro.core.analysis import AggregateRiskAnalysis
    from repro.data.layer import Layer, Portfolio
    from repro.faults import (
        KIND_LATENCY,
        OP_GET,
        FaultPlan,
        FaultSpec,
        FaultyStore,
    )
    from repro.pricing.realtime import QuoteService
    from repro.serve import QuoteFrontEnd, measure_capacity, run_open_loop
    from repro.serve.brownout import BrownoutController
    from repro.store import SharedFileStore, TieredStore
    from repro.utils.latency import percentile

    report = ExperimentReport(
        exp_id="SERVE-ABLATE",
        title="SLO-grade quote serving: admission, deadlines, hedged reads",
    )
    if measured_spec is None:
        measured_spec = serve_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    yet = workload.yet
    catalog_size = workload.catalog.n_events
    layer = workload.portfolio.layers[0]
    elts = workload.portfolio.elts_of(layer)

    # ---- phase 1: closed-loop capacity anchor -------------------------
    service = QuoteService(
        yet, elts, catalog_size, max_workers=max_workers, cache_size=4
    )
    with service:
        # First quote pays the shared base pass; capacity measures the
        # steady state (per-candidate finishes), like a warm server.
        service.quote_many(serve_requests(workload, 1, offset=90_000))
        capacity_qps = measure_capacity(
            service, serve_requests(workload, capacity_requests, offset=0)
        )
        mean_service_seconds = 1.0 / max(capacity_qps, 1e-9)
        slo_seconds = max(0.25, 40.0 * mean_service_seconds)
        report.add(
            mode="capacity",
            workers=max_workers,
            capacity_qps=capacity_qps,
            mean_service_seconds=mean_service_seconds,
            slo_seconds=slo_seconds,
        )

        # ---- phase 2: open-loop offered load ------------------------
        offset = 1_000
        for factor in load_factors:
            rate = max(capacity_qps * factor, 1.0)
            offered = min(int(rate * duration_seconds), 4_000)
            frontend = QuoteFrontEnd(
                service,
                max_inflight=2 * max_workers,
                brownout=BrownoutController(
                    window_seconds=1.0,
                    min_dwell_seconds=0.25,
                    min_samples=20,
                ),
            )
            load = run_open_loop(
                frontend,
                serve_requests(workload, offered, offset=offset),
                rate_qps=rate,
                timeout=slo_seconds,
            )
            offset += offered
            stats = frontend.stats()
            report.add(
                mode=f"open-loop-{factor:g}x",
                workers=max_workers,
                load_factor=factor,
                slo_seconds=slo_seconds,
                brownout_state=stats["brownout"]["state"],
                brownout_transitions=len(
                    stats["brownout"]["transitions"]
                ),
                coalesced=stats["requests"]["coalesced"],
                **load.as_row(),
            )

    # ---- phase 3: hedged reads vs injected tier-0 latency -------------
    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="serve-ablate-")
        base_dir = tmp.name
    base_dir = Path(base_dir)
    requests = serve_requests(workload, hedge_requests, offset=50_000)
    latency_specs = [
        FaultSpec(
            kind=KIND_LATENCY, op=OP_GET, every=3, latency_seconds=0.05
        )
    ]
    try:
        # Prewarm both tiers (writes go through every tier) so the
        # serving phase below is pure store reads.
        warm = TieredStore(
            [SharedFileStore(base_dir / "a"), SharedFileStore(base_dir / "b")]
        )
        with QuoteService(
            yet, elts, catalog_size, max_workers=max_workers, store=warm
        ) as prewarmer:
            prewarmer.quote_many(requests)

        def digest_of(svc) -> int:
            crc = 0
            for request in requests[:4]:
                losses = svc.candidate_losses(
                    request.elt_ids, request.terms
                )
                crc = zlib.crc32(losses.tobytes(), crc)
            return crc

        hedge_rows = {}
        for hedge_on in (False, True):
            tiered = TieredStore(
                [
                    FaultyStore(
                        SharedFileStore(base_dir / "a"),
                        FaultPlan(seed, list(latency_specs)),
                    ),
                    SharedFileStore(base_dir / "b"),
                ],
                hedge=hedge_on,
                hedge_min_delay=0.002,
                hedge_max_delay=0.02,
            )
            with QuoteService(
                yet,
                elts,
                catalog_size,
                max_workers=max_workers,
                store=tiered,
                cache_size=1,  # tiny LRU: every quote reads the store
            ) as served:
                samples = []
                for request in requests:
                    started = time.perf_counter()
                    served.quote(
                        request.elt_ids,
                        request.terms,
                        layer_id=request.layer_id,
                    )
                    samples.append(time.perf_counter() - started)
                digest = digest_of(served)
            hedge = tiered.stats()["hedge"]
            mode = "store-hedge-on" if hedge_on else "store-hedge-off"
            hedge_rows[mode] = {
                "p50": percentile(samples, 0.50),
                "p99": percentile(samples, 0.99),
                "digest": digest,
            }
            report.add(
                mode=mode,
                workers=max_workers,
                requests=len(requests),
                injected_every=3,
                injected_latency_seconds=0.05,
                p50_seconds=hedge_rows[mode]["p50"],
                p99_seconds=hedge_rows[mode]["p99"],
                hedges_issued=hedge["issued"],
                hedge_wins=hedge["wins"],
                hedge_losses=hedge["losses"],
                losses_crc32=digest,
            )

        # Served bytes must equal a direct sequential-engine run of the
        # same candidates — hedging and injected latency included.
        direct_crc = 0
        for request in requests[:4]:
            candidate = Layer(
                layer_id=request.layer_id,
                elt_ids=request.elt_ids,
                terms=request.terms,
            )
            portfolio = Portfolio()
            for elt in elts:
                portfolio.add_elt(elt)
            portfolio.add_layer(candidate)
            result = AggregateRiskAnalysis(portfolio, catalog_size).run(
                yet, engine="sequential"
            )
            direct_crc = zlib.crc32(
                result.ylt.layer_losses(request.layer_id).tobytes(),
                direct_crc,
            )
        for mode, row in hedge_rows.items():
            if row["digest"] != direct_crc:
                raise AssertionError(
                    f"{mode}: served losses diverge from the direct "
                    f"engine run ({row['digest']:#x} != {direct_crc:#x})"
                )
        report.add(
            mode="digest-check",
            requests_checked=4,
            losses_crc32=direct_crc,
            digests_match_direct=True,
        )
        off, on = (
            hedge_rows["store-hedge-off"],
            hedge_rows["store-hedge-on"],
        )
        report.note(
            f"hedged reads cut p99 store-backed quote latency from "
            f"{off['p99'] * 1e3:.1f} ms to {on['p99'] * 1e3:.1f} ms under "
            "50 ms tier-0 latency injection (every 3rd get), with served "
            "bytes identical to a direct sequential-engine run."
        )
    finally:
        if tmp is not None:
            tmp.cleanup()

    two_x = next(
        (r for r in report.rows if r.get("load_factor") == 2.0), None
    )
    if two_x is not None:
        report.note(
            f"at 2x capacity the gate shed {two_x['shed_rate']:.0%} of "
            f"offered load (typed Overloaded, reasons "
            f"{two_x['shed_reasons']}) while goodput held "
            f"{two_x['goodput_qps']:.0f}/{capacity_qps:.0f} qps and "
            f"admitted p99 stayed at {two_x['p99_seconds']:.3f} s "
            f"(SLO {slo_seconds:.2f} s, brownout state "
            f"{two_x['brownout_state']})."
        )
    return report


# ----------------------------------------------------------------------
# NET-ABLATE: the fleet over the wire — remote tiers + shuffle assembly
# ----------------------------------------------------------------------
def net_bench_spec() -> WorkloadSpec:
    """The network workload: the fleet bench at half the trial count.

    Same two-layer shared-pool shape as :func:`fleet_bench_spec` (so
    network rows compare against fleet rows), segmented finely by the
    benchmark (250-trial stride → 64 segments) so per-segment assembly
    has a real fetch bill for partition/shuffle assembly to beat.
    """
    return fleet_bench_spec().with_(name="net-bench", n_trials=8_000)


def net_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    n_workers: int = 3,
    segment_trials: int = 250,
    n_partitions: int = 8,
    repeats: int = 2,
    seed: int = 2013,
    base_dir=None,
) -> ExperimentReport:
    """The fleet over localhost sockets: what the network tier costs.

    Six rows, one seeded workload, every remote row through the real
    wire protocol (``NetServer`` + ``RemoteStore``/``RemoteJobQueue``
    on loopback — serialization, framing, CRCs and retries are all
    real; only propagation delay is missing):

    * **monolithic** — a plain sequential ``Engine.run`` (the digest
      reference for every other row);
    * **warm-local / warm-remote** — warm replay of a fully stored
      sweep (submit finds zero missing segments, gather re-reads the
      store) against the local file tier vs the *same directory*
      served over the wire.  The ratio is the network tax on the
      replay path;
    * **assemble-segments / assemble-partials** — cold sweeps over the
      wire, classic per-segment assembly vs partition/shuffle
      (``n_partitions`` reduce jobs folding partial YLTs).  Each row
      records the *store fetches issued at assembly* on a dedicated
      gather client — S gets vs P gets, the sublinearity the
      benchmark's hard gate pins;
    * **wire-faults** — a cold sweep with injected wire latency and
      connection drops on the surviving workers and 1 of ``n_workers``
      killed at its first compute (lease expiry + peer requeue must
      recover).  Guarded: digest equal to monolithic.

    Timing rows are min-of-``repeats``; digest equality must hold on
    *every* run (one mismatch is a correctness bug, not noise).
    """
    import tempfile
    import threading
    from pathlib import Path

    from repro.core.analysis import AggregateRiskAnalysis
    from repro.engines.registry import create_engine
    from repro.faults.plan import (
        KIND_KILL,
        OP_COMPUTE,
        FaultPlan,
        FaultSpec,
        WorkerKilled,
    )
    from repro.faults.wire import wire_chaos_plan
    from repro.fleet import (
        FleetWorker,
        JobQueue,
        context_for_engine,
        gather_sweep,
        run_workers,
        submit_sweep,
    )
    from repro.net.client import RemoteStore
    from repro.net.queue import RemoteJobQueue
    from repro.net.server import NetServer, ServerThread
    from repro.store import SharedFileStore
    from repro.store.keys import ylt_digest
    from repro.utils.retry import RetryPolicy

    report = ExperimentReport(
        exp_id="NET-ABLATE",
        title="Network fleet: remote store/queue + partition assembly",
    )
    if measured_spec is None:
        measured_spec = net_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    yet, portfolio = workload.yet, workload.portfolio
    n_events = workload.catalog.n_events
    ara = AggregateRiskAnalysis(portfolio, n_events)
    engine_obj = create_engine("sequential")
    ctx = context_for_engine(yet, portfolio, n_events, engine_obj)
    retry = RetryPolicy(
        max_attempts=4, base_delay=0.005, max_delay=0.05,
        deadline_seconds=10.0,
    )

    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="net-ablate-")
        base_dir = tmp.name
    base_dir = Path(base_dir)

    def remote_pair(host, port, fault_plan=None):
        return (
            RemoteStore(
                host, port, retry_policy=retry, fault_plan=fault_plan
            ),
            RemoteJobQueue(host, port, retry_policy=retry),
        )

    def submit(queue, store, partitions=None):
        return submit_sweep(
            queue, store, yet, portfolio, n_events, engine_obj,
            segment_trials=segment_trials, n_partitions=partitions,
        )

    def replay(store, queue):
        """Warm path: submit (zero missing) + gather, timed together."""
        t0 = time.perf_counter()
        ticket = submit(queue, store)
        ylt = gather_sweep(queue, store, ticket.sweep_id)
        return time.perf_counter() - t0, ticket, ylt_digest(ylt)

    def drain(host, port, ticket, worker_specs):
        """Run one FleetWorker thread per spec, each on its own pair.

        ``worker_specs``: (name, store_plan, kill_plan) tuples; workers
        whose kill plan is set run (and die) *before* the survivors
        start, so the recovery path — lease expiry, peer requeue — is
        deterministically exercised.
        """
        workers, deaths = [], []
        for name, store_plan, kill_plan in worker_specs:
            w_store, w_queue = remote_pair(host, port, fault_plan=store_plan)
            workers.append(
                FleetWorker(
                    w_queue,
                    w_store,
                    contexts={ticket.sweep_id: ctx},
                    worker_id=name,
                    fault_plan=kill_plan,
                    speculate=False,
                )
            )

        def drive(worker):
            try:
                worker.run(sweep_id=ticket.sweep_id, poll_seconds=0.02)
            except WorkerKilled:
                deaths.append(worker.worker_id)

        doomed = [w for w, s in zip(workers, worker_specs) if s[2] is not None]
        survivors = [w for w in workers if w not in doomed]
        for worker in doomed:
            thread = threading.Thread(target=drive, args=(worker,))
            thread.start()
            thread.join(timeout=120.0)
        threads = [
            threading.Thread(target=drive, args=(w,)) for w in survivors
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600.0)
        for w in workers:
            w.store.close()
            w.queue.close()
        return workers, deaths

    def cold_wire_sweep(label, lease_seconds, partitions, worker_specs):
        """A full cold sweep over the wire; returns the row dict."""
        store_dir = base_dir / f"{label}-cache"
        queue = JobQueue(
            base_dir / f"{label}-q", lease_seconds=lease_seconds,
            max_attempts=5,
        )
        server = NetServer(SharedFileStore(store_dir), queue=queue)
        with ServerThread(server) as (host, port):
            s_store, s_queue = remote_pair(host, port)
            t0 = time.perf_counter()
            ticket = submit(s_queue, s_store, partitions=partitions)
            workers, deaths = drain(host, port, ticket, worker_specs)
            counts = s_queue.counts(ticket.sweep_id)
            if counts["failed"] or counts["pending"] or counts["claimed"]:
                raise AssertionError(
                    f"{label}: sweep did not drain cleanly: {counts}"
                )
            # assembly fetches on a *dedicated* gather client: its
            # store transport carries nothing but the gather's gets.
            g_store, g_queue = remote_pair(host, port)
            ylt = gather_sweep(g_queue, g_store, ticket.sweep_id)
            seconds = time.perf_counter() - t0
            row = {
                "measured_seconds": seconds,
                "segments": ticket.delta.n_segments,
                "jobs": ticket.submitted,
                "assembly_fetches": g_store.transport.requests,
                "computed": sum(w.stats.computed for w in workers),
                "rpc_retries": sum(
                    w.store.stats()["rpc_retries"] for w in workers
                ),
                "workers_killed": len(deaths),
                "ylt_digest": ylt_digest(ylt),
            }
            for client in (s_store, s_queue, g_store, g_queue):
                client.close()
        return row

    try:
        mono = min(
            (ara.run(yet, engine="sequential") for _ in range(repeats)),
            key=lambda r: r.wall_seconds,
        )
        mono_digest = ylt_digest(mono.ylt)
        report.add(
            mode="monolithic",
            measured_seconds=mono.wall_seconds,
            ylt_digest=mono_digest,
        )

        # -- warm one shared store locally, then replay it twice --------
        warm_dir = base_dir / "warm-cache"
        local_store = SharedFileStore(warm_dir)
        local_queue = JobQueue(base_dir / "warm-q", lease_seconds=60.0)
        warm_ticket = submit(local_queue, local_store)
        n_segments = warm_ticket.delta.n_segments
        run_workers(
            local_queue,
            local_store,
            contexts={warm_ticket.sweep_id: ctx},
            n_workers=n_workers,
            sweep_id=warm_ticket.sweep_id,
        )

        local_runs = [replay(local_store, local_queue) for _ in range(repeats)]
        local_seconds = min(r[0] for r in local_runs)
        digests = {r[2] for r in local_runs}
        report.add(
            mode="warm-local",
            measured_seconds=local_seconds,
            segments=n_segments,
            jobs=sum(r[1].submitted for r in local_runs),
            ylt_digest=digests.pop() if len(digests) == 1 else sorted(digests),
        )

        remote_queue_dir = JobQueue(
            base_dir / "warm-remote-q", lease_seconds=60.0
        )
        server = NetServer(SharedFileStore(warm_dir), queue=remote_queue_dir)
        with ServerThread(server) as (host, port):

            def remote_replay():
                store, queue = remote_pair(host, port)
                try:
                    seconds, ticket, digest = replay(store, queue)
                    return seconds, ticket, digest, store.transport.requests
                finally:
                    store.close()
                    queue.close()

            remote_runs = [remote_replay() for _ in range(repeats)]
        remote_seconds = min(r[0] for r in remote_runs)
        report.add(
            mode="warm-remote",
            measured_seconds=remote_seconds,
            segments=n_segments,
            jobs=sum(r[1].submitted for r in remote_runs),
            rpc_requests=remote_runs[0][3],
            overhead_vs_local=remote_seconds / local_seconds,
            ylt_digest=remote_runs[0][2],
        )

        # -- cold sweeps over the wire: S-fetch vs P-fetch assembly -----
        plain = [(f"w{i}", None, None) for i in range(n_workers)]
        seg_row = cold_wire_sweep("segments", 60.0, None, plain)
        report.add(mode="assemble-segments", workers=n_workers, **seg_row)
        part_row = cold_wire_sweep("partials", 60.0, n_partitions, plain)
        report.add(
            mode="assemble-partials",
            workers=n_workers,
            n_partitions=n_partitions,
            **part_row,
        )

        # -- wire faults + a worker kill --------------------------------
        kill_plan = FaultPlan(
            seed,
            [
                FaultSpec(
                    kind=KIND_KILL,
                    op=OP_COMPUTE,
                    at=1,
                    worker_substring="w-doomed",
                )
            ],
        )
        chaotic = [
            (
                f"w{i}",
                wire_chaos_plan(
                    seed + i,
                    latency_seconds=0.002,
                    latency_probability=0.2,
                    drop_every=40,
                    drop_times=3,
                ),
                None,
            )
            for i in range(n_workers - 1)
        ]
        chaotic.append(("w-doomed", None, kill_plan))
        fault_row = cold_wire_sweep("faults", 1.0, None, chaotic)
        report.add(mode="wire-faults", workers=n_workers, **fault_row)

        wire_rows = [
            r for r in report.rows if r["mode"] != "monolithic"
        ]
        if any(r["ylt_digest"] != mono_digest for r in wire_rows):
            raise AssertionError(
                "a network row diverged from the monolithic digest: "
                + str(
                    [(r["mode"], r["ylt_digest"]) for r in wire_rows]
                )
            )
        report.note(
            f"warm replay of {n_segments} segments: "
            f"{local_seconds:.3f}s local file tier vs "
            f"{remote_seconds:.3f}s over the wire "
            f"({remote_seconds / local_seconds:.2f}x, "
            f"{remote_runs[0][3]} RPCs)."
        )
        report.note(
            f"assembly fetches: {seg_row['assembly_fetches']} per-segment "
            f"gets vs {part_row['assembly_fetches']} partial-YLT gets at "
            f"{n_partitions} partitions of {n_segments} segments — the "
            "shuffle makes gather O(P), not O(S)."
        )
        report.note(
            f"wire-faults row: {fault_row['workers_killed']} worker killed, "
            f"{fault_row['rpc_retries']} RPCs retried; digest bit-identical "
            "to the monolithic run."
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


# ----------------------------------------------------------------------
# SCENARIO-ABLATE: what-if campaigns over the delta-planned fleet
# ----------------------------------------------------------------------
def scenario_bench_spec() -> WorkloadSpec:
    """The scenario workload: the multi-family preset, unmodified.

    Five named peril blocks (overlay targets), two layers over a shared
    ELT pool, 2,000 trials segmented at a 100-trial stride by the
    benchmark → 40 segments, of which a [0, 200) overlay window dirties
    exactly 4.
    """
    from repro.data.presets import SCENARIO_SMALL

    return SCENARIO_SMALL


def scenario_ablation(
    measured_spec: WorkloadSpec | None = None,
    measure: bool = True,
    n_workers: int = 2,
    segment_trials: int = 100,
    overlay_window: int = 200,
    base_dir=None,
) -> ExperimentReport:
    """Scenario campaigns: determinism, delta reuse, early-stop soundness.

    One seeded baseline workload, one two-scenario set (baseline + a
    crisis overlay scaling hurricane frequency by 1.5x inside a 10%
    trial window), three measurements:

    * **determinism** — the campaign run twice against *fresh* stores,
      and each scenario's compiled inputs priced monolithically by a
      plain ``Engine.run``.  All three digests per scenario must be
      bit-identical (same spec + seed → same YLT, locally or through
      the fleet);
    * **delta reuse** — with the baseline's segments stored, the
      overlay re-sweep may compute at most ~2x its perturbed fraction
      of segments (the content-addressed keys of untouched trials are
      unchanged, so the store serves them);
    * **early stopping** — the same set under an
      :class:`~repro.scenario.adaptive.EarlyStopPolicy`; every stopped
      scenario's PML/TVaR must sit within ``policy.tolerance`` of the
      exact full-trial metrics.
    """
    import tempfile
    from pathlib import Path

    from repro.engines.registry import create_engine
    from repro.scenario.adaptive import EarlyStopPolicy
    from repro.scenario.campaign import ScenarioCampaign
    from repro.scenario.compiler import compile_scenario
    from repro.scenario.spec import FrequencyOverlay, Scenario, ScenarioSet
    from repro.store import SharedFileStore
    from repro.store.keys import ylt_digest

    report = ExperimentReport(
        exp_id="SCENARIO-ABLATE",
        title="Scenario campaigns: determinism, delta reuse, early stop",
    )
    if measured_spec is None:
        measured_spec = scenario_bench_spec()
    if not measure:
        report.note("measure=False: nothing to report (no model rows).")
        return report

    workload = get_workload(measured_spec)
    n_trials = workload.yet.n_trials
    overlay = Scenario(
        name="hurricane-surge",
        transforms=(
            FrequencyOverlay(
                families=("NA-hurricane",),
                factor=1.5,
                trial_start=0,
                trial_stop=overlay_window,
            ),
        ),
        seed=7,
    )
    scenario_set = ScenarioSet(
        name="scenario-bench", scenarios=(Scenario.baseline(), overlay)
    )

    tmp = None
    if base_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="scenario-ablate-")
        base_dir = tmp.name
    base_dir = Path(base_dir)

    def run_campaign(label, policy=None):
        campaign = ScenarioCampaign(
            workload,
            SharedFileStore(base_dir / f"{label}-cache"),
            segment_trials=segment_trials,
            policy=policy,
            n_workers=n_workers,
        )
        t0 = time.perf_counter()
        result = campaign.run(scenario_set)
        return result, time.perf_counter() - t0

    try:
        # -- two independent campaign runs + monolithic references ------
        run1, seconds1 = run_campaign("run1")
        run2, seconds2 = run_campaign("run2")
        engine_obj = create_engine("sequential")
        policy_metrics = EarlyStopPolicy()  # default watched metrics
        mono = {}
        for scenario in scenario_set:
            compiled = compile_scenario(scenario, workload)
            result = engine_obj.run(
                compiled.yet, compiled.portfolio, workload.catalog.n_events
            )
            mono[scenario.name] = {
                "digest": ylt_digest(result.ylt),
                "metrics": policy_metrics.tail_metrics(
                    result.ylt.portfolio_losses()
                ),
            }
        for outcome in run1.outcomes:
            rerun = run2.outcome(outcome.name)
            report.add(
                mode=f"campaign-{outcome.name}",
                measured_seconds=seconds1,
                n_trials=outcome.n_trials,
                segments=outcome.n_segments,
                computed=outcome.n_computed,
                reused=outcome.n_reused,
                perturbed_fraction=compile_scenario(
                    scenario_set.scenario(outcome.name), workload
                ).perturbed_fraction,
                executed_fraction=(
                    outcome.n_computed / outcome.n_segments
                ),
                ylt_digest=outcome.digest,
                rerun_digest_equal=outcome.digest == rerun.digest,
                mono_digest_equal=(
                    outcome.digest == mono[outcome.name]["digest"]
                ),
                pml=outcome.metrics["pml"],
                tvar=outcome.metrics["tvar"],
            )

        # -- early stopping vs the exact full-trial metrics --------------
        policy = EarlyStopPolicy(rel_tol=0.15, min_trials=200)
        adaptive, _ = run_campaign("early-stop", policy=policy)
        for outcome in adaptive.outcomes:
            exact = mono[outcome.name]["metrics"]
            report.add(
                mode=f"early-stop-{outcome.name}",
                trials_used=outcome.trials_used,
                n_trials=outcome.n_trials,
                early_stopped=outcome.early_stopped,
                computed=outcome.n_computed,
                tolerance=policy.tolerance,
                pml_rel_diff=abs(outcome.metrics["pml"] - exact["pml"])
                / max(abs(exact["pml"]), 1e-12),
                tvar_rel_diff=abs(outcome.metrics["tvar"] - exact["tvar"])
                / max(abs(exact["tvar"]), 1e-12),
            )

        overlay_row = next(
            r for r in report.rows if r["mode"] == "campaign-hurricane-surge"
        )
        report.note(
            f"delta reuse: the {overlay_window / n_trials:.0%}-window "
            f"overlay computed {overlay_row['computed']} of "
            f"{overlay_row['segments']} segments "
            f"({overlay_row['executed_fraction']:.0%}); the rest were "
            "served from the baseline's stored segments."
        )
        report.note(
            f"determinism: campaign digests equal across independent "
            f"runs and vs monolithic Engine.run on the compiled inputs "
            f"({seconds1:.2f}s / {seconds2:.2f}s per campaign)."
        )
        stopped = [
            r for r in report.rows
            if r["mode"].startswith("early-stop-") and r["early_stopped"]
        ]
        report.note(
            f"early stop: {len(stopped)} scenario(s) stopped before "
            f"full trials, all within tolerance {policy.tolerance:.2f} "
            "of their exact full-trial PML/TVaR."
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
    return report


ALL_EXPERIMENTS = {
    "SEQ-SCALE": seq_scaling,
    "FIG-1a": fig1a,
    "FIG-1b": fig1b,
    "FIG-2": fig2,
    "FIG-3": fig3,
    "FIG-4": fig4,
    "FIG-5": fig5,
    "FIG-6": fig6,
    "DS-TABLE": data_structures,
    "OPT-ABLATE": opt_ablation,
    "KERNEL-ABLATE": kernel_ablation,
    "KERNEL-ABLATE-SECONDARY": kernel_ablation_secondary,
    "PLAN-ABLATE": plan_ablation,
    "REPLAY-ABLATE": replay_ablation,
    "FLEET-ABLATE": fleet_ablation,
    "CHAOS-ABLATE": chaos_ablation,
    "SERVE-ABLATE": serve_ablation,
    "NET-ABLATE": net_ablation,
    "SCENARIO-ABLATE": scenario_ablation,
    "EXT-SECONDARY": ext_secondary,
}
"""Experiment id → generator function (the per-experiment index)."""
