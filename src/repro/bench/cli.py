"""``repro-bench`` command line: regenerate paper experiments from a shell.

Examples::

    repro-bench --list
    repro-bench FIG-5
    repro-bench all --scale default --markdown > experiments_out.md
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from repro.bench.experiments import ALL_EXPERIMENTS
from repro.bench.report import format_report
from repro.data.presets import BENCH_DEFAULT, BENCH_LARGE, BENCH_SMALL

_SCALES = {
    "small": BENCH_SMALL,
    "default": BENCH_DEFAULT,
    "large": BENCH_LARGE,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description=(
            "Regenerate the tables/figures of 'Achieving Speedup in "
            "Aggregate Risk Analysis using Multiple GPUs' (ICPP 2013)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=["all"],
        help="experiment ids (see --list) or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="measured-workload size (default: small)",
    )
    parser.add_argument(
        "--model-only",
        action="store_true",
        help="skip measured runs; print only paper-scale model predictions",
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown tables"
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id, fn in ALL_EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{exp_id:14s} {doc}")
        return 0

    wanted = args.experiments
    if wanted == ["all"] or "all" in wanted:
        wanted = list(ALL_EXPERIMENTS)
    unknown = [e for e in wanted if e not in ALL_EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {unknown}; use --list", file=sys.stderr
        )
        return 2

    spec = _SCALES[args.scale]
    for exp_id in wanted:
        report = ALL_EXPERIMENTS[exp_id](
            measured_spec=spec, measure=not args.model_only
        )
        print(format_report(report, markdown=args.markdown))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
