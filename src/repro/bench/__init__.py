"""Benchmark harness: regenerate every table and figure of the paper.

Each experiment in :mod:`repro.bench.experiments` produces an
:class:`~repro.bench.runner.ExperimentReport` combining

* the paper's published numbers (from
  :mod:`repro.perfmodel.calibration`),
* the analytic model's paper-scale predictions, and
* measured results from the real engines on a scaled-down workload,

so EXPERIMENTS.md's paper-vs-reproduction tables can be regenerated from
one command (``repro-bench``) or via ``pytest benchmarks/``.
"""

from repro.bench.runner import ExperimentReport, measure_engine, get_workload
from repro.bench.report import format_report, format_table
from repro.bench import experiments

__all__ = [
    "ExperimentReport",
    "measure_engine",
    "get_workload",
    "format_report",
    "format_table",
    "experiments",
]
