"""Experiment plumbing: cached workloads, engine timing, report records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.core.analysis import AnalysisResult
from repro.data.generator import Workload, generate_workload
from repro.data.presets import WorkloadSpec
from repro.engines.registry import create_engine

# Workload generation is the expensive part of a measured experiment;
# cache instances per spec so a pytest session generates each once.
_WORKLOAD_CACHE: Dict[str, Workload] = {}


def get_workload(spec: WorkloadSpec) -> Workload:
    """Generate (or fetch the cached) workload for a spec."""
    key = repr(spec)
    if key not in _WORKLOAD_CACHE:
        _WORKLOAD_CACHE[key] = generate_workload(spec)
    return _WORKLOAD_CACHE[key]


def clear_workload_cache() -> None:
    """Drop cached workloads (memory hygiene for large sweeps)."""
    _WORKLOAD_CACHE.clear()


def measure_engine(
    spec: WorkloadSpec, engine: str, repeats: int = 1, **options: Any
) -> AnalysisResult:
    """Run an engine on the workload of ``spec``; keep the fastest run.

    ``repeats > 1`` re-runs and keeps the minimum wall time (the standard
    noise-reduction rule for microbenchmarks); the returned result is the
    fastest run's.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    workload = get_workload(spec)
    best: AnalysisResult | None = None
    for _ in range(repeats):
        result = create_engine(engine, **options).run(
            workload.yet, workload.portfolio, workload.catalog.n_events
        )
        if best is None or result.wall_seconds < best.wall_seconds:
            best = result
    assert best is not None
    return best


@dataclass
class ExperimentReport:
    """One regenerated table/figure.

    Attributes
    ----------
    exp_id:
        The DESIGN.md experiment id (``"FIG-2"``, ``"SEQ-SCALE"``, ...).
    title:
        Human-readable description.
    rows:
        List of column→value dicts (the regenerated series).
    notes:
        Shape verdicts and paper comparison remarks.
    """

    exp_id: str
    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, **columns: Any) -> None:
        self.rows.append(columns)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        """One column across all rows (missing values become None)."""
        return [row.get(name) for row in self.rows]
