"""Plain-text rendering of experiment reports (terminal + EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

from repro.bench.runner import ExperimentReport


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[Dict[str, Any]], markdown: bool = False) -> str:
    """Render dict-rows as an aligned text (or markdown) table."""
    if not rows:
        return "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    sep = " | " if markdown else "  "
    lines = []
    header = sep.join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(f"| {header} |" if markdown else header)
    if markdown:
        lines.append(
            "| " + " | ".join("-" * w for w in widths) + " |"
        )
    else:
        lines.append("-" * len(header))
    for row in rendered:
        body = sep.join(cell.ljust(w) for cell, w in zip(row, widths))
        lines.append(f"| {body} |" if markdown else body)
    return "\n".join(lines)


def format_report(report: ExperimentReport, markdown: bool = False) -> str:
    """Render a full experiment report (title, table, notes)."""
    heading = f"{report.exp_id}: {report.title}"
    lines = [
        f"## {heading}" if markdown else heading,
        "" if markdown else "=" * len(heading),
        format_table(report.rows, markdown=markdown),
    ]
    if report.notes:
        lines.append("")
        lines.extend(
            f"> {note}" if markdown else f"note: {note}" for note in report.notes
        )
    return "\n".join(lines)
