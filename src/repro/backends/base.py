"""The kernel-backend contract and the permanent numpy oracle.

A *kernel backend* is one implementation of the fused ragged hot loop of
:mod:`repro.core.kernels` — stacked gather + in-place financial terms +
occurrence clamp + segment reduction + aggregate clamp — selected
through the registry in :mod:`repro.backends` and dispatched by the plan
executor, so every engine (and the quote service, and every fleet
worker) gains a compiled kernel with zero engine-code changes.

The contract is deliberately *optional* at every point: a backend
implements the cases it can accelerate and returns ``None``/``False``
for everything else, and the dispatch sites in ``core/kernels.py`` fall
back to the vectorised numpy path — which is therefore both the
permanent correctness oracle and the universal fallback.  Concretely,
compiled backends only ever see the stacked-direct, non-secondary path
(one ``(n_elts, catalog + 1)`` table, CSR ids/offsets); non-direct
lookup kinds, the dense kernel and the counter-based secondary streams
always run the oracle, so "fallback" is not an error state but the
normal route for everything outside the hot loop.

Numerics policy
---------------
The numpy path is pinned bit-for-bit by the golden-YLT net.  Compiled
backends replicate its exact operation order — per-occurrence terms
rounded in the working dtype (``v*fx; v-ret; max 0; min lim; v*share``),
sequential accumulation across ELT rows in the working dtype, float64
segment accumulation, float64 aggregate clamp — so they *target*
bit-for-bit equality; :meth:`KernelBackend.tolerance` declares the
pinned tolerance parity tests hold each backend to (``(0, 0)`` for the
oracle itself).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.data.layer import LayerTerms
    from repro.lookup.combined import StackedDirectTable


class KernelBackend:
    """One implementation of the fused ragged kernel's hot loop.

    Subclass and register with :func:`repro.backends.register_backend`
    to add a backend.  Implement :meth:`layer_losses` (the full fused
    pass, steps 1–4 of Algorithm 1) and — optionally —
    :meth:`fill_combined` (the layer-term-independent prefix, steps 1–2,
    which the quote service caches per ELT set).  Both may decline any
    call by returning ``None``/``False``; the caller then runs the
    numpy oracle path, so a partial backend is always correct.
    """

    #: registry name (the value of ``backend=`` / ``REPRO_KERNEL_BACKEND``)
    name: str = "abstract"
    #: True for backends that JIT/AOT-compile their kernels — the
    #: ``auto`` selector prefers compiled backends when available.
    compiled: bool = False
    #: selection priority under ``auto`` (higher wins among available).
    priority: int = 0

    @classmethod
    def available(cls) -> bool:
        """Whether this backend can run in the current process."""
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        """Human-readable reason :meth:`available` is False (or None)."""
        return None

    def tolerance(self, dtype: np.dtype | type) -> Tuple[float, float]:
        """Pinned ``(rtol, atol)`` vs the numpy oracle for ``dtype``.

        Parity tests hold the backend to these; the oracle declares
        ``(0.0, 0.0)`` (bit-for-bit).
        """
        return (0.0, 0.0)

    # ------------------------------------------------------------------
    # The two dispatchable operations
    # ------------------------------------------------------------------
    def layer_losses(
        self,
        event_ids: np.ndarray,
        offsets: np.ndarray,
        stacked: "StackedDirectTable",
        layer_terms: "LayerTerms",
    ) -> np.ndarray | None:
        """Steps 1–4 fused over one CSR trial block (or ``None``).

        Must produce the per-trial year losses as a ``(n_trials,)``
        float64 vector matching the numpy oracle within
        :meth:`tolerance`.  Returning ``None`` declines the call and
        the caller falls back to the oracle path.
        """
        return None

    def fill_combined(
        self,
        event_ids: np.ndarray,
        stacked: "StackedDirectTable",
        out: np.ndarray,
    ) -> bool:
        """Steps 1–2 only: combined per-occurrence losses into ``out``.

        ``out`` is a 1-D slice in the working dtype (= the stacked
        table's dtype).  Return ``True`` when filled, ``False`` to
        decline (caller falls back).
        """
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(KernelBackend):
    """The oracle: the vectorised numpy path of :mod:`repro.core.kernels`.

    Its :meth:`layer_losses`/:meth:`fill_combined` decline every call on
    purpose — the dispatch sites' fallback *is* the numpy implementation
    (one copy of the oracle code, in ``core/kernels.py``, not two).
    Selecting ``backend="numpy"`` therefore means "run exactly the
    golden-pinned path", which is also what every other backend falls
    back to for the cases it does not implement.
    """

    name = "numpy"
    compiled = False
    priority = 0

    @classmethod
    def available(cls) -> bool:
        return True
