"""Numba backend: the fused ragged hot loop as one ``@njit`` pass.

The numpy oracle's stacked-direct path runs four vectorised stages per
occurrence chunk — fused gather, broadcast financial terms, column sum,
then (per batch) the occurrence clamp and ``reduceat`` segment sums —
each a separate trip through the interpreter with its own scratch
traffic.  This backend collapses all of it into **one**
``@njit(parallel=True)`` pass over the CSR block: for each trial (a
``prange`` lane) it walks the trial's occurrences, and per occurrence
walks the stacked table's ELT rows applying each ELT's financial terms
scalar-wise, clamps the combined value by the occurrence terms, and
accumulates the float64 year total, finishing with the aggregate clamp.
No intermediate block — not even the gathered ``(n_elts, chunk)``
scratch — is ever materialised.

Bit-for-bit parity with the oracle is a design goal, not an accident:

* the combined per-occurrence loss accumulates across ELT rows
  *sequentially in the working dtype*, matching ``np.sum(block, axis=0)``
  over a C-contiguous block (whose outer-axis reduction is sequential,
  not pairwise);
* each financial term rounds in the working dtype in the oracle's
  operation order (``v*fx; v-ret; max 0; min lim; v*share``), with the
  same identity-skip flags, which are numeric no-ops but are mirrored
  anyway;
* occurrence retention/limit are pre-cast to the working dtype (what
  NEP-50 weak-scalar promotion does inside the numpy ufunc calls);
* segment sums accumulate the working-dtype values into float64
  sequentially (``np.add.reduceat(..., dtype=np.float64)``'s loop), and
  the aggregate clamp runs in float64.

Parallelism is *across trials only* (independent output slots), so
results are deterministic for any thread count.  The parity suite still
pins the backend to a tiny tolerance (see :meth:`NumbaBackend.tolerance`)
as policy rather than relying on the bit-exactness argument.

The module imports cleanly without Numba installed; compilation is
deferred to first dispatch and any failure (missing package, LLVM
mismatch, unsupported signature) is reported once via
:mod:`warnings` and turns every subsequent call into a decline — the
caller's numpy fallback keeps results correct.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from repro.backends.base import KernelBackend

_KERNEL_SOURCE_DOC = """Compiled lazily on first dispatch; see _build_kernels."""


def _build_kernels():
    """Compile and return the njit kernels (raises if Numba is unusable)."""
    from numba import njit, prange  # deferred: optional dependency

    @njit(parallel=True, fastmath=False, cache=False)
    def fused_layer(
        ids,
        offsets,
        table,
        fx,
        ret,
        lim,
        share,
        use_fx,
        use_ret,
        use_lim,
        use_share,
        occ_ret,
        occ_lim,
        use_occ_lim,
        agg_ret,
        agg_lim,
        use_agg_lim,
        zero,
        year,
    ):
        n_trials = offsets.shape[0] - 1
        n_elts = table.shape[0]
        for t in prange(n_trials):
            agg = 0.0
            for k in range(offsets[t], offsets[t + 1]):
                eid = ids[k]
                comb = zero
                for e in range(n_elts):
                    v = table[e, eid]
                    if use_fx:
                        v = v * fx[e]
                    if use_ret:
                        v = v - ret[e]
                        if v < zero:
                            v = zero
                    if use_lim and v > lim[e]:
                        v = lim[e]
                    if use_share:
                        v = v * share[e]
                    comb = comb + v
                comb = comb - occ_ret
                if comb < zero:
                    comb = zero
                if use_occ_lim and comb > occ_lim:
                    comb = occ_lim
                agg = agg + comb
            a = agg - agg_ret
            if a < 0.0:
                a = 0.0
            if use_agg_lim and a > agg_lim:
                a = agg_lim
            year[t] = a
        return year

    @njit(parallel=True, fastmath=False, cache=False)
    def fill_combined(
        ids,
        table,
        fx,
        ret,
        lim,
        share,
        use_fx,
        use_ret,
        use_lim,
        use_share,
        zero,
        out,
    ):
        n_elts = table.shape[0]
        for k in prange(ids.shape[0]):
            eid = ids[k]
            comb = zero
            for e in range(n_elts):
                v = table[e, eid]
                if use_fx:
                    v = v * fx[e]
                if use_ret:
                    v = v - ret[e]
                    if v < zero:
                        v = zero
                if use_lim and v > lim[e]:
                    v = lim[e]
                if use_share:
                    v = v * share[e]
                comb = comb + v
            out[k] = comb
        return out

    return fused_layer, fill_combined


class NumbaBackend(KernelBackend):
    """JIT-compiled fused kernel over the stacked-direct ragged path."""

    name = "numba"
    compiled = True
    priority = 10

    def __init__(self) -> None:
        self._kernels = None
        self._broken: str | None = None

    # ------------------------------------------------------------------
    @classmethod
    def available(cls) -> bool:
        try:
            import numba  # noqa: F401  (availability probe only)
        except Exception:
            return False
        return True

    @classmethod
    def unavailable_reason(cls) -> str | None:
        try:
            import numba  # noqa: F401
        except Exception as exc:
            return f"numba import failed: {exc!r} (pip install 'repro[compiled]')"
        return None

    def tolerance(self, dtype: np.dtype | type):
        # Designed bit-exact (see module docstring); the pinned policy
        # tolerance leaves last-ulp slack per working precision.
        if np.dtype(dtype) == np.float32:
            return (1e-6, 0.0)
        return (1e-12, 0.0)

    # ------------------------------------------------------------------
    def _compiled(self):
        """The kernel pair, compiling on first use; None once broken."""
        if self._broken is not None:
            return None
        if self._kernels is None:
            try:
                self._kernels = _build_kernels()
            except Exception as exc:  # pragma: no cover - env specific
                self._broken = repr(exc)
                warnings.warn(
                    "numba kernel backend failed to compile and is "
                    f"disabled for this process ({self._broken}); "
                    "falling back to the numpy oracle",
                    RuntimeWarning,
                    stacklevel=3,
                )
                return None
        return self._kernels

    @staticmethod
    def _term_args(stacked, work: np.dtype):
        table, fx, ret, lim, share, flags = stacked.broadcast_arrays()
        use_fx, use_ret, use_lim, use_share = flags
        return (
            table,
            fx,
            ret,
            lim,
            share,
            use_fx,
            use_ret,
            use_lim,
            use_share,
        )

    def layer_losses(self, event_ids, offsets, stacked, layer_terms):
        kernels = self._compiled()
        if kernels is None:
            return None
        fused_layer, _ = kernels
        work = stacked.dtype
        zero = work.type(0.0)
        # Occurrence terms round in the working dtype (the oracle's
        # ufunc calls cast these weak scalars the same way); aggregate
        # terms stay float64 (applied to the float64 segment sums).
        occ_ret = work.type(layer_terms.occ_retention)
        use_occ_lim = math.isfinite(layer_terms.occ_limit)
        occ_lim = work.type(layer_terms.occ_limit if use_occ_lim else 0.0)
        use_agg_lim = math.isfinite(layer_terms.agg_limit)
        agg_lim = float(layer_terms.agg_limit if use_agg_lim else 0.0)
        year = np.empty(offsets.shape[0] - 1, dtype=np.float64)
        try:
            return fused_layer(
                np.ascontiguousarray(event_ids),
                np.ascontiguousarray(offsets),
                *self._term_args(stacked, work),
                occ_ret,
                occ_lim,
                use_occ_lim,
                float(layer_terms.agg_retention),
                agg_lim,
                use_agg_lim,
                zero,
                year,
            )
        except Exception as exc:  # pragma: no cover - env specific
            self._broken = repr(exc)
            warnings.warn(
                "numba fused kernel raised and is disabled for this "
                f"process ({self._broken}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def fill_combined(self, event_ids, stacked, out):
        kernels = self._compiled()
        if kernels is None:
            return False
        _, fill = kernels
        work = stacked.dtype
        try:
            fill(
                np.ascontiguousarray(event_ids),
                *self._term_args(stacked, work),
                work.type(0.0),
                out,
            )
        except Exception as exc:  # pragma: no cover - env specific
            self._broken = repr(exc)
            warnings.warn(
                "numba fill-combined kernel raised and is disabled for "
                f"this process ({self._broken}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
        return True
