"""Optional CuPy backend: the fused ragged pass on a real GPU.

Where :mod:`repro.gpusim` *models* the paper's Tesla M2090s, this
backend runs the stacked-direct hot loop on actual CUDA hardware when
``cupy`` is importable — the same dispatch contract as the Numba
backend, so it is selected with ``backend="cupy"`` /
``REPRO_KERNEL_BACKEND=cupy`` and declines (→ numpy oracle) everywhere
it cannot help.

Numerics: device reductions do not replicate numpy's sequential
accumulation order, so unlike the Numba backend this one does *not*
target bit-for-bit equality; its :meth:`tolerance` is correspondingly
looser.  The implementation mirrors the oracle's operation order
(gather → in-place terms → column sum → occurrence clamp → float64
segment sums → aggregate clamp) with segment sums via the
cumsum-at-offsets identity (CuPy has no ``add.reduceat``).

Per-call host↔device transfers make this profitable only for large
blocks; it exists primarily as the registry's proof that a third,
non-CPU backend slots in behind the plan layer unchanged, per the
GPU-vs-Phi multi-backend comparison frame in PAPERS.md.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from repro.backends.base import KernelBackend


class CupyBackend(KernelBackend):
    """CUDA execution of the stacked-direct fused pass via CuPy."""

    name = "cupy"
    compiled = True
    # Below numba: per-call H2D/D2H transfers lose on the CPU-sized
    # blocks the executor dispatches, so ``auto`` must not pick this
    # over the JIT CPU kernel; it is an explicit opt-in.
    priority = 5

    def __init__(self) -> None:
        self._table_cache: dict[int, object] = {}
        self._broken: str | None = None

    @classmethod
    def available(cls) -> bool:
        try:
            import cupy

            return cupy.cuda.runtime.getDeviceCount() > 0
        except Exception:
            return False

    @classmethod
    def unavailable_reason(cls) -> str | None:
        try:
            import cupy
        except Exception as exc:
            return f"cupy import failed: {exc!r}"
        try:
            if cupy.cuda.runtime.getDeviceCount() < 1:
                return "cupy importable but no CUDA device present"
        except Exception as exc:  # pragma: no cover - driver specific
            return f"CUDA runtime unavailable: {exc!r}"
        return None

    def tolerance(self, dtype: np.dtype | type):
        if np.dtype(dtype) == np.float32:
            return (1e-4, 0.0)
        return (1e-9, 0.0)

    # ------------------------------------------------------------------
    def _device_table(self, cp, stacked):
        """The stacked table uploaded once per (process, table) pair."""
        key = id(stacked)
        entry = self._table_cache.get(key)
        if entry is None:
            table, fx, ret, lim, share, flags = stacked.broadcast_arrays()
            entry = (
                cp.asarray(table),
                cp.asarray(fx)[:, None],
                cp.asarray(ret)[:, None],
                cp.asarray(lim)[:, None],
                cp.asarray(share)[:, None],
                flags,
            )
            self._table_cache[key] = entry
        return entry

    def _combined(self, cp, event_ids, stacked):
        table, fx, ret, lim, share, flags = self._device_table(cp, stacked)
        use_fx, use_ret, use_lim, use_share = flags
        ids = cp.asarray(event_ids)
        block = cp.take(table, ids, axis=1)
        if use_fx:
            block *= fx
        if use_ret:
            block -= ret
            cp.maximum(block, 0.0, out=block)
        if use_lim:
            cp.minimum(block, lim, out=block)
        if use_share:
            block *= share
        return block.sum(axis=0)

    def layer_losses(self, event_ids, offsets, stacked, layer_terms):
        if self._broken is not None:
            return None
        try:
            import cupy as cp

            combined = self._combined(cp, event_ids, stacked)
            combined -= stacked.dtype.type(layer_terms.occ_retention)
            cp.maximum(combined, 0.0, out=combined)
            if math.isfinite(layer_terms.occ_limit):
                cp.minimum(
                    combined,
                    stacked.dtype.type(layer_terms.occ_limit),
                    out=combined,
                )
            # Segment sums via the cumsum identity: sum of values in
            # [start, stop) = csum[stop] - csum[start] with csum[0] = 0.
            csum = cp.zeros(combined.size + 1, dtype=cp.float64)
            cp.cumsum(combined, dtype=cp.float64, out=csum[1:])
            offs = cp.asarray(offsets)
            totals = csum[offs[1:]] - csum[offs[:-1]]
            totals -= float(layer_terms.agg_retention)
            cp.maximum(totals, 0.0, out=totals)
            if math.isfinite(layer_terms.agg_limit):
                cp.minimum(totals, float(layer_terms.agg_limit), out=totals)
            return cp.asnumpy(totals)
        except Exception as exc:  # pragma: no cover - needs CUDA
            self._broken = repr(exc)
            warnings.warn(
                "cupy backend raised and is disabled for this process "
                f"({self._broken}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            return None

    def fill_combined(self, event_ids, stacked, out):
        if self._broken is not None:
            return False
        try:
            import cupy as cp

            out[:] = cp.asnumpy(self._combined(cp, event_ids, stacked))
            return True
        except Exception as exc:  # pragma: no cover - needs CUDA
            self._broken = repr(exc)
            warnings.warn(
                "cupy backend raised and is disabled for this process "
                f"({self._broken}); falling back to numpy",
                RuntimeWarning,
                stacklevel=2,
            )
            return False
