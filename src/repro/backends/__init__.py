"""Kernel-backend registry: ``numpy`` | ``numba`` | optional ``cupy``.

The plan executor (and every other dispatch site of the fused ragged
kernel — the quote service's base-vector fill, the fleet worker's
segment execution, the GPU engines' functional compute) resolves its
``backend=`` argument here, so **every** engine gains compiled kernels
with zero engine-code changes.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument — a registry name or a
   :class:`~repro.backends.base.KernelBackend` instance;
2. the ``REPRO_KERNEL_BACKEND`` environment variable;
3. the default: ``numpy``, the permanent oracle.

The special name ``auto`` picks the best *available* backend (highest
``priority``; compiled backends outrank the oracle).  A requested
backend that is unavailable — Numba not installed, no CUDA device —
falls back to ``numpy`` and says so **once** per process via
``warnings`` and the ``repro.backends`` logger: fallback is
silent-correct (results are oracle results) and loud-informative (you
are told you are not getting the compiled path, and why).  Unknown
names raise when passed explicitly (a programmer error) but only warn
when they arrive via the environment (a deployment typo must not take
the service down).

Backend identity is deliberately **excluded** from plan fingerprints,
engine capabilities, store keys and fleet manifests: backends are held
to the oracle's results (see ``KernelBackend.tolerance``), so a segment
computed by a numba worker and one computed by a numpy worker are the
same content — mixed-backend fleets assemble digest-identical YLTs,
which ``tests/test_backends.py`` pins.
"""

from __future__ import annotations

import logging
import os
import threading
import warnings
from typing import Dict, List, Type

from repro.backends.base import KernelBackend, NumpyBackend
from repro.backends.cupy_backend import CupyBackend
from repro.backends.numba_backend import NumbaBackend

__all__ = [
    "KERNEL_BACKEND_ENV",
    "KernelBackend",
    "NumpyBackend",
    "NumbaBackend",
    "CupyBackend",
    "available_backends",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "unregister_backend",
]

#: environment variable consulted when no explicit ``backend=`` is given.
KERNEL_BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: sentinel name selecting the best available backend.
AUTO = "auto"

logger = logging.getLogger("repro.backends")

_LOCK = threading.Lock()
_REGISTRY: Dict[str, Type[KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
#: (requested, resolved) pairs already announced — log/warn once each.
_ANNOUNCED: set = set()


def register_backend(
    cls: Type[KernelBackend], replace: bool = False
) -> Type[KernelBackend]:
    """Add a backend class to the registry (usable as a decorator).

    ``replace=True`` allows overriding an existing name (tests register
    instrumented doubles); otherwise a duplicate name raises.
    """
    name = cls.name
    with _LOCK:
        if not replace and name in _REGISTRY and _REGISTRY[name] is not cls:
            raise ValueError(f"backend {name!r} is already registered")
        _REGISTRY[name] = cls
        _INSTANCES.pop(name, None)
    return cls


def unregister_backend(name: str) -> None:
    """Remove a backend (test cleanup; unknown names are a no-op)."""
    with _LOCK:
        _REGISTRY.pop(name, None)
        _INSTANCES.pop(name, None)


register_backend(NumpyBackend)
register_backend(NumbaBackend)
register_backend(CupyBackend)


def backend_names() -> List[str]:
    """All registered backend names (available or not)."""
    with _LOCK:
        return sorted(_REGISTRY)


def available_backends() -> List[str]:
    """Names of the backends that can run in this process, best first."""
    with _LOCK:
        classes = list(_REGISTRY.values())
    usable = [cls for cls in classes if cls.available()]
    usable.sort(key=lambda cls: (-cls.priority, cls.name))
    return [cls.name for cls in usable]


def get_backend(name: str) -> KernelBackend:
    """The memoised instance of a registered backend (no availability
    check — callers that bypass :func:`resolve_backend` own the risk)."""
    with _LOCK:
        cls = _REGISTRY.get(name)
        if cls is None:
            raise ValueError(
                f"unknown kernel backend {name!r}; registered: "
                f"{sorted(_REGISTRY)}"
            )
        instance = _INSTANCES.get(name)
        if instance is None:
            instance = _INSTANCES[name] = cls()
        return instance


def _announce(requested: str, resolved: str, detail: str | None) -> None:
    """Log the selection once; warn once when it is a fallback."""
    key = (requested, resolved, bool(detail))
    with _LOCK:
        if key in _ANNOUNCED:
            return
        _ANNOUNCED.add(key)
    if detail:
        warnings.warn(detail, RuntimeWarning, stacklevel=4)
        logger.warning("%s", detail)
    else:
        logger.info(
            "kernel backend %r selected (requested %r)", resolved, requested
        )


def resolve_backend(
    backend: "KernelBackend | str | None" = None,
) -> KernelBackend:
    """Resolve a ``backend=`` value to a usable backend instance.

    Precedence: explicit argument > ``REPRO_KERNEL_BACKEND`` > numpy.
    Unavailable (or env-misspelled) requests fall back to the numpy
    oracle with a once-per-process warning; ``"auto"`` picks the best
    available backend.  Instances pass through untouched, so hot paths
    may resolve once and hand the instance down.
    """
    if isinstance(backend, KernelBackend):
        return backend
    requested = backend
    from_env = False
    if requested is None:
        env = os.environ.get(KERNEL_BACKEND_ENV, "").strip()
        if env:
            requested, from_env = env, True
    if requested is None or requested == NumpyBackend.name:
        return get_backend(NumpyBackend.name)

    if requested == AUTO:
        best = available_backends()[0]
        _announce(AUTO, best, None)
        return get_backend(best)

    with _LOCK:
        cls = _REGISTRY.get(requested)
    if cls is None:
        message = (
            f"unknown kernel backend {requested!r} "
            f"(registered: {backend_names()}); using 'numpy'"
        )
        if not from_env:
            raise ValueError(message)
        _announce(requested, NumpyBackend.name, message)
        return get_backend(NumpyBackend.name)
    if not cls.available():
        reason = cls.unavailable_reason() or "unavailable"
        _announce(
            requested,
            NumpyBackend.name,
            f"kernel backend {requested!r} requested but unavailable "
            f"({reason}); falling back to the numpy oracle",
        )
        return get_backend(NumpyBackend.name)
    _announce(requested, requested, None)
    return get_backend(requested)


def active_backend_name(backend: "KernelBackend | str | None" = None) -> str:
    """The name :func:`resolve_backend` would dispatch to (for meta/stats)."""
    return resolve_backend(backend).name
