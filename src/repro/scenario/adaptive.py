"""Adaptive early stopping for scenario campaigns.

A campaign prices each scenario in staged trial prefixes (25% → 50% →
100% by default).  After each stage it evaluates the tail metrics the
paper names as YLT products — PML at a return period and TVaR at a
confidence — and stops early once consecutive stages agree to within a
relative tolerance.  Because stages are *nested prefixes* of the same
seeded trial set aligned to the segment stride, every earlier stage's
segments are reused verbatim from the store by the next stage: the cost
of not stopping is only the new suffix.

The declared guarantee (benchmark-gated): a scenario stopped by
:class:`EarlyStopPolicy` reports PML/TVaR within ``policy.tolerance``
relative error of its full-trial run.  Stability between consecutive
stages bounds the drift per doubling at ``rel_tol``; ``tolerance`` is
``2 * rel_tol`` to cover the remaining (geometrically shrinking)
stage-to-full drift.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Sequence, Tuple

import numpy as np

from repro.metrics.convergence import pml_relative_error
from repro.metrics.pml import pml
from repro.metrics.tvar import tail_value_at_risk


@dataclass(frozen=True)
class EarlyStopPolicy:
    """When may a scenario stop before its full trial budget?

    Attributes
    ----------
    return_period_years / tvar_confidence:
        The tail metrics watched for stability (and reported per
        scenario).
    rel_tol:
        Maximum relative change of *both* PML and TVaR between two
        consecutive stages for the later stage to count as stable.
    stage_fractions:
        Nested prefix fractions of the scenario's trial set; must be
        increasing and end at 1.0 (the full run is always reachable).
    min_trials:
        Never stop below this many trials, and never below the return
        period (an unresolvable quantile is not "stable").
    """

    return_period_years: float = 100.0
    tvar_confidence: float = 0.99
    rel_tol: float = 0.05
    stage_fractions: Tuple[float, ...] = (0.25, 0.5, 1.0)
    min_trials: int = 200

    def __post_init__(self) -> None:
        if self.return_period_years <= 1.0:
            raise ValueError("return period must exceed 1 year")
        if not 0.0 < self.tvar_confidence < 1.0:
            raise ValueError("tvar confidence must be in (0, 1)")
        if self.rel_tol <= 0.0:
            raise ValueError(f"rel_tol must be > 0, got {self.rel_tol}")
        fractions = tuple(float(f) for f in self.stage_fractions)
        if not fractions or fractions[-1] != 1.0:
            raise ValueError(
                f"stage fractions must end at 1.0, got {fractions}"
            )
        for prev, cur in zip(fractions, fractions[1:]):
            if not 0.0 < prev < cur <= 1.0:
                raise ValueError(
                    f"stage fractions must be increasing in (0, 1], got "
                    f"{fractions}"
                )
        object.__setattr__(self, "stage_fractions", fractions)
        if self.min_trials < 2:
            raise ValueError("min_trials must be >= 2")

    @property
    def tolerance(self) -> float:
        """Declared early-stop guarantee vs the full run (2 × rel_tol)."""
        return 2.0 * self.rel_tol

    def as_config(self) -> Dict[str, Any]:
        """Canonical plain-value dict (campaign fingerprint input)."""
        return {
            "return_period_years": float(self.return_period_years),
            "tvar_confidence": float(self.tvar_confidence),
            "rel_tol": float(self.rel_tol),
            "stage_fractions": tuple(self.stage_fractions),
            "min_trials": int(self.min_trials),
        }

    def stage_counts(self, n_trials: int, stride: int) -> Tuple[int, ...]:
        """Stage trial counts: fractions rounded *up* to stride multiples.

        Aligning every stage boundary to the segment stride makes each
        stage's plan a strict prefix of the next — stage N+1 finds all
        of stage N's segments in the store and computes only the suffix.
        """
        counts = []
        for fraction in self.stage_fractions:
            raw = max(self.min_trials, int(np.ceil(fraction * n_trials)))
            aligned = int(np.ceil(raw / stride)) * stride
            counts.append(min(n_trials, aligned))
        # Rounding can collapse neighbouring stages on small tables.
        unique = sorted(set(counts))
        return tuple(unique)

    def tail_metrics(self, annual_losses: np.ndarray) -> Dict[str, float]:
        """The watched metrics of one stage's portfolio loss series."""
        losses = np.asarray(annual_losses, dtype=np.float64)
        return {
            "pml": pml(losses, self.return_period_years),
            "tvar": tail_value_at_risk(losses, self.tvar_confidence),
            "pml_rel_error": pml_relative_error(
                losses, self.return_period_years
            ),
        }

    def stable(
        self, previous: Dict[str, float], current: Dict[str, float]
    ) -> bool:
        """Did PML and TVaR both move ≤ rel_tol between two stages?"""
        for metric in ("pml", "tvar"):
            prev, cur = previous[metric], current[metric]
            scale = max(abs(prev), abs(cur))
            if scale == 0.0:
                continue  # both zero: perfectly stable
            if abs(cur - prev) / scale > self.rel_tol:
                return False
        return True

    def should_stop(
        self, history: Sequence[Dict[str, float]], trials_used: int
    ) -> bool:
        """Stop after this stage?  Needs ≥2 stages, resolution, stability."""
        if len(history) < 2:
            return False
        if trials_used < max(self.min_trials, self.return_period_years):
            return False
        return self.stable(history[-2], history[-1])
