"""Scenario compilation: specs → concrete perturbed analysis inputs.

:func:`compile_scenario` turns a declarative
:class:`~repro.scenario.spec.Scenario` plus a baseline workload into the
concrete :class:`~repro.data.yet.YearEventTable` /
:class:`~repro.data.layer.Portfolio` pair its sweep executes.  The
compile step is where the delta-planning payoff is engineered:

* transforms that perturb a *trial window* rebuild only that window's
  occurrence arrays — every trial outside it keeps its exact bytes, so
  the position-free slice fingerprints of
  :func:`repro.store.keys.yet_slice_fingerprint` (and hence the
  content-addressed segment keys) of untouched segments equal the
  baseline's, and a re-sweep recomputes only the window;
* portfolio-side transforms (severity overlays) change layer
  fingerprints and honestly recompute the layers they touch.

Stochastic transforms draw from per-transform child streams of the
scenario seed (``SeedSequence(scenario.seed, spawn_key=(position,))``),
so the same spec + seed compiles to byte-identical inputs in any
process — the determinism every content-addressed key depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.catalog import EventCatalog, PerilRegion
from repro.data.elt import EventLossTable
from repro.data.layer import Portfolio
from repro.data.yet import OFFSET_DTYPE, YearEventTable
from repro.scenario.spec import Scenario


@dataclass
class ScenarioInputs:
    """Mutable compile state threaded through a scenario's transforms."""

    catalog: EventCatalog
    yet: YearEventTable
    portfolio: Portfolio
    touched: List[Tuple[int, int]] = field(default_factory=list)

    def mark_touched(self, start: int, stop: int) -> None:
        """Record a perturbed trial range (provenance, not correctness)."""
        self.touched.append((int(start), int(stop)))


@dataclass(frozen=True)
class CompiledScenario:
    """A scenario's concrete inputs plus its provenance."""

    scenario: Scenario
    fingerprint: str
    catalog: EventCatalog
    yet: YearEventTable
    portfolio: Portfolio
    #: upper-bound fraction of baseline segments the spec dirties
    perturbed_fraction: float
    #: trial ranges the transforms reported perturbing (best effort)
    touched: Tuple[Tuple[int, int], ...]

    @property
    def n_trials(self) -> int:
        return self.yet.n_trials


def compile_scenario(scenario: Scenario, workload) -> CompiledScenario:
    """Apply a scenario's transforms to a baseline workload.

    ``workload`` is anything with ``catalog`` / ``yet`` / ``portfolio``
    attributes (a :class:`~repro.data.generator.Workload`).  The
    baseline objects are never mutated: transforms build new tables,
    sharing baseline array memory where a range is untouched.
    """
    state = ScenarioInputs(
        catalog=workload.catalog,
        yet=workload.yet,
        portfolio=workload.portfolio,
    )
    base_trials = workload.yet.n_trials
    for position, transform in enumerate(scenario.transforms):
        rng = np.random.default_rng(
            np.random.SeedSequence(int(scenario.seed), spawn_key=(position,))
        )
        transform.apply(state, rng)
    return CompiledScenario(
        scenario=scenario,
        fingerprint=scenario.fingerprint(),
        catalog=state.catalog,
        yet=state.yet,
        portfolio=state.portfolio,
        perturbed_fraction=scenario.perturbed_fraction(base_trials),
        touched=tuple(state.touched),
    )


# ----------------------------------------------------------------------
# Transform primitives (called by the spec classes' ``apply``)
# ----------------------------------------------------------------------
def _peril_index_of(
    catalog: EventCatalog, event_ids: np.ndarray
) -> np.ndarray:
    """Peril-block index of each event id (catalogs tile contiguously)."""
    starts = np.array([p.first_event_id for p in catalog.perils])
    return np.searchsorted(starts, event_ids, side="right") - 1


def resample_occurrences(
    yet: YearEventTable,
    catalog: EventCatalog,
    factors: Dict[str, float],
    trial_start: int,
    trial_stop: int,
    rng: np.random.Generator,
) -> YearEventTable:
    """Scale matched perils' occurrence frequency inside a trial window.

    Each occurrence of a peril with factor ``f`` is kept/replicated
    ``floor(f)`` times plus one more with probability ``frac(f)`` —
    expectation exactly ``f``, deterministic given the stream.  Replicas
    are adjacent to the original at the same timestamp (per-trial
    timestamp order stays valid).  One uniform draw is consumed per
    window occurrence regardless of its factor, so adding a family to
    the overlay never shifts another family's draws.

    Trials outside ``[trial_start, trial_stop)`` share the baseline's
    array bytes: their rebased slice fingerprints — and therefore their
    content-addressed segment keys — are unchanged.
    """
    if not 0 <= trial_start < trial_stop <= yet.n_trials:
        raise ValueError(
            f"invalid overlay window [{trial_start}, {trial_stop}) of "
            f"{yet.n_trials} trials"
        )
    if not catalog.perils:
        raise ValueError("occurrence resampling needs a peril-tagged catalog")
    lo = int(yet.offsets[trial_start])
    hi = int(yet.offsets[trial_stop])
    win_ids = yet.event_ids[lo:hi]
    win_times = yet.timestamps[lo:hi]

    per_peril = np.array(
        [float(factors.get(p.name, 1.0)) for p in catalog.perils],
        dtype=np.float64,
    )
    occ_factor = (
        per_peril[_peril_index_of(catalog, win_ids)]
        if win_ids.size
        else np.empty(0, dtype=np.float64)
    )
    base = np.floor(occ_factor)
    extra = rng.random(occ_factor.size) < (occ_factor - base)
    repeats = (base + extra).astype(np.int64)

    window_trials = trial_stop - trial_start
    trial_index = np.repeat(
        np.arange(window_trials, dtype=np.int64),
        np.diff(yet.offsets[trial_start : trial_stop + 1]),
    )
    new_counts = np.bincount(
        trial_index, weights=repeats, minlength=window_trials
    ).astype(np.int64)

    new_ids = np.repeat(win_ids, repeats)
    new_times = np.repeat(win_times, repeats)

    offsets = np.empty(yet.n_trials + 1, dtype=OFFSET_DTYPE)
    offsets[: trial_start + 1] = yet.offsets[: trial_start + 1]
    np.cumsum(new_counts, out=offsets[trial_start + 1 : trial_stop + 1])
    offsets[trial_start + 1 : trial_stop + 1] += lo
    delta = int(offsets[trial_stop]) - hi
    offsets[trial_stop + 1 :] = yet.offsets[trial_stop + 1 :] + delta

    return YearEventTable(
        event_ids=np.concatenate(
            [yet.event_ids[:lo], new_ids, yet.event_ids[hi:]]
        ),
        timestamps=np.concatenate(
            [yet.timestamps[:lo], new_times, yet.timestamps[hi:]]
        ),
        offsets=offsets,
    )


def scale_severities(
    portfolio: Portfolio,
    perils: Sequence[PerilRegion],
    factor: float,
) -> Portfolio:
    """Portfolio with matched perils' ELT losses scaled by ``factor``.

    ELTs with no matched events are shared, not copied; layers keep
    their ids/terms.  Layer fingerprints of affected layers change —
    their segments recompute, which is the honest cost of the shock.
    """
    scaled = Portfolio()
    for elt_id, elt in portfolio.elts.items():
        mask = np.zeros(elt.event_ids.shape, dtype=bool)
        for peril in perils:
            mask |= (elt.event_ids >= peril.first_event_id) & (
                elt.event_ids <= peril.last_event_id
            )
        if mask.any():
            losses = elt.losses.copy()
            losses[mask] *= factor
            elt = EventLossTable(
                elt_id=elt.elt_id,
                event_ids=elt.event_ids,
                losses=losses,
                terms=elt.terms,
            )
        scaled.add_elt(elt)
    for layer in portfolio.layers:
        scaled.add_layer(layer)
    return scaled


def tail_proxy(
    yet: YearEventTable,
    catalog: EventCatalog,
    perils: Sequence[PerilRegion],
) -> np.ndarray:
    """Cheap per-trial severity proxy: summed expected peril severity.

    The expected ground-up loss of a lognormal(mu, sigma) event is
    ``exp(mu + sigma^2 / 2)``; summing it over a trial's matched
    occurrences ranks trials by how much heavy-family activity they
    contain — no lookups, no kernel, fully deterministic.
    """
    weights = np.zeros(len(catalog.perils), dtype=np.float64)
    matched = {p.name for p in perils}
    for i, peril in enumerate(catalog.perils):
        if peril.name in matched:
            weights[i] = np.exp(
                peril.severity_mu + 0.5 * peril.severity_sigma**2
            )
    if yet.n_occurrences == 0:
        return np.zeros(yet.n_trials, dtype=np.float64)
    occ_weight = weights[_peril_index_of(catalog, yet.event_ids)]
    trial_index = np.repeat(
        np.arange(yet.n_trials, dtype=np.int64), yet.events_per_trial
    )
    return np.bincount(
        trial_index, weights=occ_weight, minlength=yet.n_trials
    )


def select_tail_trials(
    yet: YearEventTable,
    catalog: EventCatalog,
    perils: Sequence[PerilRegion],
    fraction: float,
) -> YearEventTable:
    """The proxy-worst ``fraction`` of trials, original order preserved.

    Selection is by descending :func:`tail_proxy` with stable
    tie-breaking on trial index, so the same spec always keeps the same
    trials.
    """
    if not catalog.perils:
        raise ValueError("tail seeking needs a peril-tagged catalog")
    proxy = tail_proxy(yet, catalog, perils)
    k = max(1, int(round(fraction * yet.n_trials)))
    order = np.argsort(-proxy, kind="stable")
    selected = np.sort(order[:k])

    counts = yet.events_per_trial[selected]
    starts = yet.offsets[:-1][selected]
    total = int(counts.sum())
    # Gather each kept trial's occurrence range without a Python loop:
    # repeat the range starts per count and add within-trial ranks.
    rank_base = np.concatenate(([0], np.cumsum(counts)[:-1]))
    idx = np.repeat(starts, counts) + (
        np.arange(total, dtype=np.int64) - np.repeat(rank_base, counts)
    )
    offsets = np.zeros(k + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return YearEventTable(
        event_ids=yet.event_ids[idx],
        timestamps=yet.timestamps[idx],
        offsets=offsets,
    )
