"""Declarative scenario specs: frozen, seeded, fingerprintable.

A *scenario* is a named, seeded list of catalog transformations applied
to a baseline workload — the declarative unit of what-if analysis.  A
*scenario set* is an ordered family of scenarios evaluated against one
portfolio (historical replays, crisis overlays, climate-conditioned
rates, adversarial tail hunts).  Both are frozen dataclasses in the
benchmark-definition idiom: every knob is data, construction validates,
and identity is a canonical content fingerprint derived with the same
type-tagged serialisation the store keys use
(:func:`repro.store.keys.fingerprint_digest`) — so two specs fingerprint
equal exactly when they describe the same perturbation.

Names and descriptions are labels, deliberately *outside* the
fingerprint: renaming a scenario never invalidates its cached results.

Transform families (the paper's catalog is the substrate; peril blocks
are the "event families" overlays match against):

* :class:`TrialWindow` — historical-window replay: keep trials
  ``[start, stop)`` of the baseline YET.
* :class:`FrequencyOverlay` — crisis overlay: scale the occurrence
  frequency of matched event families inside a trial window by
  seeded replication/thinning of occurrences.
* :class:`RateAdjustment` — climate-conditioned rates: per-family
  frequency factors applied across the whole trial set.
* :class:`SeverityOverlay` — scale the ELT losses of matched event
  families (a portfolio-side perturbation: recomputes every layer the
  events touch).
* :class:`TailSeek` — adversarial scenario: keep only the trials a
  cheap severity proxy ranks worst, concentrating compute on the tail.

Specs serialise to/from plain JSON dicts (``to_dict``/``from_dict``,
``scenario_set_to_json``/``scenario_set_from_json``) so scenario
families live in version-controlled files and travel inside sweep
manifests to remote fleet workers.
"""

from __future__ import annotations

import abc
import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Tuple

from repro.utils.validation import check_positive

#: bump when spec composition changes (old fingerprints become unreachable).
SCENARIO_SPEC_SCHEMA = "repro-scenario-spec-v1"


class Transform(abc.ABC):
    """One catalog/YET/portfolio transformation inside a scenario.

    Subclasses are frozen dataclasses; ``kind`` is the registry name
    used by the JSON round-trip, ``as_config`` the canonical plain-dict
    form (fingerprint input *and* wire format), and ``apply`` the
    compile step (see :mod:`repro.scenario.compiler`).
    """

    kind: str = "abstract"

    @abc.abstractmethod
    def as_config(self) -> Dict[str, Any]:
        """Canonical plain-value dict, including ``kind``."""

    @abc.abstractmethod
    def apply(self, state, rng) -> None:
        """Mutate a compiler :class:`~repro.scenario.compiler.ScenarioInputs`."""

    #: fraction of the resulting trial set whose segment content this
    #: transform perturbs relative to the baseline sweep (1.0 = full
    #: recompute, 0.0 = pure subset/reuse).  Overridden per subclass.
    def perturbed_fraction(self, n_trials: int) -> float:
        return 1.0


def _check_families(families) -> Tuple[str, ...]:
    families = tuple(str(f) for f in families)
    if not families:
        raise ValueError("at least one event-family pattern is required")
    for pattern in families:
        if not pattern:
            raise ValueError("empty event-family pattern")
    return families


def match_families(catalog, families: Tuple[str, ...]):
    """Peril blocks of ``catalog`` matched by the glob patterns.

    Every pattern must match at least one peril — a pattern that
    matches nothing is a spec bug (a typo'd family silently becoming a
    no-op overlay would corrupt a whole campaign's conclusions).
    """
    available = [p.name for p in catalog.perils]
    matched = []
    for pattern in families:
        hits = [p for p in catalog.perils if fnmatchcase(p.name, pattern)]
        if not hits:
            raise ValueError(
                f"event-family pattern {pattern!r} matches no peril block; "
                f"catalog has {available}"
            )
        matched.extend(h for h in hits if h not in matched)
    return matched


@dataclass(frozen=True)
class TrialWindow(Transform):
    """Historical-window replay: keep trials ``[start, stop)``.

    A pure subset of the baseline trial database — with a window
    aligned to the campaign's segment stride, every kept segment's
    content-addressed key equals the baseline's and the replay is
    all store reuse, zero compute.
    """

    start: int
    stop: int
    kind: str = field(default="trial-window", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"invalid trial window [{self.start}, {self.stop})"
            )

    def as_config(self) -> Dict[str, Any]:
        return {"kind": self.kind, "start": int(self.start),
                "stop": int(self.stop)}

    def apply(self, state, rng) -> None:
        if self.stop > state.yet.n_trials:
            raise ValueError(
                f"trial window [{self.start}, {self.stop}) exceeds the "
                f"{state.yet.n_trials}-trial table"
            )
        state.yet = state.yet.slice_trials(self.start, self.stop)

    def perturbed_fraction(self, n_trials: int) -> float:
        return 0.0  # a subset: segment content is unchanged


@dataclass(frozen=True)
class FrequencyOverlay(Transform):
    """Crisis overlay: scale matched families' occurrence frequency.

    Inside trials ``[trial_start, trial_stop)`` (the whole table when
    ``trial_stop`` is None), every occurrence of an event belonging to
    a matched peril family is replicated ``factor`` times in
    expectation: the integer part deterministically, the fractional
    part by a seeded Bernoulli draw per occurrence (``factor < 1``
    thins).  Replicas sit adjacent to their original at the same
    timestamp, so per-trial ordering stays valid.  Trials outside the
    window keep their exact bytes — the delta a re-sweep recomputes is
    the window, nothing else.
    """

    families: Tuple[str, ...]
    factor: float
    trial_start: int = 0
    trial_stop: int | None = None
    kind: str = field(default="frequency-overlay", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "families", _check_families(self.families))
        if self.factor < 0:
            raise ValueError(f"frequency factor must be >= 0, got {self.factor}")
        if self.trial_start < 0:
            raise ValueError(f"trial_start must be >= 0, got {self.trial_start}")
        if self.trial_stop is not None and self.trial_stop <= self.trial_start:
            raise ValueError(
                f"empty overlay window [{self.trial_start}, {self.trial_stop})"
            )

    def as_config(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "families": tuple(self.families),
            "factor": float(self.factor),
            "trial_start": int(self.trial_start),
            "trial_stop": None if self.trial_stop is None else int(self.trial_stop),
        }

    def apply(self, state, rng) -> None:
        from repro.scenario.compiler import resample_occurrences

        stop = state.yet.n_trials if self.trial_stop is None else self.trial_stop
        if stop > state.yet.n_trials:
            raise ValueError(
                f"overlay window [{self.trial_start}, {stop}) exceeds the "
                f"{state.yet.n_trials}-trial table"
            )
        matched = match_families(state.catalog, self.families)
        state.yet = resample_occurrences(
            state.yet,
            state.catalog,
            {p.name: float(self.factor) for p in matched},
            self.trial_start,
            stop,
            rng,
        )
        state.mark_touched(self.trial_start, stop)

    def perturbed_fraction(self, n_trials: int) -> float:
        stop = n_trials if self.trial_stop is None else min(self.trial_stop, n_trials)
        if n_trials <= 0:
            return 1.0
        return max(0.0, stop - self.trial_start) / n_trials


@dataclass(frozen=True)
class RateAdjustment(Transform):
    """Climate-conditioned rates: per-family frequency factors, all trials.

    ``rates`` maps family glob patterns to frequency factors; a peril
    matched by several patterns gets the *product* of their factors.
    Implemented by the same seeded occurrence resampling as
    :class:`FrequencyOverlay`, over the whole trial set.
    """

    rates: Tuple[Tuple[str, float], ...]
    kind: str = field(default="rate-adjustment", init=False, repr=False)

    def __post_init__(self) -> None:
        rates = tuple((str(k), float(v)) for k, v in self.rates)
        if not rates:
            raise ValueError("at least one (family, factor) rate is required")
        for pattern, factor in rates:
            if not pattern:
                raise ValueError("empty event-family pattern in rates")
            if factor < 0:
                raise ValueError(
                    f"rate factor for {pattern!r} must be >= 0, got {factor}"
                )
        object.__setattr__(self, "rates", rates)

    def as_config(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "rates": tuple((str(k), float(v)) for k, v in self.rates),
        }

    def apply(self, state, rng) -> None:
        from repro.scenario.compiler import resample_occurrences

        factors: Dict[str, float] = {}
        for pattern, factor in self.rates:
            matched = match_families(state.catalog, (pattern,))
            for peril in matched:
                factors[peril.name] = factors.get(peril.name, 1.0) * factor
        state.yet = resample_occurrences(
            state.yet, state.catalog, factors, 0, state.yet.n_trials, rng
        )
        state.mark_touched(0, state.yet.n_trials)


@dataclass(frozen=True)
class SeverityOverlay(Transform):
    """Scale the ELT losses of matched event families by ``factor``.

    A portfolio-side perturbation: every layer covering an affected ELT
    changes its content fingerprint, so all of its segments recompute —
    the honest cost of re-pricing a book under a severity shock.  The
    YET is untouched.
    """

    families: Tuple[str, ...]
    factor: float
    kind: str = field(default="severity-overlay", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "families", _check_families(self.families))
        check_positive("severity factor", self.factor)

    def as_config(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "families": tuple(self.families),
            "factor": float(self.factor),
        }

    def apply(self, state, rng) -> None:
        from repro.scenario.compiler import scale_severities

        matched = match_families(state.catalog, self.families)
        state.portfolio = scale_severities(
            state.portfolio, matched, float(self.factor)
        )
        state.mark_touched(0, state.yet.n_trials)


@dataclass(frozen=True)
class TailSeek(Transform):
    """Adversarial tail scenario: keep the proxy-worst trial fraction.

    Ranks every trial by a cheap deterministic severity proxy — the sum
    over its occurrences of the expected lognormal ground-up severity
    of each event's peril (restricted to matched families) — and keeps
    the top ``fraction`` of trials in their original relative order.
    No RNG: the same spec always selects the same trials.
    """

    fraction: float
    families: Tuple[str, ...] = ("*",)
    kind: str = field(default="tail-seek", init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"tail fraction must be in (0, 1], got {self.fraction}"
            )
        object.__setattr__(self, "families", _check_families(self.families))

    def as_config(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "fraction": float(self.fraction),
            "families": tuple(self.families),
        }

    def apply(self, state, rng) -> None:
        from repro.scenario.compiler import select_tail_trials

        matched = match_families(state.catalog, self.families)
        state.yet = select_tail_trials(
            state.yet, state.catalog, matched, float(self.fraction)
        )
        state.mark_touched(0, state.yet.n_trials)


#: JSON ``kind`` → transform class (the declarative-spec registry).
TRANSFORM_KINDS: Dict[str, type] = {
    "trial-window": TrialWindow,
    "frequency-overlay": FrequencyOverlay,
    "rate-adjustment": RateAdjustment,
    "severity-overlay": SeverityOverlay,
    "tail-seek": TailSeek,
}


def transform_from_config(config: Dict[str, Any]) -> Transform:
    """Rebuild a transform from its ``as_config`` dict."""
    kind = config.get("kind")
    cls = TRANSFORM_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown transform kind {kind!r}; known: "
            f"{sorted(TRANSFORM_KINDS)}"
        )
    kwargs = {k: v for k, v in config.items() if k != "kind"}
    # JSON arrays come back as lists; tuple-typed fields expect tuples.
    for key, value in kwargs.items():
        if isinstance(value, list):
            kwargs[key] = tuple(
                tuple(v) if isinstance(v, list) else v for v in value
            )
    return cls(**kwargs)


@dataclass(frozen=True)
class Scenario:
    """One declarative, seeded what-if: a named transform pipeline.

    Attributes
    ----------
    name:
        Label unique within a :class:`ScenarioSet` (outside the
        fingerprint — renaming never invalidates cached results).
    transforms:
        Applied in order to the baseline workload.  Empty = the
        baseline itself.
    seed:
        Seeds every stochastic transform's stream (each transform gets
        an independent child stream keyed by its position, so inserting
        a deterministic transform never shifts a later one's draws).
    description:
        Free-text note (also outside the fingerprint).
    """

    name: str
    transforms: Tuple[Transform, ...] = ()
    seed: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        object.__setattr__(self, "transforms", tuple(self.transforms))
        for t in self.transforms:
            if not isinstance(t, Transform):
                raise TypeError(
                    f"scenario {self.name!r}: expected Transform, got "
                    f"{type(t).__name__}"
                )

    @classmethod
    def baseline(cls, name: str = "baseline") -> "Scenario":
        """The identity scenario (prices the unperturbed catalog)."""
        return cls(name=name, description="unperturbed baseline")

    def fingerprint(self) -> str:
        """Canonical content digest: transforms + seed, not labels."""
        from repro.store.keys import fingerprint_digest  # deferred import

        return fingerprint_digest(
            SCENARIO_SPEC_SCHEMA,
            tuple(t.as_config() for t in self.transforms),
            int(self.seed),
        )

    def perturbed_fraction(self, n_trials: int) -> float:
        """Upper-bound fraction of baseline segments this scenario dirties."""
        if not self.transforms:
            return 0.0
        return max(t.perturbed_fraction(n_trials) for t in self.transforms)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": int(self.seed),
            "description": self.description,
            "transforms": [t.as_config() for t in self.transforms],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Scenario":
        return cls(
            name=str(data["name"]),
            transforms=tuple(
                transform_from_config(c) for c in data.get("transforms", ())
            ),
            seed=int(data.get("seed", 0)),
            description=str(data.get("description", "")),
        )


@dataclass(frozen=True)
class ScenarioSet:
    """An ordered family of scenarios evaluated against one portfolio."""

    name: str
    scenarios: Tuple[Scenario, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario set name must be non-empty")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError(f"scenario set {self.name!r} is empty")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise ValueError(
                f"scenario set {self.name!r} has duplicate scenario "
                f"names: {names}"
            )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self):
        return iter(self.scenarios)

    def scenario(self, name: str) -> Scenario:
        for s in self.scenarios:
            if s.name == name:
                return s
        raise KeyError(f"no scenario named {name!r} in set {self.name!r}")

    def fingerprint(self) -> str:
        """Digest of the member fingerprints, in order (labels excluded)."""
        from repro.store.keys import fingerprint_digest  # deferred import

        return fingerprint_digest(
            SCENARIO_SPEC_SCHEMA,
            tuple(s.fingerprint() for s in self.scenarios),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSet":
        return cls(
            name=str(data["name"]),
            scenarios=tuple(
                Scenario.from_dict(s) for s in data.get("scenarios", ())
            ),
        )


def scenario_set_to_json(scenario_set: ScenarioSet, indent: int = 2) -> str:
    """Serialise a scenario set to a JSON document (spec-file format)."""
    return json.dumps(scenario_set.to_dict(), indent=indent) + "\n"


def scenario_set_from_json(text: str) -> ScenarioSet:
    """Parse a scenario set from its JSON document."""
    return ScenarioSet.from_dict(json.loads(text))
