"""``repro-scenario`` command line: what-if campaigns from a shell.

Typical session::

    repro-scenario demo > stress.json          # starter scenario set
    repro-scenario show --set stress.json      # fingerprints + shapes
    repro-scenario plan --set stress.json --store /tmp/c
    repro-scenario run  --set stress.json --store /tmp/c --out results.json

``plan`` is the dry run: it compiles every scenario and delta-plans it
against the store, printing how many segments a run would reuse versus
compute — the what-if of the what-ifs.  ``run`` executes the campaign
(in-process workers by default; ``--workers 0`` submits for external
``repro-fleet worker`` processes attached to the same queue, which both
accept ``tcp://`` URLs for multi-machine fleets).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.data.presets import (
    BENCH_DEFAULT,
    BENCH_SMALL,
    SCENARIO_SMALL,
    WorkloadSpec,
)

_SCALES = {
    "scenario": SCENARIO_SMALL,
    "small": BENCH_SMALL,
    "default": BENCH_DEFAULT,
}


def demo_set():
    """A starter scenario set exercising every transform family."""
    from repro.scenario.spec import (
        FrequencyOverlay,
        RateAdjustment,
        Scenario,
        ScenarioSet,
        SeverityOverlay,
        TailSeek,
        TrialWindow,
    )

    return ScenarioSet(
        name="demo-stress",
        scenarios=(
            Scenario.baseline(),
            Scenario(
                name="recent-window",
                transforms=(TrialWindow(start=0, stop=1000),),
                description="historical replay: first half of the trial set",
            ),
            Scenario(
                name="hurricane-surge",
                transforms=(
                    FrequencyOverlay(
                        families=("NA-hurricane",),
                        factor=1.5,
                        trial_start=0,
                        trial_stop=200,
                    ),
                ),
                seed=7,
                description="crisis overlay: +50% hurricane frequency in "
                "a 10% trial window",
            ),
            Scenario(
                name="warm-climate",
                transforms=(
                    RateAdjustment(
                        rates=(("NA-*", 1.2), ("EU-windstorm", 1.1)),
                    ),
                ),
                seed=11,
                description="climate-conditioned rates across all trials",
            ),
            Scenario(
                name="severity-shock",
                transforms=(SeverityOverlay(families=("JP-*",), factor=1.25),),
                description="25% severity loading on Japanese perils",
            ),
            Scenario(
                name="adversarial-tail",
                transforms=(TailSeek(fraction=0.25),),
                description="keep the proxy-worst quarter of trials",
            ),
        ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Declarative what-if campaigns: compile scenario sets "
        "and sweep them through the delta-planned fleet stack.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_set(p):
        p.add_argument(
            "--set",
            dest="set_file",
            default=None,
            help="scenario-set JSON file (default: the built-in demo set)",
        )

    def add_workload(p):
        p.add_argument(
            "--scale",
            choices=sorted(_SCALES),
            default="scenario",
            help="baseline workload preset (default: scenario)",
        )
        p.add_argument("--n-trials", type=int, default=None)
        p.add_argument("--seed", type=int, default=None)
        p.add_argument(
            "--segment-trials",
            type=int,
            default=100,
            help="segment stride — the delta-reuse quantum (default: 100)",
        )
        p.add_argument("--engine", default="sequential")

    demo = sub.add_parser(
        "demo", help="print a starter scenario-set JSON document"
    )
    demo.add_argument("--out", default=None, help="write to this path")

    show = sub.add_parser(
        "show", help="list a set's scenarios, fingerprints and shapes"
    )
    add_set(show)
    add_workload(show)

    plan = sub.add_parser(
        "plan",
        help="dry run: delta-plan each scenario against the store "
        "(reuse vs compute, nothing executed)",
    )
    add_set(plan)
    add_workload(plan)
    plan.add_argument(
        "--store",
        default=None,
        help="store cache dir or tcp://host:port (default: "
        "$REPRO_STORE_URL, then $REPRO_CACHE_DIR)",
    )

    run = sub.add_parser("run", help="execute a campaign")
    add_set(run)
    add_workload(run)
    run.add_argument(
        "--store",
        default=None,
        help="store cache dir or tcp://host:port (default: "
        "$REPRO_STORE_URL, then $REPRO_CACHE_DIR)",
    )
    run.add_argument(
        "--queue",
        default=None,
        help="queue dir or tcp://host:port (default: a private temp queue)",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=2,
        help="in-process worker threads (0 = external repro-fleet workers "
        "drain the queue)",
    )
    run.add_argument(
        "--backend",
        default=None,
        help="kernel backend for in-process workers (numpy/numba/auto)",
    )
    run.add_argument(
        "--early-stop",
        action="store_true",
        help="staged trials with PML/TVaR early stopping",
    )
    run.add_argument(
        "--rel-tol",
        type=float,
        default=0.05,
        help="early-stop stability tolerance per stage (default: 0.05)",
    )
    run.add_argument(
        "--return-period",
        type=float,
        default=100.0,
        help="watched PML return period in years (default: 100)",
    )
    run.add_argument(
        "--out", default=None, help="write campaign rows to this JSON path"
    )
    return parser


def _load_set(args):
    from repro.scenario.spec import scenario_set_from_json

    if args.set_file is None:
        return demo_set()
    with open(args.set_file, "r", encoding="utf-8") as handle:
        return scenario_set_from_json(handle.read())


def _spec_for(args) -> WorkloadSpec:
    spec = _SCALES[args.scale]
    changes = {}
    if args.n_trials is not None:
        changes["n_trials"] = args.n_trials
    if args.seed is not None:
        changes["seed"] = args.seed
    if changes:
        spec = spec.with_(name=f"{spec.name}-custom", **changes)
    return spec


def _cmd_demo(args) -> int:
    from repro.scenario.spec import scenario_set_to_json

    text = scenario_set_to_json(demo_set())
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text, end="")
    return 0


def _cmd_show(args) -> int:
    from repro.data.generator import generate_workload
    from repro.scenario.compiler import compile_scenario

    scenario_set = _load_set(args)
    workload = generate_workload(_spec_for(args))
    print(f"set {scenario_set.name!r} "
          f"({len(scenario_set)} scenarios, "
          f"fingerprint {scenario_set.fingerprint()[:16]})")
    print(f"baseline: {workload.yet.n_trials} trials x "
          f"{workload.yet.n_occurrences} occurrences, "
          f"families {[p.name for p in workload.catalog.perils]}")
    for scenario in scenario_set:
        compiled = compile_scenario(scenario, workload)
        kinds = ",".join(t.kind for t in scenario.transforms) or "baseline"
        print(
            f"  {scenario.name}: [{kinds}] seed={scenario.seed} "
            f"fingerprint={compiled.fingerprint[:16]} -> "
            f"{compiled.n_trials} trials, "
            f"{compiled.yet.n_occurrences} occurrences, "
            f"perturbed<={compiled.perturbed_fraction:.0%}"
        )
    return 0


def _cmd_plan(args) -> int:
    from repro.data.generator import generate_workload
    from repro.engines.registry import create_engine
    from repro.net.url import store_from_url
    from repro.scenario.compiler import compile_scenario

    scenario_set = _load_set(args)
    workload = generate_workload(_spec_for(args))
    store = store_from_url(args.store)
    engine = create_engine(args.engine)
    for scenario in scenario_set:
        compiled = compile_scenario(scenario, workload)
        delta = engine.plan_missing(
            compiled.yet,
            compiled.portfolio,
            store,
            segment_trials=args.segment_trials,
        )
        total = len(delta.segments)
        print(
            f"  {scenario.name}: {total} segments, "
            f"{delta.n_stored} reused from store, "
            f"{total - delta.n_stored} to compute"
        )
    return 0


def _cmd_run(args) -> int:
    from repro.data.generator import generate_workload
    from repro.net.url import queue_from_url, store_from_url
    from repro.scenario.adaptive import EarlyStopPolicy
    from repro.scenario.campaign import ScenarioCampaign

    scenario_set = _load_set(args)
    spec = _spec_for(args)
    workload = generate_workload(spec)
    policy = None
    if args.early_stop:
        policy = EarlyStopPolicy(
            return_period_years=args.return_period, rel_tol=args.rel_tol
        )
    campaign = ScenarioCampaign(
        workload,
        store_from_url(args.store),
        queue=None if args.queue is None else queue_from_url(args.queue),
        engine=args.engine,
        segment_trials=args.segment_trials,
        policy=policy,
        n_workers=args.workers,
        workload_spec=spec,
        backend=args.backend,
    )

    def progress(outcome):
        flags = []
        if outcome.replayed:
            flags.append("replayed")
        if outcome.early_stopped:
            flags.append(f"early-stopped@{outcome.trials_used}")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        print(
            f"  {outcome.name}: pml={outcome.metrics.get('pml', 0):,.0f} "
            f"tvar={outcome.metrics.get('tvar', 0):,.0f} "
            f"computed={outcome.n_computed}/{outcome.n_segments} "
            f"({outcome.wall_seconds:.2f}s){suffix}"
        )

    result = campaign.run(scenario_set, progress=progress)
    summary = result.summary()
    print(
        f"campaign {summary['campaign_fingerprint'][:16]}: "
        f"{summary['n_scenarios']} scenarios, "
        f"{summary['n_replayed']} replayed, "
        f"{summary['n_early_stopped']} early-stopped, "
        f"{summary['segments_computed']} segments computed / "
        f"{summary['segments_reused']} reused, "
        f"{summary['wall_seconds']:.2f}s"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(
                {"summary": summary, "scenarios": result.rows()},
                handle,
                indent=2,
            )
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "demo": _cmd_demo,
        "show": _cmd_show,
        "plan": _cmd_plan,
        "run": _cmd_run,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
