"""Scenario engine: declarative stress families and what-if campaigns.

The subsystem has four layers:

* :mod:`repro.scenario.spec` — frozen, seeded, fingerprintable scenario
  specs (``Scenario`` / ``ScenarioSet`` + the transform registry);
* :mod:`repro.scenario.compiler` — compiles a spec against a baseline
  workload into concrete perturbed YET/portfolio inputs, engineered so
  untouched trial ranges keep their exact bytes (and hence their
  content-addressed segment keys);
* :mod:`repro.scenario.adaptive` — staged early stopping on PML/TVaR
  stability;
* :mod:`repro.scenario.campaign` — the runner that sweeps a set through
  the plan/store/fleet stack with whole-scenario replay, delta reuse
  and provenance-rich result rows.

``repro-scenario`` (:mod:`repro.scenario.cli`) is the command-line face.
"""

from repro.scenario.adaptive import EarlyStopPolicy
from repro.scenario.campaign import (
    CampaignResult,
    ScenarioCampaign,
    ScenarioOutcome,
)
from repro.scenario.compiler import (
    CompiledScenario,
    ScenarioInputs,
    compile_scenario,
    resample_occurrences,
    scale_severities,
    select_tail_trials,
)
from repro.scenario.spec import (
    FrequencyOverlay,
    RateAdjustment,
    Scenario,
    ScenarioSet,
    SeverityOverlay,
    TailSeek,
    Transform,
    TrialWindow,
    match_families,
    scenario_set_from_json,
    scenario_set_to_json,
    transform_from_config,
)

__all__ = [
    "EarlyStopPolicy",
    "CampaignResult",
    "ScenarioCampaign",
    "ScenarioOutcome",
    "CompiledScenario",
    "ScenarioInputs",
    "compile_scenario",
    "resample_occurrences",
    "scale_severities",
    "select_tail_trials",
    "FrequencyOverlay",
    "RateAdjustment",
    "Scenario",
    "ScenarioSet",
    "SeverityOverlay",
    "TailSeek",
    "Transform",
    "TrialWindow",
    "match_families",
    "scenario_set_from_json",
    "scenario_set_to_json",
    "transform_from_config",
]
