"""Campaign runner: sweep a scenario set through the fleet stack.

:class:`ScenarioCampaign` evaluates every scenario of a
:class:`~repro.scenario.spec.ScenarioSet` against one baseline
workload, reusing everything the lower layers already know how to
reuse:

* **whole-scenario replay** — each scenario's final YLT is stored under
  :func:`repro.store.keys.scenario_result_key`; an unchanged spec +
  seed + baseline short-circuits to one store read;
* **delta-planned sweeps** — scenarios that do run go through
  :func:`repro.fleet.sweep.submit_sweep`, so segments whose content the
  overlay did not perturb are served from the store (the baseline
  scenario populates them; a 10% overlay recomputes ~10%);
* **staged early stopping** — with an
  :class:`~repro.scenario.adaptive.EarlyStopPolicy`, each scenario runs
  nested stride-aligned trial prefixes and stops once its PML/TVaR
  stabilise; every stage's segments are store-reused by the next.

The queue/store arguments accept anything satisfying the ``JobQueue`` /
``ResultStore`` contracts — directory-backed, in-memory, or the
``tcp://`` remote implementations — so a campaign runs unchanged from a
laptop against a shared fleet.  With ``n_workers=0`` the campaign only
submits and gathers; external ``repro-fleet worker`` processes execute
the jobs, rebuilding the compiled scenario inputs from the manifest.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.data.ylt import YearLossTable
from repro.engines.base import Engine
from repro.engines.registry import create_engine
from repro.fleet.jobs import JobQueue
from repro.fleet.sweep import (
    context_for_engine,
    gather_sweep,
    run_workers,
    submit_sweep,
    wait_for_drain,
)
from repro.plan.cache import yet_fingerprint
from repro.plan.planner import DEFAULT_SEGMENT_TRIALS
from repro.scenario.adaptive import EarlyStopPolicy
from repro.scenario.compiler import CompiledScenario, compile_scenario
from repro.scenario.spec import Scenario, ScenarioSet
from repro.store.base import ResultStore
from repro.store.codec import entry_from_ylt, ylt_from_entry
from repro.store.keys import (
    fingerprint_digest,
    portfolio_fingerprint,
    scenario_result_key,
    ylt_digest,
)

#: campaign-fingerprint schema (bump when the identity composition changes).
CAMPAIGN_SCHEMA = "repro-scenario-campaign-v1"


@dataclass
class ScenarioOutcome:
    """One scenario's result row: YLT, tail metrics, full provenance."""

    name: str
    fingerprint: str
    digest: str
    metrics: Dict[str, float]
    trials_used: int
    n_trials: int
    early_stopped: bool
    replayed: bool
    n_segments: int
    n_computed: int
    n_reused: int
    stages: List[Dict[str, Any]]
    wall_seconds: float
    ylt: YearLossTable = field(repr=False)

    def row(self) -> Dict[str, Any]:
        """JSON-able summary (everything except the YLT itself)."""
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "digest": self.digest,
            "metrics": dict(self.metrics),
            "trials_used": int(self.trials_used),
            "n_trials": int(self.n_trials),
            "early_stopped": bool(self.early_stopped),
            "replayed": bool(self.replayed),
            "n_segments": int(self.n_segments),
            "n_computed": int(self.n_computed),
            "n_reused": int(self.n_reused),
            "stages": list(self.stages),
            "wall_seconds": float(self.wall_seconds),
        }


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, in scenario-set order."""

    set_name: str
    set_fingerprint: str
    campaign_fingerprint: str
    outcomes: List[ScenarioOutcome]

    def outcome(self, name: str) -> ScenarioOutcome:
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no outcome for scenario {name!r}")

    def rows(self) -> List[Dict[str, Any]]:
        return [o.row() for o in self.outcomes]

    def summary(self) -> Dict[str, Any]:
        return {
            "set": self.set_name,
            "set_fingerprint": self.set_fingerprint,
            "campaign_fingerprint": self.campaign_fingerprint,
            "n_scenarios": len(self.outcomes),
            "n_replayed": sum(o.replayed for o in self.outcomes),
            "n_early_stopped": sum(o.early_stopped for o in self.outcomes),
            "segments_computed": sum(o.n_computed for o in self.outcomes),
            "segments_reused": sum(o.n_reused for o in self.outcomes),
            "wall_seconds": sum(o.wall_seconds for o in self.outcomes),
        }


class ScenarioCampaign:
    """Run scenario sets against one baseline through the fleet stack.

    Parameters
    ----------
    workload:
        The baseline (anything with ``catalog``/``yet``/``portfolio``,
        typically :func:`repro.data.generator.generate_workload` output).
    store:
        Segment + scenario-result store (any ``ResultStore``; a
        ``tcp://`` :class:`~repro.net.client.RemoteStore` works).
    queue:
        Job queue; ``None`` builds a private directory queue (the
        common local case).
    engine:
        Engine name (``create_engine``) or a constructed engine.
    segment_trials:
        Fixed segment stride.  This is the delta-reuse quantum: overlay
        windows and stage boundaries aligned to it maximise reuse.
    policy:
        ``EarlyStopPolicy`` to run staged trials with adaptive stopping;
        ``None`` runs every scenario's full trial set in one stage.
    n_workers:
        In-process worker threads per sweep; ``0`` relies on external
        ``repro-fleet worker`` processes attached to the same queue
        (requires ``workload_spec`` so manifests are self-describing).
    workload_spec:
        The baseline's :class:`~repro.data.presets.WorkloadSpec`, when
        it has one — embedded in manifests for cross-process workers.
    """

    def __init__(
        self,
        workload,
        store: ResultStore,
        queue: Optional[JobQueue] = None,
        engine: str | Engine = "sequential",
        engine_options: Optional[Dict[str, Any]] = None,
        segment_trials: int = DEFAULT_SEGMENT_TRIALS,
        policy: Optional[EarlyStopPolicy] = None,
        n_workers: int = 2,
        workload_spec=None,
        backend=None,
        drain_timeout: float = 300.0,
    ) -> None:
        self.workload = workload
        self.store = store
        if queue is None:
            self._queue_tmp = tempfile.TemporaryDirectory(
                prefix="repro-scenario-queue-"
            )
            queue = JobQueue(self._queue_tmp.name)
        self.queue = queue
        if isinstance(engine, str):
            engine = create_engine(engine, **(engine_options or {}))
        self.engine = engine
        if segment_trials < 1:
            raise ValueError(
                f"segment_trials must be >= 1, got {segment_trials}"
            )
        self.segment_trials = int(segment_trials)
        self.policy = policy
        # Metrics are always reported; the default policy only supplies
        # the watched return period / confidence when no policy is set.
        self._metrics_policy = policy if policy is not None else EarlyStopPolicy()
        if n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {n_workers}")
        if n_workers == 0 and workload_spec is None:
            raise ValueError(
                "n_workers=0 (external workers) requires workload_spec so "
                "sweep manifests are self-describing"
            )
        self.n_workers = int(n_workers)
        self.workload_spec = workload_spec
        self.backend = backend
        self.drain_timeout = float(drain_timeout)

    def campaign_fingerprint(self) -> str:
        """Identity of the baseline + numeric config + staging policy.

        Everything that can change a scenario's final YLT *besides* the
        scenario spec itself: baseline YET/portfolio content, the
        engine's numeric configuration (kernel, dtype, lookup kind,
        secondary stream), the segment stride (stage boundaries depend
        on it), and the early-stop policy (it decides ``trials_used``).
        """
        caps = self.engine.capabilities()
        return fingerprint_digest(
            CAMPAIGN_SCHEMA,
            yet_fingerprint(self.workload.yet),
            portfolio_fingerprint(self.workload.portfolio),
            int(self.workload.catalog.n_events),
            str(caps.kernel),
            str(caps.dtype),
            str(self.engine.lookup_kind),
            self.engine.secondary is not None,
            int(self.segment_trials),
            None if self.policy is None else self.policy.as_config(),
        )

    def _stage_counts(self, n_trials: int) -> Tuple[int, ...]:
        if self.policy is None:
            return (n_trials,)
        return self.policy.stage_counts(n_trials, self.segment_trials)

    def run_scenario(self, scenario: Scenario) -> ScenarioOutcome:
        """Compile and price one scenario (replay, sweep, early-stop)."""
        start = time.perf_counter()
        compiled = compile_scenario(scenario, self.workload)
        result_key = scenario_result_key(
            self.campaign_fingerprint(), compiled.fingerprint
        )
        entry = self.store.get(result_key)
        if entry is not None:
            meta = entry.meta
            ylt = ylt_from_entry(entry)
            return ScenarioOutcome(
                name=scenario.name,
                fingerprint=compiled.fingerprint,
                digest=ylt_digest(ylt),
                metrics=dict(meta.get("metrics", {})),
                trials_used=int(meta.get("trials_used", ylt.n_trials)),
                n_trials=compiled.n_trials,
                early_stopped=bool(meta.get("early_stopped", False)),
                replayed=True,
                n_segments=int(meta.get("n_segments", 0)),
                n_computed=0,
                n_reused=int(meta.get("n_segments", 0)),
                stages=[],
                wall_seconds=time.perf_counter() - start,
                ylt=ylt,
            )
        outcome = self._sweep_scenario(scenario, compiled, result_key)
        outcome.wall_seconds = time.perf_counter() - start
        return outcome

    def _sweep_scenario(
        self,
        scenario: Scenario,
        compiled: CompiledScenario,
        result_key: str,
    ) -> ScenarioOutcome:
        n_trials = compiled.n_trials
        history: List[Dict[str, float]] = []
        stages: List[Dict[str, Any]] = []
        n_computed = 0
        ylt: YearLossTable | None = None
        ticket = None
        trials_used = 0
        early_stopped = False
        counts = self._stage_counts(n_trials)
        for stage_index, count in enumerate(counts):
            yet_stage = (
                compiled.yet
                if count == n_trials
                else compiled.yet.slice_trials(0, count)
            )
            ticket = submit_sweep(
                self.queue,
                self.store,
                yet_stage,
                compiled.portfolio,
                self.workload.catalog.n_events,
                self.engine,
                segment_trials=self.segment_trials,
                workload_spec=self.workload_spec,
                scenario=scenario,
                stage_trials=count,
            )
            if self.n_workers > 0:
                ctx = context_for_engine(
                    yet_stage,
                    compiled.portfolio,
                    self.workload.catalog.n_events,
                    self.engine,
                )
                run_workers(
                    self.queue,
                    self.store,
                    contexts={ticket.sweep_id: ctx},
                    n_workers=self.n_workers,
                    sweep_id=ticket.sweep_id,
                    backend=self.backend,
                )
            elif not wait_for_drain(
                self.queue, ticket.sweep_id, timeout=self.drain_timeout
            ):
                raise TimeoutError(
                    f"scenario {scenario.name!r} stage {stage_index} "
                    f"({ticket.sweep_id}) did not drain within "
                    f"{self.drain_timeout}s — are external workers running?"
                )
            ylt = gather_sweep(self.queue, self.store, ticket.sweep_id)
            metrics = self._metrics_policy.tail_metrics(
                ylt.portfolio_losses()
            )
            history.append(metrics)
            n_computed += ticket.submitted
            trials_used = count
            stages.append(
                {
                    "trials": int(count),
                    "sweep_id": ticket.sweep_id,
                    "submitted": int(ticket.submitted),
                    "reused": int(ticket.reused),
                    "metrics": metrics,
                }
            )
            if self.policy is not None and self.policy.should_stop(
                history, count
            ):
                early_stopped = count < n_trials
                break
        assert ylt is not None and ticket is not None  # counts is non-empty
        n_segments = len(ticket.delta.segments)
        metrics = history[-1]
        self.store.put(
            result_key,
            entry_from_ylt(
                ylt,
                meta={
                    "scenario": scenario.name,
                    "scenario_fingerprint": compiled.fingerprint,
                    "metrics": metrics,
                    "trials_used": int(trials_used),
                    "n_trials": int(n_trials),
                    "early_stopped": bool(early_stopped),
                    "n_segments": int(n_segments),
                },
            ),
        )
        return ScenarioOutcome(
            name=scenario.name,
            fingerprint=compiled.fingerprint,
            digest=ylt_digest(ylt),
            metrics=metrics,
            trials_used=trials_used,
            n_trials=n_trials,
            early_stopped=early_stopped,
            replayed=False,
            n_segments=n_segments,
            n_computed=n_computed,
            n_reused=ticket.delta.n_stored,
            stages=stages,
            wall_seconds=0.0,  # stamped by run_scenario
            ylt=ylt,
        )

    def run(
        self,
        scenario_set: ScenarioSet,
        progress: Optional[Callable[[ScenarioOutcome], None]] = None,
    ) -> CampaignResult:
        """Evaluate every scenario of a set, in declaration order.

        Order matters for reuse: a set that leads with its baseline
        populates the store with the segments every overlay's untouched
        trials share.
        """
        outcomes: List[ScenarioOutcome] = []
        for scenario in scenario_set:
            outcome = self.run_scenario(scenario)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome)
        return CampaignResult(
            set_name=scenario_set.name,
            set_fingerprint=scenario_set.fingerprint(),
            campaign_fingerprint=self.campaign_fingerprint(),
            outcomes=outcomes,
        )
