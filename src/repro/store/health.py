"""One-glance store health: breakers, retries, hedging, corruption.

The degradation machinery is spread across layers by design — circuit
breakers live in :class:`~repro.store.filestore.TieredStore`, retry
counters in the fleet worker, hedge outcomes in the tiered read path,
corruption counters in every backend.  Operating the service needs all
of it in *one place*: this module folds any store's :meth:`stats` dict
into a flat health summary, shared by ``repro-fleet status --store``
and :meth:`repro.serve.QuoteFrontEnd.stats`.

The input is the stats *dict*, not the store object, so the same
summariser works on live stores, JSON-roundtripped benchmark artifacts,
and worker reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping


def health_from_stats(stats: Mapping[str, object]) -> Dict[str, object]:
    """Fold a :meth:`~repro.store.base.ResultStore.stats` dict into a
    flat health summary.

    Always present: request counters (``hits``/``misses``/``puts`` —
    process-local, so a fresh CLI process reports zeros), degradation
    counters (``corrupt_misses``, ``put_errors``), and ``entries``
    (the backend's stored-entry count, ``None`` when unreported —
    unlike the op counters this reflects the store on disk).  When the
    stats came from a :class:`~repro.store.filestore.TieredStore` the
    summary adds ``tier_errors``, ``breaker_trips``, per-tier breaker
    ``breakers`` (state + trips, in tier order) and the ``hedge``
    win/loss record; plain backends report those as empty/zero, so
    consumers need no isinstance checks.
    """
    tiers = stats.get("tiers") or []
    breakers: List[Dict[str, object]] = []
    for index, tier in enumerate(tiers):
        breaker = dict(tier.get("breaker") or {})
        breakers.append(
            {
                "tier": index,
                "state": breaker.get("state", "closed"),
                "trips": int(breaker.get("trips", 0)),
                "consecutive_failures": int(
                    breaker.get("consecutive_failures", 0)
                ),
            }
        )
    hedge = dict(stats.get("hedge") or {})
    size = stats.get("size")
    return {
        "entries": int(size) if size is not None else None,
        "hits": int(stats.get("hits", 0)),
        "misses": int(stats.get("misses", 0)),
        "puts": int(stats.get("puts", 0)),
        "corrupt_misses": int(stats.get("corrupt_misses", 0)),
        "put_errors": int(stats.get("put_errors", 0)),
        "tier_errors": int(stats.get("tier_errors", 0)),
        "breaker_trips": int(stats.get("breaker_trips", 0)),
        "breakers": breakers,
        "open_breakers": sum(
            1 for b in breakers if b["state"] != "closed"
        ),
        "hedge": {
            "enabled": bool(hedge.get("enabled", False)),
            "issued": int(hedge.get("issued", 0)),
            "wins": int(hedge.get("wins", 0)),
            "losses": int(hedge.get("losses", 0)),
            # Both waterfalls came back empty: not a loss (the
            # primary didn't beat the hedge), a miss.
            "misses": int(hedge.get("misses", 0)),
        },
    }


def store_health(store) -> Dict[str, object]:
    """:func:`health_from_stats` over a live store."""
    return health_from_stats(store.stats())


def format_health(health: Mapping[str, object]) -> List[str]:
    """Human-readable lines for the CLI (``repro-fleet status``)."""
    hedge = health["hedge"]
    entries = health.get("entries")
    entries_part = f"entries={entries} " if entries is not None else ""
    lines = [
        f"store: {entries_part}"
        + "hits={hits} misses={misses} puts={puts} "
        "corrupt_misses={corrupt_misses} put_errors={put_errors}".format(
            **health
        ),
        f"degradation: tier_errors={health['tier_errors']} "
        f"breaker_trips={health['breaker_trips']} "
        f"open_breakers={health['open_breakers']}",
    ]
    for breaker in health["breakers"]:
        lines.append(
            f"  tier {breaker['tier']}: breaker={breaker['state']} "
            f"trips={breaker['trips']} "
            f"consecutive_failures={breaker['consecutive_failures']}"
        )
    if hedge["enabled"]:
        lines.append(
            f"hedged reads: issued={hedge['issued']} "
            f"wins={hedge['wins']} losses={hedge['losses']} "
            f"misses={hedge['misses']}"
        )
    return lines
