"""The result store contract and its in-memory backend.

A :class:`ResultStore` maps a *content-addressed key* — a hex digest
produced by :mod:`repro.store.keys` from plan/content fingerprints — to
a :class:`StoreEntry`: a named bundle of immutable numpy arrays plus a
small JSON-able metadata dict.  Because keys are derived from every
input that can change the stored bytes (plan decomposition, YET and ELT
contents, dtype, secondary stream, ...), a hit *is* the answer: there is
no invalidation protocol, only lookup and insert.  Stale entries are
merely unreachable, never wrong.

Backends share the concurrency contract of
:class:`~repro.plan.cache.PlanResultCache`: ``get_or_compute`` runs the
compute callable exactly once per key across all concurrent in-process
requesters (later requesters block on the in-flight computation), and
:class:`~repro.store.filestore.SharedFileStore` extends the same
guarantee across processes with advisory file locks.
"""

from __future__ import annotations

import abc
import logging
import re
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional

import numpy as np

logger = logging.getLogger("repro.store")

#: keys must be path- and lock-file-safe: digests, or readable test ids.
_KEY_RE = re.compile(r"^[A-Za-z0-9._-]{1,200}$")


def check_key(key: str) -> str:
    """Validate a store key (non-empty, filesystem-safe)."""
    if not isinstance(key, str) or not _KEY_RE.match(key):
        raise ValueError(
            f"store keys must match {_KEY_RE.pattern!r}, got {key!r}"
        )
    return key


@dataclass(frozen=True)
class StoreEntry:
    """One stored result: named arrays plus JSON-able metadata.

    Arrays handed back by a store are frozen (``writeable=False`` or
    read-only memory maps); callers copy before mutating, exactly as
    with :class:`~repro.plan.cache.PlanResultCache` values.
    """

    arrays: Mapping[str, np.ndarray]
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.arrays:
            raise ValueError("a StoreEntry needs at least one array")
        for name, array in self.arrays.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"array names must be non-empty str: {name!r}")
            if not isinstance(array, np.ndarray):
                raise TypeError(
                    f"entry array {name!r} must be numpy, got {type(array)}"
                )

    @property
    def nbytes(self) -> int:
        return int(sum(a.nbytes for a in self.arrays.values()))


def _frozen_copy(array: np.ndarray) -> np.ndarray:
    """Detached, immutable copy of an array (what backends retain)."""
    copy = np.array(array, copy=True)
    copy.flags.writeable = False
    return copy


class ResultStore(abc.ABC):
    """Content-addressed store of computed results.

    Subclasses implement ``_get``/``_put``; the base class provides the
    counted public API and in-flight deduplication for
    :meth:`get_or_compute`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Dict[str, threading.Event] = {}
        self.hits = 0
        self.misses = 0
        self.inflight_hits = 0
        self.puts = 0
        #: entries that existed but failed to read back (treated as misses)
        self.corrupt_misses = 0
        #: capacity evictions (bounded backends)
        self.evictions = 0
        #: write-throughs that failed (the computed value is still
        #: returned — a full disk costs durability, never the answer)
        self.put_errors = 0

    # -- backend hooks -------------------------------------------------
    @abc.abstractmethod
    def _get(self, key: str) -> Optional[StoreEntry]:
        """Return the entry for ``key`` or ``None`` (no counting)."""

    @abc.abstractmethod
    def _put(self, key: str, entry: StoreEntry) -> None:
        """Insert ``entry`` under ``key`` (idempotent by key contract)."""

    def _exclusive(self, key: str):
        """Context guarding a miss-path compute for ``key``.

        The base implementation guards nothing extra (in-process dedup
        is already handled by the pending-event protocol);
        :class:`~repro.store.filestore.SharedFileStore` overrides this
        with an advisory file lock so *processes* dedup too.
        """
        return _NULL_GUARD

    # -- public API ----------------------------------------------------
    def get(self, key: str) -> Optional[StoreEntry]:
        """Counted lookup: the entry for ``key``, or ``None``."""
        entry = self._get(check_key(key))
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def put(self, key: str, entry: StoreEntry) -> None:
        """Insert ``entry`` under ``key``.

        Keys are content-addressed, so concurrent puts of one key carry
        identical bytes and any winner is correct.
        """
        if not isinstance(entry, StoreEntry):
            raise TypeError(f"expected StoreEntry, got {type(entry)}")
        self._put(check_key(key), entry)
        with self._lock:
            self.puts += 1

    def contains(self, key: str) -> bool:
        """Cheap existence probe (no payload read, no hit/miss counting).

        The base implementation falls back to a full ``_get``;
        directory-backed stores override it with a stat call.  Used by
        the store-aware planner, which probes every segment of a sweep:
        a ``True`` from a store whose entry later proves corrupt costs
        one requeued job, never a wrong answer.
        """
        return self._get(check_key(key)) is not None

    def __contains__(self, key: str) -> bool:
        return self.contains(key)

    def delete(self, key: str) -> bool:
        """Remove ``key`` if present; ``True`` when an entry was removed.

        Deleting is always safe — entries are content-addressed, so the
        worst outcome is a future miss and a recompute.  Consumers use
        it to retire entries whose payload failed end-to-end
        verification (:func:`repro.store.verify.fetch_verified`), so a
        store-aware replan sees the damaged key as *missing* instead of
        trusting ``contains``.
        """
        return self._delete(check_key(key))

    def _delete(self, key: str) -> bool:
        """Backend removal hook (best effort; default: no storage)."""
        return False

    def note_corrupt(self, key: str, reason: str = "") -> None:
        """Count (and log) one observed-corrupt entry.

        Every path that demotes a damaged entry to a miss — backend
        self-healing, end-to-end checksum failures — funnels through
        here, so chaos runs can assert corruption was *seen*, never
        silently skipped.
        """
        with self._lock:
            self.corrupt_misses += 1
        logger.warning(
            "corrupt store entry %s treated as a miss%s",
            key,
            f": {reason}" if reason else "",
        )

    def get_or_compute(
        self, key: str, compute: Callable[[], StoreEntry], deadline=None
    ) -> StoreEntry:
        """Return the stored entry, computing (and storing) it at most
        once per key across concurrent in-process callers.

        The first requester claims the key and computes while later
        requesters block on the in-flight event, then re-check — the
        :class:`~repro.plan.cache.PlanResultCache` protocol.  Backends
        with cross-process locks additionally re-check under the lock,
        so a key is computed once per *fleet* of worker processes.

        A failed write-through (disk full, unwritable cache dir) is
        counted in ``put_errors`` and the freshly computed entry is
        returned anyway: persistence failures cost durability, never
        the answer.

        ``deadline`` (a :class:`~repro.utils.retry.Deadline`) bounds
        how long this caller will *wait* — on another requester's
        in-flight computation, or before starting its own — raising
        the typed :class:`~repro.utils.retry.DeadlineExceeded` instead
        of computing expired work.  The computation itself, once
        started, runs to completion (its value is shared by every
        waiter, so abandoning it would waste the others' wait).
        """
        from repro.utils.retry import DeadlineExceeded  # deferred import

        check_key(key)
        while True:
            entry = self.get(key)
            if entry is not None:
                return entry
            with self._lock:
                event = self._pending.get(key)
                if event is None:
                    self._pending[key] = threading.Event()
                    break
                self.inflight_hits += 1
            if deadline is None:
                event.wait()
            elif not event.wait(timeout=deadline.remaining()):
                raise DeadlineExceeded(
                    f"gave up waiting on in-flight compute of {key[:16]}…"
                )
        try:
            if deadline is not None:
                deadline.check(f"store compute of {key[:16]}")
            with self._exclusive(key):
                entry = self._get(key)  # may have landed cross-process
                if entry is None:
                    entry = compute()
                    try:
                        self.put(key, entry)
                    except OSError:
                        with self._lock:
                            self.put_errors += 1
        except BaseException:
            with self._lock:
                self._pending.pop(key).set()
            raise
        with self._lock:
            self._pending.pop(key).set()
        return entry

    # -- bookkeeping ---------------------------------------------------
    def _size_hint(self) -> Optional[int]:
        """Cheap entry count for :meth:`stats`, or ``None`` when only a
        full scan could answer (directory-backed stores — call
        ``len(store)`` explicitly when the walk is worth it)."""
        return len(self)

    def stats(self) -> Dict[str, int]:
        size = self._size_hint()  # outside the lock: may take it itself
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "inflight_hits": self.inflight_hits,
                "puts": self.puts,
                "corrupt_misses": self.corrupt_misses,
                "evictions": self.evictions,
                "put_errors": self.put_errors,
                "size": size,
            }

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of entries currently retrievable."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Drop every entry (counters are kept)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(size={len(self)}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class _NullGuard:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_GUARD = _NullGuard()


class MemoryStore(ResultStore):
    """Process-local LRU backend.

    The fast tier: entries are deep-copied on insert (detaching them
    from caller scratch buffers) and frozen, then shared by reference on
    every hit.  ``max_entries``/``max_bytes`` bound the footprint;
    least-recently-used entries are evicted first and counted in
    ``evictions``.
    """

    def __init__(
        self, max_entries: int | None = 128, max_bytes: int | None = None
    ) -> None:
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[str, StoreEntry]" = OrderedDict()
        self._nbytes = 0

    def _get(self, key: str) -> Optional[StoreEntry]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def _put(self, key: str, entry: StoreEntry) -> None:
        frozen = StoreEntry(
            arrays={
                name: _frozen_copy(a) for name, a in entry.arrays.items()
            },
            meta=dict(entry.meta),
        )
        with self._lock:
            previous = self._entries.pop(key, None)
            if previous is not None:
                self._nbytes -= previous.nbytes
            self._entries[key] = frozen
            self._nbytes += frozen.nbytes
            while self._entries and self._over_budget():
                if next(iter(self._entries)) == key and len(self._entries) == 1:
                    break  # never evict the entry just inserted
                _, evicted = self._entries.popitem(last=False)
                self._nbytes -= evicted.nbytes
                self.evictions += 1

    def _over_budget(self) -> bool:
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        return self.max_bytes is not None and self._nbytes > self.max_bytes

    def _delete(self, key: str) -> bool:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._nbytes -= entry.nbytes
            return True

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._nbytes = 0
