"""Content-addressed keys: canonical fingerprints of analysis inputs.

The store's correctness rests on one property: *two keys are equal iff
the stored bytes are interchangeable*.  This module derives keys by
canonically serialising every input that can change a result and
hashing with SHA-256:

* :func:`fingerprint_digest` — deterministic digest of nested Python
  values (ints, floats by bit pattern, strings, tuples, dicts, ...),
  stable across processes and sessions (unlike ``hash()``, which is
  randomised per interpreter);
* :func:`analysis_key` — the whole-analysis key combining the
  :meth:`~repro.plan.plan.ExecutionPlan.fingerprint` (task layout,
  kernel, balance), the YET and per-layer ELT-set content fingerprints
  of :mod:`repro.plan.cache`, the working dtype, the lookup kind, and
  the secondary-uncertainty stream identity;
* :func:`ylt_digest` — digest of a YLT's exact bytes, used by the
  golden-YLT regression net and the replay benchmark's bit-for-bit
  assertions.

Invalidation is by construction: change any input and the key changes,
so the old entry is simply never looked up again.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import Any

import numpy as np

from repro.data.layer import Layer, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.plan.cache import elt_set_fingerprint, yet_fingerprint
from repro.plan.plan import ExecutionPlan

#: bump when key composition changes (old entries become unreachable,
#: which is the only invalidation this design ever needs).
KEY_SCHEMA = "repro-analysis-v1"

#: schema of per-segment keys (the fleet's unit of stored work).
SEGMENT_SCHEMA = "repro-segment-v1"

#: schema of per-scenario campaign result keys (whole-scenario replay).
SCENARIO_SCHEMA = "repro-scenario-v1"


def canonical_bytes(value: Any) -> bytes:
    """Deterministic, type-tagged serialisation of nested plain values.

    Tags keep distinct types distinct (``1``, ``1.0``, ``"1"`` and
    ``True`` all serialise differently); floats use their IEEE-754 bit
    pattern, so keys distinguish values that ``==`` would conflate
    (``0.0`` vs ``-0.0``) and never depend on repr formatting.
    """
    out = bytearray()
    _serialise(value, out)
    return bytes(out)


def _serialise(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, (int, np.integer)):
        payload = str(int(value)).encode("ascii")
        out += b"I" + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, (float, np.floating)):
        out += b"D" + struct.pack("<d", float(value))
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += b"S" + struct.pack("<I", len(payload)) + payload
    elif isinstance(value, bytes):
        out += b"B" + struct.pack("<I", len(value)) + value
    elif isinstance(value, (tuple, list)):
        out += b"L" + struct.pack("<I", len(value))
        for item in value:
            _serialise(item, out)
    elif isinstance(value, dict):
        items = sorted(value.items(), key=lambda kv: str(kv[0]))
        out += b"M" + struct.pack("<I", len(items))
        for key, item in items:
            _serialise(key, out)
            _serialise(item, out)
    else:
        raise TypeError(
            f"cannot canonically serialise {type(value).__name__}: {value!r}"
        )


def fingerprint_digest(*parts: Any) -> str:
    """SHA-256 hex digest of the canonical serialisation of ``parts``."""
    return hashlib.sha256(canonical_bytes(tuple(parts))).hexdigest()


def secondary_fingerprint(secondary, secondary_seed: int) -> tuple | None:
    """Identity of the secondary-uncertainty stream (or ``None``).

    Keyed by the Beta shape parameters and the *resolved* base seed —
    exactly what the counter-based multiplier streams derive from.
    """
    if secondary is None:
        return None
    return (float(secondary.alpha), float(secondary.beta), int(secondary_seed))


def portfolio_fingerprint(portfolio: Portfolio) -> tuple:
    """Content fingerprint of a portfolio: per-layer terms + ELT sets.

    Layer order matters (it fixes YLT row order); within a layer the
    ELT declaration order matters (it fixes the accumulation order of
    the combined loss vector) — both are preserved, not sorted.
    """
    return tuple(
        (
            int(layer.layer_id),
            layer.terms.as_tuple(),
            elt_set_fingerprint(portfolio.elts_of(layer)),
        )
        for layer in portfolio.layers
    )


def analysis_key(
    plan: ExecutionPlan,
    yet: YearEventTable,
    portfolio: Portfolio,
    dtype: str,
    lookup_kind: str,
    secondary=None,
    secondary_seed: int = 0,
) -> str:
    """The whole-analysis store key for one planned run.

    Covers everything that can change the YLT's bytes: the plan
    fingerprint (task boundaries, kernel, balance — the dense secondary
    path draws per-batch, so decomposition is part of result identity),
    YET content, per-layer terms and ELT contents, working precision,
    lookup representation, and the secondary stream.  Engine *name* is
    deliberately absent: engines with identical numeric configuration
    produce bit-identical YLTs and share replays.
    """
    return fingerprint_digest(
        KEY_SCHEMA,
        plan.fingerprint(),
        yet_fingerprint(yet),
        portfolio_fingerprint(portfolio),
        str(np.dtype(dtype).str),
        str(lookup_kind),
        secondary_fingerprint(secondary, secondary_seed),
    )


def yet_slice_fingerprint(
    yet: YearEventTable, start: int, stop: int
) -> tuple:
    """Content fingerprint of trials ``[start, stop)`` of a YET.

    Deliberately *position-free*: the offsets are rebased to the slice,
    so an identical run of trials fingerprints the same wherever it
    sits in the table.  That is what makes segment keys stable when a
    trial database is extended — the old trials' segments keep their
    keys and a delta plan re-computes only the new tail.  (Stream
    position *is* part of result identity for stochastic kernels; the
    secondary-uncertainty components of :func:`segment_key` add it back
    exactly where the draws depend on it.)
    """
    ids, offsets = yet.csr_block(start, stop)
    return (
        int(stop - start),
        int(ids.size),
        zlib.crc32(np.ascontiguousarray(ids).tobytes()),
        zlib.crc32(np.ascontiguousarray(offsets).tobytes()),
    )


def layer_fingerprint(portfolio: Portfolio, layer: Layer) -> tuple:
    """Content fingerprint of one layer: id, terms, and ELT contents."""
    return (
        int(layer.layer_id),
        layer.terms.as_tuple(),
        elt_set_fingerprint(portfolio.elts_of(layer)),
    )


def segment_key(
    yet: YearEventTable,
    portfolio: Portfolio,
    layer_id: int,
    trial_start: int,
    trial_stop: int,
    occ_start: int,
    kernel: str,
    dtype: str,
    lookup_kind: str,
    secondary=None,
    secondary_seed: int = 0,
    layer_fp: tuple | None = None,
) -> str:
    """The store key of one segment: a (layer, trial-range) of work.

    This is the fleet's unit of memoisation — one
    :class:`~repro.plan.plan.PlanTask` worth of per-trial year losses.
    The key covers the trial slice's *content* (not its position), the
    layer's full numeric identity, and the kernel/precision/lookup
    configuration; deterministic configurations therefore share
    segments across sweeps, across portfolio perturbations that leave a
    layer untouched, and across YET extensions that leave a trial range
    untouched.

    Stochastic state re-introduces position exactly where the kernels
    consume it: the ragged secondary path draws by *global occurrence
    index* (``occ_start`` joins the key), the dense secondary path by
    the task's *trial start* (``trial_start`` joins the key).  Primary
    segments carry neither, so a repeated block of trials is recognised
    as the same work wherever it lands.

    ``layer_fp`` lets a caller deriving many keys of one layer pass the
    precomputed :func:`layer_fingerprint` (the planner fingerprints
    each layer once per delta plan, not once per segment).
    """
    stream = None
    if secondary is not None:
        position = (
            int(trial_start) if kernel == "dense" else int(occ_start)
        )
        stream = (
            str(kernel),
            secondary_fingerprint(secondary, secondary_seed),
            position,
        )
    if layer_fp is None:
        layer_fp = layer_fingerprint(portfolio, portfolio.layer(layer_id))
    return fingerprint_digest(
        SEGMENT_SCHEMA,
        str(kernel),
        yet_slice_fingerprint(yet, trial_start, trial_stop),
        layer_fp,
        str(np.dtype(dtype).str),
        str(lookup_kind),
        stream,
    )


def scenario_result_key(
    campaign_fingerprint: str, scenario_fingerprint: str
) -> str:
    """The store key of one scenario's final campaign YLT.

    A level above segment keys: the campaign fingerprint pins the
    baseline inputs + numeric configuration + staging policy, the
    scenario fingerprint pins the perturbation spec + seed.  Re-running
    a campaign replays unchanged scenarios whole — zero plans, zero
    segment probes — while any edit to either side changes the key and
    falls through to the delta-planned sweep.
    """
    return fingerprint_digest(
        SCENARIO_SCHEMA, str(campaign_fingerprint), str(scenario_fingerprint)
    )


def ylt_digest(ylt: YearLossTable) -> str:
    """SHA-256 of a YLT's exact contents (layer ids + loss bytes)."""
    digest = hashlib.sha256()
    digest.update(canonical_bytes(tuple(ylt.layer_ids)))
    digest.update(np.ascontiguousarray(ylt.losses).tobytes())
    return digest.hexdigest()
