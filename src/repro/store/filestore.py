"""File-backed result stores: durable, mmap-read, multi-process safe.

Layout under one cache directory::

    <cache_dir>/
        objects/<k[:2]>/<key>/     # one directory per entry
            meta.json              # format tag, per-array checksums, meta
            <name>.npy             # one plain npy per array (mmap-able)
        tmp/                       # scratch dirs, renamed into objects/
        locks/<key>.lock           # SharedFileStore advisory locks

Writes follow the rename discipline of :mod:`repro.io.atomic`: the
entry directory is fully materialised under ``tmp/`` and then renamed
into ``objects/`` in one atomic step, so a reader can never observe a
half-written entry — it sees the complete entry or a miss.  Losing a
publish race discards the duplicate payload (content addressing makes
both byte-identical).

Reads memory-map the arrays by default: replaying a cached YLT costs a
``meta.json`` parse plus page-table setup, and the page cache is shared
across every process replaying the same analysis.  Each array's CRC32
is verified on load (``verify=False`` skips this and keeps the mapping
fully lazy); any damage — truncated npy, bad checksum, malformed or
missing ``meta.json`` — demotes the entry to a miss, removes it, and
bumps ``corrupt_misses``.  A corrupt cache can slow you down; it cannot
change an answer.
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence, Union

import numpy as np

from repro.io.atomic import (
    array_crc32,
    load_npy,
    lock_file,
    publish_dir,
    remove_dir,
    scratch_dir,
    touch,
    write_npy,
)
from repro.store.base import (
    MemoryStore,
    ResultStore,
    StoreEntry,
    check_key,
    logger,
)
from repro.utils.latency import LatencyTracker
from repro.utils.retry import CircuitBreaker

PathLike = Union[str, Path]

_META_NAME = "meta.json"
_FORMAT = "repro-store-v1"

#: default cache location; overridden by the ``REPRO_CACHE_DIR``
#: environment variable or an explicit ``cache_dir`` argument.
DEFAULT_CACHE_DIR = "~/.cache/repro-ara"
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def resolve_cache_dir(cache_dir: PathLike | None = None) -> Path:
    """The cache root: explicit argument > ``$REPRO_CACHE_DIR`` > default."""
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    return Path(cache_dir).expanduser()


class FileStore(ResultStore):
    """Durable backend under a cache directory.

    Safe for concurrent readers and writers by construction (atomic
    renames); :meth:`get_or_compute` deduplicates computations within
    one process.  Use :class:`SharedFileStore` when several *processes*
    may compute the same keys and the computation is expensive enough
    to be worth a lock file.

    Parameters
    ----------
    cache_dir:
        Root directory (created on first write).  ``None`` resolves via
        ``$REPRO_CACHE_DIR`` and the package default.
    mmap:
        Memory-map arrays on read (default) instead of loading copies.
    verify:
        Check each array's recorded CRC32 on read.  Costs one pass over
        the bytes; disable to keep mmap reads fully lazy when the
        filesystem is trusted.
    track_access:
        Touch each entry directory's mtime on successful read (one
        ``utime`` syscall), giving ``repro-store gc``'s LRU policy a
        last-access time that survives ``noatime`` mounts.  Disable for
        read-only cache dirs.
    """

    def __init__(
        self,
        cache_dir: PathLike | None = None,
        mmap: bool = True,
        verify: bool = True,
        track_access: bool = True,
    ) -> None:
        super().__init__()
        self.cache_dir = resolve_cache_dir(cache_dir)
        self.mmap = bool(mmap)
        self.verify = bool(verify)
        self.track_access = bool(track_access)

    # -- paths ---------------------------------------------------------
    @property
    def _objects_dir(self) -> Path:
        return self.cache_dir / "objects"

    @property
    def _tmp_dir(self) -> Path:
        return self.cache_dir / "tmp"

    @property
    def _locks_dir(self) -> Path:
        return self.cache_dir / "locks"

    def entry_dir(self, key: str) -> Path:
        """Final directory of one entry (two-level fan-out by prefix)."""
        key = check_key(key)
        return self._objects_dir / key[:2] / key

    # -- backend hooks -------------------------------------------------
    def _get(self, key: str) -> Optional[StoreEntry]:
        path = self.entry_dir(key)
        meta_path = path / _META_NAME
        if not meta_path.is_file():
            if path.is_dir():
                # Entry directory without its manifest: damage (the
                # publish rename is atomic, so a live entry always has
                # one).  Heal it *audibly* — counted and logged, never
                # silently skipped — so chaos runs can assert the
                # corruption was seen.
                self.note_corrupt(key, "entry directory lost meta.json")
                remove_dir(path)
            return None
        try:
            manifest = json.loads(meta_path.read_text())
            if manifest.get("format") != _FORMAT:
                raise ValueError(f"bad format tag: {manifest.get('format')}")
            arrays: Dict[str, np.ndarray] = {}
            for name, spec in manifest["arrays"].items():
                array = load_npy(path / f"{name}.npy", mmap=self.mmap)
                if array.nbytes != int(spec["nbytes"]):
                    raise ValueError(
                        f"array {name!r}: {array.nbytes} bytes on disk, "
                        f"manifest says {spec['nbytes']}"
                    )
                if self.verify and array_crc32(array) != int(spec["crc32"]):
                    raise ValueError(f"array {name!r}: checksum mismatch")
                arrays[name] = array
            if self.track_access:
                touch(path)
            return StoreEntry(arrays=arrays, meta=manifest.get("meta", {}))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # Truncated/garbled entries are a miss, never a wrong answer.
            self.note_corrupt(key, repr(exc))
            remove_dir(path)
            return None

    def _put(self, key: str, entry: StoreEntry) -> None:
        tmp = scratch_dir(self._tmp_dir, prefix=key[:16])
        try:
            manifest = {
                "format": _FORMAT,
                "arrays": {},
                "meta": dict(entry.meta),
            }
            for name, array in entry.arrays.items():
                check_key(name)  # array names become file names
                nbytes = write_npy(tmp / f"{name}.npy", array)
                manifest["arrays"][name] = {
                    "nbytes": nbytes,
                    "crc32": array_crc32(array),
                }
            (tmp / _META_NAME).write_text(json.dumps(manifest, indent=1))
        except BaseException:
            remove_dir(tmp)
            raise
        publish_dir(tmp, self.entry_dir(key))

    def contains(self, key: str) -> bool:
        """Existence = a published ``meta.json`` (one stat, no read)."""
        return (self.entry_dir(key) / _META_NAME).is_file()

    def _delete(self, key: str) -> bool:
        path = self.entry_dir(key)
        existed = (path / _META_NAME).is_file()
        remove_dir(path)
        return existed

    # -- bookkeeping ---------------------------------------------------
    def _size_hint(self):
        return None  # an exact count is a directory walk: len() only

    def __len__(self) -> int:
        if not self._objects_dir.is_dir():
            return 0
        return sum(
            1
            for prefix in self._objects_dir.iterdir()
            if prefix.is_dir()
            for entry in prefix.iterdir()
            if (entry / _META_NAME).is_file()
        )

    def clear(self) -> None:
        for sub in (self._objects_dir, self._tmp_dir, self._locks_dir):
            remove_dir(sub)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(cache_dir={str(self.cache_dir)!r}, "
            f"mmap={self.mmap}, verify={self.verify})"
        )


class SharedFileStore(FileStore):
    """A :class:`FileStore` whose computations dedup across processes.

    :meth:`get_or_compute` takes a per-key advisory lock
    (``flock(2)`` on ``locks/<key>.lock``) around the miss path and
    re-checks the entry after acquiring it, so N worker processes
    racing on one fingerprint run the computation exactly once — the
    cross-process analogue of the quote service's in-flight dedup.  On
    platforms without ``fcntl`` it degrades to plain :class:`FileStore`
    semantics (atomic writes still guarantee correctness; only the
    duplicate work is possible).
    """

    @contextmanager
    def _exclusive(self, key: str):
        # An unlockable cache dir costs cross-process dedup, never the
        # computation (lock_file degrades to an unlocked pass-through
        # and in-process dedup still holds).
        with lock_file(self._locks_dir / f"{key}.lock"):
            yield


class TieredStore(ResultStore):
    """Fast-over-durable composition of stores, with tier quarantine.

    ``get`` consults tiers in order and *promotes* a hit into every
    faster tier (so a file hit lands in memory for the next request);
    ``put`` writes through to every tier.  The canonical serving shape
    is ``TieredStore([MemoryStore(...), SharedFileStore(dir)])`` — hot
    results at reference speed, warm results at page-cache speed, and
    restart survival for free.  Miss-path exclusivity delegates to the
    last (shared, slowest) tier, preserving its cross-process dedup.

    Each tier sits behind a :class:`~repro.utils.retry.CircuitBreaker`:
    a tier whose operations keep *raising* (a network tier mid-outage,
    a cache dir on a dying disk) is quarantined for
    ``breaker_cooldown_seconds`` after ``breaker_threshold``
    consecutive failures, and traffic falls through to the remaining
    tiers — degraded (slower, less durable), never wrong.  After the
    cooldown one probe request is let through; success closes the
    breaker.  Per-tier breaker state and error counts are surfaced in
    :meth:`stats`.  A ``put`` that fails on *every* tier still raises
    (there is nothing left to degrade to), which
    ``get_or_compute`` converts into ``put_errors`` + a served answer.

    **Hedged reads** (``hedge=True``): breakers quarantine a tier that
    *errors*; hedging routes around a tier that is merely *slow*.  Each
    tier's ``get`` latencies feed a :class:`~repro.utils.latency.
    LatencyTracker`; when the first tier's read has outlived that
    tier's tracked ``hedge_quantile`` (clamped to
    ``[hedge_min_delay, hedge_max_delay]``), a hedge request is issued
    against the *remaining* tiers and the first useful result wins —
    the straggling primary read is abandoned (its daemon thread
    finishes harmlessly).  ``hedged_get`` additionally accepts a
    ``validate`` predicate so consumers can take the first *verified*
    result (:func:`repro.store.verify.fetch_verified` passes its
    end-to-end checksum check).  Wins/losses are counted in
    :meth:`stats` under ``hedge``.
    """

    def __init__(
        self,
        stores: Sequence[ResultStore],
        breaker_threshold: int = 5,
        breaker_cooldown_seconds: float = 30.0,
        clock=None,
        hedge: bool = False,
        hedge_quantile: float = 0.95,
        hedge_min_delay: float = 0.002,
        hedge_max_delay: float = 0.25,
    ) -> None:
        super().__init__()
        if not stores:
            raise ValueError("TieredStore needs at least one store")
        if not 0.0 < hedge_quantile <= 1.0:
            raise ValueError(
                f"hedge_quantile must be in (0, 1], got {hedge_quantile}"
            )
        if not 0.0 < hedge_min_delay <= hedge_max_delay:
            raise ValueError(
                f"need 0 < hedge_min_delay <= hedge_max_delay, got "
                f"{hedge_min_delay}/{hedge_max_delay}"
            )
        self.stores = list(stores)
        import time as _time

        self._clock = clock or _time.monotonic
        self._breakers = [
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                cooldown_seconds=breaker_cooldown_seconds,
                clock=self._clock,
            )
            for _ in self.stores
        ]
        self.hedge = bool(hedge) and len(self.stores) > 1
        self.hedge_quantile = float(hedge_quantile)
        self.hedge_min_delay = float(hedge_min_delay)
        self.hedge_max_delay = float(hedge_max_delay)
        self._trackers = [LatencyTracker() for _ in self.stores]
        #: exceptions swallowed while degrading around a tier
        self.tier_errors = 0
        #: hedge requests actually launched / won by the hedge / won by
        #: the primary read despite the hedge
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.hedge_losses = 0
        self.hedge_misses = 0

    # -- breaker plumbing ---------------------------------------------
    def _tier_allowed(self, index: int) -> bool:
        with self._lock:
            return self._breakers[index].allow()

    def _tier_result(self, index: int, ok: bool, key: str, op: str, exc=None):
        with self._lock:
            breaker = self._breakers[index]
            if ok:
                breaker.record_success()
                return
            breaker.record_failure()
            self.tier_errors += 1
            tripped = breaker.state == "open"
        logger.warning(
            "store tier %d failed %s(%s): %r%s",
            index,
            op,
            key[:16],
            exc,
            " — tier quarantined" if tripped else "",
        )

    def _get_sequential(
        self,
        key: str,
        tier_indices: Sequence[int],
        validate: Callable[[StoreEntry], bool] | None = None,
    ) -> Optional[StoreEntry]:
        """The ordered waterfall over ``tier_indices``.

        Hits are promoted into every faster tier; each tier's read
        latency feeds its hedge tracker.  With ``validate``, an entry
        failing the predicate is remembered but the scan continues — a
        deeper tier may hold an undamaged replica — and the last
        invalid entry is returned only when nothing valid surfaced (so
        the caller's corruption handling still sees the damage).
        """
        invalid: Optional[StoreEntry] = None
        for i in tier_indices:
            if not self._tier_allowed(i):
                continue
            store = self.stores[i]
            started = self._clock()
            try:
                entry = store._get(key)
            except Exception as exc:
                self._tier_result(i, False, key, "get", exc)
                continue
            self._trackers[i].record(self._clock() - started)
            self._tier_result(i, True, key, "get")
            if entry is None:
                continue
            if validate is not None and not validate(entry):
                invalid = entry
                continue
            for j, faster in enumerate(self.stores[:i]):
                if not self._tier_allowed(j):
                    continue
                try:
                    faster._put(key, entry)
                    self._tier_result(j, True, key, "promote")
                except Exception as exc:
                    self._tier_result(j, False, key, "promote", exc)
            return entry
        return invalid

    def _get(self, key: str) -> Optional[StoreEntry]:
        if self.hedge:
            return self._hedged_lookup(key, None)
        return self._get_sequential(key, range(len(self.stores)))

    # -- hedged reads --------------------------------------------------
    def hedge_delay(self) -> float:
        """Seconds the primary read may run before a hedge launches.

        The first tier's tracked ``hedge_quantile`` latency, clamped to
        ``[hedge_min_delay, hedge_max_delay]`` — so a healthy fast tier
        hedges only its own tail, and an untracked (cold) store hedges
        eagerly at the floor rather than never.
        """
        tracked = self._trackers[0].quantile(self.hedge_quantile)
        if tracked is None:
            tracked = self.hedge_min_delay
        return min(self.hedge_max_delay, max(self.hedge_min_delay, tracked))

    def hedged_get(
        self,
        key: str,
        validate: Callable[[StoreEntry], bool] | None = None,
    ) -> Optional[StoreEntry]:
        """Counted lookup that hedges a slow first tier.

        Like :meth:`get`, but when the primary waterfall has not
        answered within :meth:`hedge_delay`, a second waterfall is
        launched that *skips the first tier*, and the first useful
        result (``validate``-passing when a predicate is given) is
        served.  Falls back to a plain sequential read when the store
        has a single tier.
        """
        entry = self._hedged_lookup(check_key(key), validate)
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def _hedged_lookup(
        self,
        key: str,
        validate: Callable[[StoreEntry], bool] | None,
    ) -> Optional[StoreEntry]:
        if len(self.stores) < 2:
            return self._get_sequential(key, range(len(self.stores)), validate)

        arrived = threading.Condition()
        outcomes: Dict[str, Optional[StoreEntry]] = {}

        def lookup(label: str, tier_indices: Sequence[int]) -> None:
            try:
                found = self._get_sequential(key, tier_indices, validate)
            except Exception:  # degraded tiers already counted
                found = None
            with arrived:
                outcomes[label] = found
                arrived.notify_all()

        def usable(entry: Optional[StoreEntry]) -> bool:
            return entry is not None and (
                validate is None or validate(entry)
            )

        primary = threading.Thread(
            target=lookup,
            args=("primary", range(len(self.stores))),
            name="tiered-get",
            daemon=True,
        )
        primary.start()
        primary.join(self.hedge_delay())
        with arrived:
            if "primary" in outcomes:
                return outcomes["primary"]
        # The primary read has outlived the hedge trigger: race the
        # remaining tiers against it and serve whichever answers first.
        with self._lock:
            self.hedges_issued += 1
        hedge = threading.Thread(
            target=lookup,
            args=("hedge", range(1, len(self.stores))),
            name="tiered-get-hedge",
            daemon=True,
        )
        hedge.start()
        with arrived:
            while True:
                for label in ("primary", "hedge"):
                    if usable(outcomes.get(label)):
                        with self._lock:
                            if label == "hedge":
                                self.hedge_wins += 1
                            else:
                                self.hedge_losses += 1
                        return outcomes[label]
                if len(outcomes) == 2:
                    # Neither produced a valid entry; surface whatever
                    # invalid payload exists so corruption handling
                    # runs.  A both-miss is not a hedge *loss* — the
                    # primary did not beat the hedge; nobody won.
                    with self._lock:
                        self.hedge_misses += 1
                    return outcomes["primary"] or outcomes["hedge"]
                arrived.wait()

    def _put(self, key: str, entry: StoreEntry) -> None:
        stored = 0
        last_error: Exception | None = None
        for i, store in enumerate(self.stores):
            if not self._tier_allowed(i):
                continue
            try:
                store._put(key, entry)
                self._tier_result(i, True, key, "put")
                stored += 1
            except Exception as exc:
                self._tier_result(i, False, key, "put", exc)
                last_error = exc
        if stored == 0:
            # Nothing accepted the write: degrade no further, surface it.
            raise last_error if last_error is not None else OSError(
                f"every tier quarantined; cannot store {key[:16]}"
            )

    def _exclusive(self, key: str):
        return self.stores[-1]._exclusive(key)

    def contains(self, key: str) -> bool:
        for i, store in enumerate(self.stores):
            if not self._tier_allowed(i):
                continue
            try:
                if store.contains(key):
                    return True
            except Exception as exc:
                self._tier_result(i, False, key, "contains", exc)
        return False

    def _delete(self, key: str) -> bool:
        # Deletes ride the same degradation machinery as every other
        # op: a quarantined tier is skipped (its copy is swept when the
        # breaker re-admits it), and a failing tier's exception feeds
        # its breaker instead of vanishing.
        deleted = False
        for i, store in enumerate(self.stores):
            if not self._tier_allowed(i):
                continue
            try:
                deleted = store._delete(key) or deleted
                self._tier_result(i, True, key, "delete")
            except Exception as exc:
                self._tier_result(i, False, key, "delete", exc)
        return deleted

    def stats(self) -> Dict[str, object]:
        """Aggregated counters plus the per-tier breakdown.

        Top-level ``hits``/``misses`` count requests against the tiered
        view; counters that only ever tick *inside* a tier — capacity
        ``evictions`` (memory LRU), ``corrupt_misses`` (file damage),
        ``put_errors`` (failed write-throughs) — are summed into the
        aggregate so every :class:`ResultStore` backend reports the
        same shape, and ``tiers`` carries each tier's own view in
        order (fleet workers log this to show cache effectiveness).
        Each tier's view additionally carries its circuit ``breaker``
        state, and the aggregate counts ``tier_errors`` (exceptions
        degraded around) and ``breaker_trips``.
        """
        aggregated: Dict[str, object] = super().stats()
        tiers = [store.stats() for store in self.stores]
        latencies = [tracker.summary() for tracker in self._trackers]
        with self._lock:
            for tier, breaker, latency in zip(
                tiers, self._breakers, latencies
            ):
                tier["breaker"] = breaker.as_dict()
                tier["get_latency"] = latency
            aggregated["tier_errors"] = self.tier_errors
            aggregated["breaker_trips"] = sum(
                b.trips for b in self._breakers
            )
            aggregated["hedge"] = {
                "enabled": self.hedge,
                "issued": self.hedges_issued,
                "wins": self.hedge_wins,
                "losses": self.hedge_losses,
                "misses": self.hedge_misses,
            }
        for field in ("evictions", "corrupt_misses", "put_errors"):
            aggregated[field] = int(aggregated[field]) + sum(
                int(tier[field]) for tier in tiers
            )
        aggregated["tiers"] = tiers
        return aggregated

    def _size_hint(self):
        return self.stores[0]._size_hint()  # the hot tier's count

    def __len__(self) -> int:
        return max(len(store) for store in self.stores)

    def clear(self) -> None:
        for store in self.stores:
            store.clear()


def default_store(
    cache_dir: PathLike | None = None,
    memory_entries: int | None = 64,
    mmap: bool = True,
    verify: bool = True,
) -> TieredStore:
    """The standard serving store: memory LRU over a shared file store.

    ``cache_dir`` resolution honours ``$REPRO_CACHE_DIR``; see
    :func:`resolve_cache_dir`.
    """
    return TieredStore(
        [
            MemoryStore(max_entries=memory_entries),
            SharedFileStore(cache_dir, mmap=mmap, verify=verify),
        ]
    )
