"""Content-addressed result store: plan persistence and replay.

The plan layer made every analysis deterministic and fingerprintable;
this package makes those fingerprints *addresses*.  A
:class:`~repro.store.base.ResultStore` maps content keys (derived from
plan + YET + portfolio + numeric configuration by
:mod:`repro.store.keys`) to stored results, so:

* re-running an identical analysis is a hash lookup, not an engine run
  (``AggregateRiskAnalysis.run(..., store=...)`` /
  ``Engine.run(..., store=...)`` — whole-analysis memoisation);
* the :class:`~repro.pricing.realtime.QuoteService`'s base combined
  occurrence-loss vectors survive process restarts and are shared
  across worker processes
  (:class:`~repro.plan.cache.PlanResultCache` ``store=`` backing);
* parameter sweeps and many-user serving pay for each distinct
  computation once per fleet, not once per process.

Backends: :class:`~repro.store.base.MemoryStore` (process-local LRU),
:class:`~repro.store.filestore.FileStore` (durable, atomic writes,
mmap reads), :class:`~repro.store.filestore.SharedFileStore` (adds
cross-process compute dedup via advisory locks) and
:class:`~repro.store.filestore.TieredStore` (fast-over-durable
composition; :func:`~repro.store.filestore.default_store` is the
standard memory-over-shared-file stack honouring ``$REPRO_CACHE_DIR``).
"""

from repro.store.base import MemoryStore, ResultStore, StoreEntry, check_key
from repro.store.codec import (
    array_from_entry,
    entry_from_array,
    entry_from_ylt,
    ylt_from_entry,
)
from repro.store.filestore import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    FileStore,
    SharedFileStore,
    TieredStore,
    default_store,
    resolve_cache_dir,
)
from repro.store.gc import GCReport, collect_garbage, scan_entries
from repro.store.verify import (
    attach_checksums,
    entry_checksums,
    fetch_verified,
    verify_entry,
)
from repro.store.keys import (
    KEY_SCHEMA,
    SEGMENT_SCHEMA,
    analysis_key,
    canonical_bytes,
    fingerprint_digest,
    layer_fingerprint,
    portfolio_fingerprint,
    secondary_fingerprint,
    segment_key,
    yet_slice_fingerprint,
    ylt_digest,
)

__all__ = [
    "ResultStore",
    "StoreEntry",
    "MemoryStore",
    "FileStore",
    "SharedFileStore",
    "TieredStore",
    "default_store",
    "resolve_cache_dir",
    "DEFAULT_CACHE_DIR",
    "CACHE_DIR_ENV",
    "check_key",
    "entry_from_ylt",
    "ylt_from_entry",
    "entry_from_array",
    "array_from_entry",
    "analysis_key",
    "fingerprint_digest",
    "canonical_bytes",
    "portfolio_fingerprint",
    "secondary_fingerprint",
    "segment_key",
    "layer_fingerprint",
    "yet_slice_fingerprint",
    "ylt_digest",
    "KEY_SCHEMA",
    "SEGMENT_SCHEMA",
    "GCReport",
    "collect_garbage",
    "scan_entries",
    "attach_checksums",
    "entry_checksums",
    "fetch_verified",
    "verify_entry",
]
