"""Garbage collection for file-backed result stores.

Entries are immutable and content-addressed, so removal is always safe:
a collected entry can only ever cause a future cache *miss* (and a
re-compute), never a wrong answer.  That makes the policy a pure
economics question — keep the bytes most likely to be read again — and
the classic answer is LRU by access time.

:class:`~repro.store.filestore.FileStore` touches each entry
directory's mtime on every successful read (``track_access=True``, the
default), so the mtime is a last-access clock that works on ``noatime``
mounts.  :func:`collect_garbage` scans ``objects/``, sorts entries by
that clock, and removes oldest-first until the store fits a total-byte
budget.  Stale scratch directories under ``tmp/`` (crashed writers) and
the lock files of removed entries are swept as a side effect.

``repro-store gc`` (:mod:`repro.store.cli`) is the operational wrapper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Union

from repro.io.atomic import dir_nbytes, remove_dir, try_lock_file
from repro.store.filestore import resolve_cache_dir

PathLike = Union[str, Path]

#: scratch dirs older than this are considered abandoned by a crashed
#: writer (a live writer publishes within seconds).
STALE_TMP_SECONDS = 3600.0


@dataclass(frozen=True)
class StoreEntryInfo:
    """One scanned entry: its key, location, size and last access."""

    key: str
    path: Path
    nbytes: int
    atime: float


@dataclass
class GCReport:
    """What a collection pass saw and did (or would do, dry-run)."""

    budget_bytes: int
    dry_run: bool
    scanned_entries: int = 0
    scanned_bytes: int = 0
    removed_entries: int = 0
    removed_bytes: int = 0
    stale_tmp_dirs: int = 0
    removed_keys: List[str] = field(default_factory=list)

    @property
    def kept_entries(self) -> int:
        return self.scanned_entries - self.removed_entries

    @property
    def kept_bytes(self) -> int:
        return self.scanned_bytes - self.removed_bytes


def scan_entries(cache_dir: PathLike | None = None) -> List[StoreEntryInfo]:
    """All published entries under a cache dir, oldest access first.

    Size is the sum of the entry directory's file sizes; access time is
    the directory mtime (bumped on every tracked read).  Entries that
    vanish mid-scan (a concurrent GC or self-healing removal) are
    skipped.
    """
    objects = resolve_cache_dir(cache_dir) / "objects"
    entries: List[StoreEntryInfo] = []
    if not objects.is_dir():
        return entries
    for prefix in sorted(objects.iterdir()):
        if not prefix.is_dir():
            continue
        for entry in sorted(prefix.iterdir()):
            try:
                if not (entry / "meta.json").is_file():
                    continue
                entries.append(
                    StoreEntryInfo(
                        key=entry.name,
                        path=entry,
                        nbytes=dir_nbytes(entry),
                        atime=entry.stat().st_mtime,
                    )
                )
            except OSError:
                continue
    entries.sort(key=lambda info: (info.atime, info.key))
    return entries


def collect_garbage(
    cache_dir: PathLike | None = None,
    max_bytes: int = 0,
    dry_run: bool = False,
    now: float | None = None,
) -> GCReport:
    """LRU-collect a cache dir down to ``max_bytes`` total entry bytes.

    Removes least-recently-accessed entries first until the remainder
    fits the budget (``max_bytes=0`` removes everything), then sweeps
    abandoned ``tmp/`` scratch dirs and the removed entries' lock
    files.  ``dry_run`` reports the same plan without touching disk.

    Concurrency: removal races benignly with readers (they see a miss
    and recompute) and with writers (an entry re-published after
    removal is simply a fresh entry).  Entry removal takes no locks;
    lock-*file* removal probes each file with a non-blocking ``flock``
    and skips any still held by a live writer, so per-key exclusivity
    is never silently split across two lock files.
    """
    if max_bytes < 0:
        raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
    root = resolve_cache_dir(cache_dir)
    entries = scan_entries(root)
    report = GCReport(budget_bytes=int(max_bytes), dry_run=bool(dry_run))
    report.scanned_entries = len(entries)
    report.scanned_bytes = sum(info.nbytes for info in entries)

    excess = report.scanned_bytes - int(max_bytes)
    for info in entries:
        if excess <= 0:
            break
        if not dry_run:
            remove_dir(info.path)
            # Unlink the entry's lock file only while *holding* its
            # flock: a writer in get_or_compute may hold this very
            # lock right now, and unlinking under it would let a
            # second writer lock a fresh file of the same name —
            # two "exclusive" computations for one key.  A held lock
            # simply keeps its file (a later pass sweeps it).
            lock_path = root / "locks" / f"{info.key}.lock"
            if lock_path.exists():
                with try_lock_file(lock_path) as locked:
                    if locked:
                        try:
                            lock_path.unlink()
                        except OSError:
                            pass
        report.removed_entries += 1
        report.removed_bytes += info.nbytes
        report.removed_keys.append(info.key)
        excess -= info.nbytes

    now = time.time() if now is None else float(now)
    tmp_dir = root / "tmp"
    if tmp_dir.is_dir():
        for scratch in tmp_dir.iterdir():
            try:
                stale = now - scratch.stat().st_mtime > STALE_TMP_SECONDS
            except OSError:
                continue
            if stale:
                report.stale_tmp_dirs += 1
                if not dry_run:
                    remove_dir(scratch)
    return report
