"""Converters between analysis result objects and store entries.

Entries carry raw arrays plus JSON-able metadata; these helpers define
the array names the rest of the system relies on (``losses`` /
``layer_ids`` for YLTs, ``value`` for single cached vectors) so every
layer that touches the store round-trips the same layout.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.data.ylt import YearLossTable
from repro.store.base import StoreEntry


def entry_from_ylt(
    ylt: YearLossTable, meta: Mapping[str, Any] | None = None
) -> StoreEntry:
    """Wrap a YLT as a store entry (losses + layer ids, exact bytes)."""
    return StoreEntry(
        arrays={
            "losses": ylt.losses,
            "layer_ids": np.asarray(ylt.layer_ids, dtype=np.int64),
        },
        meta=dict(meta or {}),
    )


def ylt_from_entry(entry: StoreEntry) -> YearLossTable:
    """Rebuild the YLT stored by :func:`entry_from_ylt` (bit-for-bit)."""
    return YearLossTable(
        layer_ids=tuple(int(i) for i in entry.arrays["layer_ids"]),
        losses=entry.arrays["losses"],
    )


def entry_from_array(
    array: np.ndarray, meta: Mapping[str, Any] | None = None
) -> StoreEntry:
    """Wrap one array (a cached base/loss vector) as a store entry."""
    return StoreEntry(arrays={"value": array}, meta=dict(meta or {}))


def array_from_entry(entry: StoreEntry) -> np.ndarray:
    """The single array stored by :func:`entry_from_array`."""
    return entry.arrays["value"]
