"""Digest-checked store reads: verify, retry, then recompute.

The file store already checks each array's CRC against its on-disk
manifest, but that only proves the *backend* read what the backend
wrote.  Once entries cross wrapper layers (fault injection today, a
network tier tomorrow), the payload can be damaged after the backend's
own check passed — so producers attach end-to-end checksums to the
entry *metadata* (:func:`attach_checksums`) and consumers verify them
on every fetch (:func:`fetch_verified`).

The consumer protocol is deliberately gentle with transient damage:

1. fetch; if the entry verifies, serve it;
2. on mismatch, **retry** under a :class:`~repro.utils.retry.RetryPolicy`
   — a torn read or an injected corruption usually heals on the next
   attempt;
3. only when every attempt returns damaged bytes is the entry judged
   *durably* corrupt: it is deleted (so store-aware planners see the
   key as missing) and the caller falls back to **recompute**.

Entries without recorded checksums verify trivially — old producers
and foreign entries keep working; they just don't get the end-to-end
guarantee.
"""

from __future__ import annotations

import logging
from typing import Dict, Optional

from repro.io.atomic import array_crc32
from repro.store.base import ResultStore, StoreEntry
from repro.utils.retry import (
    STORE_FETCH_POLICY,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
    retry_call,
)

logger = logging.getLogger("repro.store")

#: meta key carrying the per-array end-to-end checksums.
CHECKSUM_META_KEY = "crc32s"


def entry_checksums(entry: StoreEntry) -> Dict[str, int]:
    """CRC32 of each array's raw bytes, keyed by array name."""
    return {
        name: array_crc32(array) for name, array in entry.arrays.items()
    }


def attach_checksums(entry: StoreEntry) -> StoreEntry:
    """A copy of ``entry`` whose meta records end-to-end checksums."""
    return StoreEntry(
        arrays=entry.arrays,
        meta={**dict(entry.meta), CHECKSUM_META_KEY: entry_checksums(entry)},
    )


def verify_entry(entry: StoreEntry) -> bool:
    """Does the entry match its recorded checksums?

    ``True`` when every recorded array checksum matches the bytes (and
    every recorded array is present); also ``True`` when no checksums
    were recorded — absence of the guarantee is not damage.
    """
    recorded = dict(entry.meta).get(CHECKSUM_META_KEY)
    if not recorded:
        return True
    for name, crc in recorded.items():
        array = entry.arrays.get(name)
        if array is None or array_crc32(array) != int(crc):
            return False
    return True


def fetch_verified(
    store: ResultStore,
    key: str,
    policy: RetryPolicy = STORE_FETCH_POLICY,
    deadline: Deadline | None = None,
    hedged: bool | None = None,
    **retry_kwargs,
) -> Optional[StoreEntry]:
    """Digest-checked ``store.get``: retry damage, delete what persists.

    Returns the first entry that passes :func:`verify_entry`, or
    ``None`` when the key is missing or every attempt under ``policy``
    returned damaged bytes (the durably corrupt entry is deleted and
    counted via :meth:`~repro.store.base.ResultStore.note_corrupt`, so
    replanning sees the key as missing and recomputes it).  Transient
    IO errors from the store retry under the same policy.

    ``deadline`` threads the caller's end-to-end budget into the retry
    loop (no sleep past it).  On a hedging-enabled
    :class:`~repro.store.filestore.TieredStore` the fetch rides
    ``hedged_get`` with :func:`verify_entry` as the validator, so the
    *first verified* tier result wins — a slow first tier costs its
    hedge delay, not its tail latency; pass ``hedged=False`` to force a
    plain sequential read (or ``True`` to require hedging support).
    """

    class _Damaged(OSError):
        pass

    if hedged is None:
        hedged = bool(getattr(store, "hedge", False))
    fetch = (
        (lambda: store.hedged_get(key, validate=verify_entry))
        if hedged and hasattr(store, "hedged_get")
        else (lambda: store.get(key))
    )
    saw_damage = False

    def attempt() -> Optional[StoreEntry]:
        nonlocal saw_damage
        entry = fetch()
        if entry is None:
            return None
        if not verify_entry(entry):
            saw_damage = True
            raise _Damaged(f"checksum mismatch reading {key}")
        return entry

    damage_policy = policy.with_(retry_on=policy.retry_on + (_Damaged,))
    try:
        return retry_call(
            attempt, damage_policy, deadline=deadline, **retry_kwargs
        )
    except DeadlineExceeded:
        raise  # the caller's budget, not a fetch failure: propagate typed
    except _Damaged:
        store.note_corrupt(key, "end-to-end checksum mismatch persisted")
        store.delete(key)
        return None
    except policy.retry_on as exc:
        if saw_damage:
            # The budget ran out on a transient error, but at least one
            # read returned damaged bytes and none verified.  If the
            # damage is durable, leaving the entry in place wedges
            # store-aware replanning forever (``contains`` says present,
            # every fetch says bad) — so treat it as corrupt.  Worst
            # case a transiently-damaged entry costs one recompute.
            store.note_corrupt(
                key, "checksum mismatch unresolved within retry budget"
            )
            store.delete(key)
            return None
        logger.warning("store fetch of %s failed after retries: %r", key, exc)
        return None
