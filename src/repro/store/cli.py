"""``repro-store`` command line: cache-dir operations for operators.

Examples::

    repro-store stats
    repro-store gc --max-bytes 2G
    repro-store gc --cache-dir /var/cache/repro --max-bytes 512M --dry-run

The cache directory resolves like everywhere else: ``--cache-dir`` >
``$REPRO_CACHE_DIR`` > the package default.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List

from repro.store.filestore import resolve_cache_dir
from repro.store.gc import collect_garbage, scan_entries

_SIZE_SUFFIXES = {"": 1, "k": 1024, "m": 1024**2, "g": 1024**3, "t": 1024**4}


def parse_size(text: str) -> int:
    """Parse ``"512M"``/``"2g"``/``"1048576"`` into bytes."""
    raw = text.strip().lower().removesuffix("b")
    suffix = raw[-1:] if raw[-1:] in _SIZE_SUFFIXES and raw[-1:].isalpha() else ""
    number = raw[: len(raw) - len(suffix)]
    try:
        value = float(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"unreadable size: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0: {text!r}")
    return int(value * _SIZE_SUFFIXES[suffix])


def format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{n} B"  # pragma: no cover - unreachable


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-store",
        description="Operate on a repro result-store cache directory.",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache root (default: $REPRO_CACHE_DIR or the package default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="entry count, bytes, access ages")
    stats.add_argument(
        "-v", "--verbose", action="store_true", help="list every entry"
    )

    gc = sub.add_parser(
        "gc", help="LRU-collect entries down to a total-bytes budget"
    )
    gc.add_argument(
        "--max-bytes",
        type=parse_size,
        required=True,
        help="keep at most this many entry bytes (suffixes k/M/G/T)",
    )
    gc.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without touching disk",
    )
    gc.add_argument(
        "-v", "--verbose", action="store_true", help="list removed keys"
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = resolve_cache_dir(args.cache_dir)

    if args.command == "stats":
        entries = scan_entries(root)
        total = sum(info.nbytes for info in entries)
        print(f"cache dir: {root}")
        print(f"entries:   {len(entries)}")
        print(f"bytes:     {total} ({format_bytes(total)})")
        if entries:
            now = time.time()
            oldest = min(info.atime for info in entries)
            newest = max(info.atime for info in entries)
            print(f"oldest access: {now - oldest:.0f}s ago")
            print(f"newest access: {now - newest:.0f}s ago")
        if args.verbose:
            for info in entries:
                print(f"{info.key}  {info.nbytes}  atime={info.atime:.0f}")
        return 0

    report = collect_garbage(
        root, max_bytes=args.max_bytes, dry_run=args.dry_run
    )
    verb = "would remove" if report.dry_run else "removed"
    print(
        f"{verb} {report.removed_entries}/{report.scanned_entries} entries "
        f"({format_bytes(report.removed_bytes)} of "
        f"{format_bytes(report.scanned_bytes)}), "
        f"kept {report.kept_entries} ({format_bytes(report.kept_bytes)}) "
        f"within budget {format_bytes(report.budget_bytes)}"
    )
    if report.stale_tmp_dirs:
        print(f"{verb} {report.stale_tmp_dirs} stale tmp scratch dir(s)")
    if args.verbose:
        for key in report.removed_keys:
            print(f"{verb}: {key}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
