"""Fleet contexts: how a worker reconstructs a sweep's inputs.

A sweep manifest names *what* to compute (segment keys + task
coordinates) and *under which numeric configuration* (kernel, dtype,
lookup kind, secondary stream); the context supplies the actual input
arrays.  Two resolution paths:

* **in-process** — the submitter registers its live
  :class:`FleetContext` (YET/portfolio objects) with the workers it
  spawns, paying nothing;
* **cross-process** — the manifest carries a serialised
  :class:`~repro.data.presets.WorkloadSpec`, and a worker in another
  process (or on another machine sharing the cache dir) regenerates the
  seeded workload deterministically — byte-identical inputs, therefore
  identical content-addressed keys.  This is the same determinism the
  REPLAY-ABLATE cross-process rows rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.secondary import SecondaryUncertainty, resolve_secondary_seed
from repro.data.layer import Portfolio
from repro.data.presets import WorkloadSpec
from repro.data.yet import YearEventTable


@dataclass
class FleetContext:
    """Everything a worker needs to execute one sweep's jobs.

    ``elts`` (the quote pool) is derived from the portfolio and only
    used by ``"quote"`` jobs.
    """

    yet: YearEventTable
    portfolio: Portfolio
    catalog_size: int
    kernel: str = "ragged"
    dtype: str = "<f8"
    lookup_kind: str = "direct"
    secondary: Optional[SecondaryUncertainty] = None
    secondary_seed: int = 0
    #: lazily built per-context QuoteService for "quote" jobs
    _quote_service: Any = field(default=None, repr=False)

    def quote_service(self, store):
        """The context's store-backed QuoteService (built once)."""
        from repro.pricing.realtime import QuoteService  # deferred import

        if self._quote_service is None:
            elts = list(self.portfolio.elts.values())
            self._quote_service = QuoteService(
                self.yet,
                elts,
                self.catalog_size,
                max_workers=1,
                lookup_kind=self.lookup_kind,
                dtype=np.dtype(self.dtype),
                secondary=self.secondary,
                secondary_seed=(
                    self.secondary_seed if self.secondary is not None else None
                ),
                store=store,
            )
        return self._quote_service


def fleet_config(
    kernel: str,
    dtype,
    lookup_kind: str,
    catalog_size: int,
    secondary: Optional[SecondaryUncertainty],
    secondary_seed: int,
) -> Dict[str, Any]:
    """The manifest's ``config`` block — the ONE serialisation.

    Both submission paths (analysis sweeps and quote sweeps) and the
    worker-side :func:`context_from_manifest` go through this shape;
    a second copy drifting by one field would silently shift every
    worker-derived key away from the submitter's.
    """
    return {
        "kernel": str(kernel),
        "dtype": str(np.dtype(dtype).str),
        "lookup_kind": str(lookup_kind),
        "catalog_size": int(catalog_size),
        "secondary": (
            None
            if secondary is None
            else [float(secondary.alpha), float(secondary.beta)]
        ),
        "secondary_seed": int(secondary_seed),
    }


def config_from_context(ctx: FleetContext) -> Dict[str, Any]:
    """The manifest's ``config`` block for a context."""
    return fleet_config(
        ctx.kernel,
        ctx.dtype,
        ctx.lookup_kind,
        ctx.catalog_size,
        ctx.secondary,
        ctx.secondary_seed,
    )


def spec_dict(spec) -> Dict[str, Any]:
    """A :class:`~repro.data.presets.WorkloadSpec` as manifest JSON."""
    import dataclasses

    return dataclasses.asdict(spec)


def context_from_manifest(manifest: Dict[str, Any]) -> FleetContext:
    """Rebuild a context from a manifest's workload spec + config.

    Only usable for manifests submitted with a ``workload.spec`` block
    (the CLI and example path); in-process fleets register their live
    context instead.  Workload generation is deterministic given the
    spec, so the rebuilt inputs — and every derived segment key — are
    byte-identical to the submitter's.
    """
    workload_info = manifest.get("workload") or {}
    spec_dict = workload_info.get("spec")
    if spec_dict is None:
        raise ValueError(
            f"sweep {manifest.get('sweep_id')!r} carries no workload spec; "
            "its jobs can only be executed by workers given the context "
            "in-process"
        )
    from repro.data.generator import generate_workload  # deferred import

    workload = generate_workload(WorkloadSpec(**spec_dict))
    yet, portfolio = workload.yet, workload.portfolio
    scenario_dict = workload_info.get("scenario")
    if scenario_dict is not None:
        # Compiled-scenario sweep: re-derive the perturbed inputs from
        # the declarative spec (compilation is seeded + deterministic,
        # so the rebuilt arrays — and all segment keys — match the
        # submitter's bytes).
        from repro.scenario.compiler import compile_scenario
        from repro.scenario.spec import Scenario

        compiled = compile_scenario(Scenario.from_dict(scenario_dict), workload)
        yet, portfolio = compiled.yet, compiled.portfolio
    stage_trials = workload_info.get("stage_trials")
    if stage_trials is not None and int(stage_trials) < yet.n_trials:
        yet = yet.slice_trials(0, int(stage_trials))
    config = manifest.get("config") or {}
    secondary_params = config.get("secondary")
    secondary = (
        None
        if secondary_params is None
        else SecondaryUncertainty(*[float(v) for v in secondary_params])
    )
    return FleetContext(
        yet=yet,
        portfolio=portfolio,
        catalog_size=int(config.get("catalog_size", workload.catalog.n_events)),
        kernel=str(config.get("kernel", "ragged")),
        dtype=str(config.get("dtype", "<f8")),
        lookup_kind=str(config.get("lookup_kind", "direct")),
        secondary=secondary,
        secondary_seed=resolve_secondary_seed(
            int(config.get("secondary_seed", 0))
        )
        if secondary is not None
        else 0,
    )
