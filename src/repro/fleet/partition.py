"""Partition/shuffle reduction: per-worker partial YLTs, merged once.

Per-segment assembly fetches every segment of a sweep from the store —
S fetches for S segments, each a round trip when the store is a network
tier.  The MapReduce-shaped alternative (the Hadoop risk-aggregation
design of PAPERS.md, arXiv:1311.5686): group the plan's segments into
``P`` contiguous *partitions*, have each reduce job fold its
partition's segments into one **partial YLT** entry, and let the
assembler merge ``P`` partials instead of ``S`` segments — assembly
cost scales with the partition count, not the segment count.

The shapes:

* a **partition** is a contiguous chunk of the sweep's segments in
  ``(layer_id, trial_start)`` order; its store key is a fingerprint of
  the member segment keys (content-addressed all the way down: the
  partition entry is reusable iff every member segment is);
* a **reduce job** (:data:`~repro.fleet.jobs.JOB_KIND_REDUCE`) carries
  its members' full task coordinates, so the worker *computes* any
  segment the store is missing (via ``get_or_compute`` — the
  once-per-fleet guarantee is unchanged) and then concatenates the
  member loss vectors into one entry whose meta records the block
  layout;
* a **partial entry** holds one ``losses`` array plus
  ``meta["blocks"]`` — ``{layer_id, trial_start, trial_stop, offset}``
  per member — everything
  :meth:`~repro.fleet.assemble.ResultAssembler.assemble_partials`
  needs for pure placement.

Bit-identity is preserved by construction: workers store the exact
``float64`` bytes a monolithic executor would produce, concatenation
reorders nothing, and placement is by global trial index — the digest
equality the NET-ABLATE benchmark pins.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.fleet.jobs import JOB_KIND_REDUCE, FleetJob
from repro.store.base import StoreEntry
from repro.store.keys import fingerprint_digest

#: bump when partition key composition or partial layout changes.
PARTITION_SCHEMA = "repro-partition-v1"


def _member_view(task) -> Dict[str, int]:
    """The assembly-facing view of one member segment."""
    return {
        "layer_id": int(task.layer_id),
        "trial_start": int(task.trial_start),
        "trial_stop": int(task.trial_stop),
    }


def partition_key(members: Sequence[Tuple[str, int, int, int]]) -> str:
    """Content-addressed key of one partition.

    ``members`` are ``(segment_key, layer_id, trial_start, trial_stop)``
    tuples in partition order.  Segment keys already cover every input
    that can change the stored bytes, so fingerprinting them (plus the
    placement coordinates and schema) makes the partial entry exactly
    as reusable as its members: change one segment's inputs and the
    partition key moves with it.
    """
    return fingerprint_digest(
        PARTITION_SCHEMA,
        tuple(
            (str(key), int(layer), int(start), int(stop))
            for key, layer, start, stop in members
        ),
    )


def build_partitions(
    records: Sequence, n_partitions: int
) -> List[Dict[str, Any]]:
    """Chunk a delta plan's segment records into partition specs.

    ``records`` are :class:`~repro.plan.delta.SegmentRecord`-shaped
    (``.key``, ``.task``).  Segments are sorted by
    ``(layer_id, trial_start)`` — the assembler's placement order — and
    split into ``n_partitions`` contiguous, near-equal chunks, so each
    partial's blocks are already in merge order and a layer's trial
    ranges stay contiguous across partition boundaries.

    Each spec carries two views of its members: ``segments`` (the
    assembly view persisted in the manifest) and ``tasks`` (full task
    coordinates, riding in the reduce job payload so a worker can
    compute missing segments itself).
    """
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be >= 1, got {n_partitions}")
    ordered = sorted(
        records, key=lambda r: (r.task.layer_id, r.task.trial_start)
    )
    n_partitions = min(n_partitions, len(ordered))
    bounds = np.linspace(0, len(ordered), n_partitions + 1).astype(int)
    partitions: List[Dict[str, Any]] = []
    for pid in range(n_partitions):
        chunk = ordered[bounds[pid] : bounds[pid + 1]]
        members = [
            (
                r.key,
                r.task.layer_id,
                r.task.trial_start,
                r.task.trial_stop,
            )
            for r in chunk
        ]
        partitions.append(
            {
                "partition_id": pid,
                "key": partition_key(members),
                "segments": [
                    {"key": r.key, **_member_view(r.task)} for r in chunk
                ],
                "tasks": [
                    {
                        "key": r.key,
                        "task": {
                            "task_id": r.task.task_id,
                            "layer_id": r.task.layer_id,
                            "slot": r.task.slot,
                            "seq": r.task.seq,
                            "trial_start": r.task.trial_start,
                            "trial_stop": r.task.trial_stop,
                            "occ_start": r.task.occ_start,
                            "occ_stop": r.task.occ_stop,
                        },
                    }
                    for r in chunk
                ],
            }
        )
    return partitions


def manifest_partitions(
    partitions: Sequence[Dict[str, Any]]
) -> List[Dict[str, Any]]:
    """The manifest-persisted view (no task payloads — the assembler
    only places, never computes)."""
    return [
        {
            "partition_id": p["partition_id"],
            "key": p["key"],
            "segments": p["segments"],
        }
        for p in partitions
    ]


def reduce_jobs(
    sweep_id: str, partitions: Sequence[Dict[str, Any]]
) -> List[FleetJob]:
    """One :data:`JOB_KIND_REDUCE` job per partition."""
    return [
        FleetJob(
            job_id=f"{sweep_id}.p{p['partition_id']:04d}",
            sweep_id=sweep_id,
            kind=JOB_KIND_REDUCE,
            key=p["key"],
            payload={
                "partition_id": p["partition_id"],
                "segments": p["tasks"],
            },
        )
        for p in partitions
    ]


def build_partial(
    members: Sequence[Tuple[Dict[str, Any], np.ndarray]],
    meta: Dict[str, Any] | None = None,
) -> StoreEntry:
    """Fold member segments into one partial-YLT entry.

    ``members`` pairs each member's spec (``layer_id``/``trial_start``/
    ``trial_stop``, as produced by :func:`build_partitions`) with its
    per-trial losses, in partition order.  The entry concatenates the
    loss vectors verbatim — no arithmetic, so bit-identity survives —
    and records the block layout in meta for pure placement on the
    other side.
    """
    if not members:
        raise ValueError("a partial needs at least one member segment")
    blocks: List[Dict[str, int]] = []
    chunks: List[np.ndarray] = []
    offset = 0
    for spec, losses in members:
        start, stop = int(spec["trial_start"]), int(spec["trial_stop"])
        losses = np.ascontiguousarray(losses, dtype=np.float64)
        if losses.shape != (stop - start,):
            raise ValueError(
                f"member of layer {spec['layer_id']} holds {losses.shape} "
                f"losses for trials [{start}, {stop})"
            )
        blocks.append(
            {
                "layer_id": int(spec["layer_id"]),
                "trial_start": start,
                "trial_stop": stop,
                "offset": offset,
            }
        )
        chunks.append(losses)
        offset += stop - start
    return StoreEntry(
        arrays={"losses": np.concatenate(chunks)},
        meta={
            "kind": "partial",
            "schema": PARTITION_SCHEMA,
            "blocks": blocks,
            **(meta or {}),
        },
    )


def partial_blocks(
    entry: StoreEntry,
) -> List[Tuple[int, int, int, np.ndarray]]:
    """Unpack a partial entry into ``(layer, start, stop, losses)`` blocks.

    Validates the block layout against the concatenated array — a
    partial whose meta and bytes disagree raises ``ValueError`` rather
    than placing wrong trial ranges.
    """
    blocks = list(entry.meta.get("blocks") or [])
    if not blocks:
        raise ValueError("entry is not a partial: no blocks in meta")
    losses = entry.arrays["losses"]
    out: List[Tuple[int, int, int, np.ndarray]] = []
    expected = 0
    for block in blocks:
        start = int(block["trial_start"])
        stop = int(block["trial_stop"])
        offset = int(block["offset"])
        if offset != expected or stop < start:
            raise ValueError(f"partial block layout is inconsistent: {block}")
        expected = offset + (stop - start)
        out.append(
            (
                int(block["layer_id"]),
                start,
                stop,
                losses[offset : offset + (stop - start)],
            )
        )
    if expected != losses.shape[0]:
        raise ValueError(
            f"partial holds {losses.shape[0]} losses but blocks describe "
            f"{expected}"
        )
    return out
