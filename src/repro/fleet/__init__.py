"""Fleet sweeps: distributed execution over a shared queue and store.

The companion work to the paper (*Parallel Simulations for Analysing
Portfolios of Catastrophic Event Risk*, Bahl et al.) scales the same
Algorithm-1 workload out across a master–worker cluster.  This package
is that execution tier, built from the two halves earlier PRs provided:
the planner's deterministic ``(layer, trial-range, occurrence-range)``
tasks and the store's once-per-fleet compute guarantee.

* :class:`~repro.fleet.jobs.JobQueue` — a durable work queue under a
  directory: rename-atomic claims, mtime-heartbeat leases, flock-guarded
  requeue of crashed workers' jobs;
* store-aware **delta planning**
  (:meth:`~repro.plan.planner.Planner.plan_missing`) — each task gets a
  content-addressed segment key; only absent segments become jobs, so a
  partially swept input re-computes only its delta;
* :class:`~repro.fleet.worker.FleetWorker` — claim → compute (through
  ``store.get_or_compute``, so each segment is computed exactly once
  per fleet even under requeues) → complete;
* :class:`~repro.fleet.assemble.ResultAssembler` — merges stored
  segments into a YLT bit-for-bit identical to a monolithic
  ``Engine.run``;
* resilience throughout — store calls retried under
  :class:`~repro.utils.retry.RetryPolicy`, segment fetches digest-
  verified (:func:`~repro.store.verify.fetch_verified`), stragglers
  speculatively re-executed, failure provenance persisted with failed
  jobs, and the whole stack chaos-tested by :mod:`repro.faults`;
* ``repro-fleet`` (:mod:`repro.fleet.cli`) — ``submit`` / ``worker`` /
  ``status`` / ``gather`` for shell-driven fleets, and
  :meth:`repro.core.analysis.AggregateRiskAnalysis.run_fleet` /
  :meth:`repro.pricing.realtime.QuoteService.enqueue_quotes` for the
  API-driven ones.
"""

from repro.fleet.assemble import FleetAssemblyError, ResultAssembler
from repro.fleet.context import FleetContext, context_from_manifest
from repro.fleet.jobs import (
    JOB_KIND_QUOTE,
    JOB_KIND_SEGMENT,
    JOB_STATES,
    FleetJob,
    JobQueue,
)
from repro.fleet.sweep import (
    SweepTicket,
    context_for_engine,
    gather_sweep,
    modeled_makespan,
    run_workers,
    submit_sweep,
    wait_for_drain,
)
from repro.fleet.worker import FleetWorker, WorkerStats

__all__ = [
    "JobQueue",
    "FleetJob",
    "JOB_STATES",
    "JOB_KIND_SEGMENT",
    "JOB_KIND_QUOTE",
    "FleetWorker",
    "WorkerStats",
    "FleetContext",
    "context_from_manifest",
    "context_for_engine",
    "ResultAssembler",
    "FleetAssemblyError",
    "SweepTicket",
    "submit_sweep",
    "run_workers",
    "gather_sweep",
    "wait_for_drain",
    "modeled_makespan",
]
