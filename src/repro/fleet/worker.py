"""The fleet worker: claim → compute → store → complete, forever.

Workers are deliberately dumb loops.  All coordination lives in the
queue (rename-based claims, mtime leases) and the result store
(content-addressed ``get_or_compute`` with cross-process locks); the
worker just moves jobs between them:

1. claim a pending job (optionally restricted to one sweep);
2. resolve the sweep's :class:`~repro.fleet.context.FleetContext`
   (registered in-process, or regenerated from the manifest's seeded
   workload spec);
3. run the job's result through ``store.get_or_compute`` — if another
   worker (any process in the fleet) already stored the key, this is a
   read, not a compute;
4. mark the job done.

A heartbeat thread touches the claimed file while the compute runs, so
long segments on slow workers are not stolen; a worker that dies
mid-compute simply stops heartbeating and its job is requeued by any
peer's :meth:`~repro.fleet.jobs.JobQueue.requeue_expired` scan.  Failed
computes requeue up to the queue's ``max_attempts`` and then land in
``failed/`` with the error *and its provenance* (exception chain +
attempt history) recorded.

Resilience knobs (all on by default):

* store operations run under a bounded
  :class:`~repro.utils.retry.RetryPolicy` — a transient IO error costs
  a backoff, not a failed attempt;
* segment entries carry end-to-end checksums
  (:func:`repro.store.verify.attach_checksums`), so corruption
  anywhere between this worker's write and the assembler's read is
  detected, retried and recomputed instead of silently assembled;
* an idle worker **speculates** on straggling peers' segments
  (:meth:`FleetWorker.speculate_one`): lease age past half the lease
  means the owner may be dead or stalled, so the segment is recomputed
  into the store — a harmless duplicate via ``get_or_compute`` — and
  the eventual requeue becomes a store hit.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

import numpy as np

from repro.fleet.context import FleetContext, context_from_manifest
from repro.fleet.jobs import (
    JOB_KIND_QUOTE,
    JOB_KIND_REDUCE,
    JOB_KIND_SEGMENT,
    FleetJob,
    JobQueue,
)
from repro.plan.execute import execute_segment_cpu
from repro.plan.plan import PlanTask
from repro.store.base import ResultStore, StoreEntry
from repro.store.verify import attach_checksums
from repro.utils.retry import DEFAULT_RETRY_POLICY, RetryPolicy, retry_call


@dataclass
class WorkerStats:
    """What one worker did (fleet benchmarks and ``meta`` reporting)."""

    worker_id: str
    backend: str = "numpy"
    claimed: int = 0
    computed: int = 0
    reused: int = 0
    failed: int = 0
    requeued_for_peers: int = 0
    speculated: int = 0
    store_retries: int = 0
    compute_seconds: float = 0.0
    errors: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "worker_id": self.worker_id,
            "backend": self.backend,
            "claimed": self.claimed,
            "computed": self.computed,
            "reused": self.reused,
            "failed": self.failed,
            "requeued_for_peers": self.requeued_for_peers,
            "speculated": self.speculated,
            "store_retries": self.store_retries,
            "compute_seconds": self.compute_seconds,
            "errors": dict(self.errors),
        }


class _Heartbeat:
    """Background lease refresher for one claimed job."""

    def __init__(self, queue: JobQueue, job: FleetJob, interval: float) -> None:
        self._queue = queue
        self._job = job
        self._interval = max(0.01, float(interval))
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._queue.heartbeat(self._job)

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join()


class FleetWorker:
    """One worker process/thread draining a queue into a store.

    Parameters
    ----------
    queue, store:
        The shared coordination substrate.  Every worker of a fleet
        points at the same queue directory and (for cross-process
        fleets) a :class:`~repro.store.SharedFileStore`-backed store.
    contexts:
        Pre-registered ``{sweep_id: FleetContext}`` (in-process fleets).
        Unknown sweeps fall back to the manifest's workload spec.
    worker_id:
        Stable identity for leases and stats (default: pid + random).
    retry_policy:
        Bounds retries of transient store errors around
        ``get_or_compute`` (default:
        :data:`~repro.utils.retry.DEFAULT_RETRY_POLICY`).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` hook: consulted
        once per executed job (op ``"compute"``, keyed by job id) so
        chaos runs can poison specific segments
        (:class:`~repro.faults.plan.InjectedFault` → the normal
        fail/requeue path) or kill this worker mid-compute
        (:class:`~repro.faults.plan.WorkerKilled` → unwinds like a
        crash, job left claimed).  Production fleets leave it ``None``.
    speculate:
        Allow idle-loop speculative re-execution of straggling peers'
        segments (see :meth:`speculate_one`).
    backend:
        Kernel backend this worker's segment computes dispatch through
        (a registry name, instance, or None for the
        ``REPRO_KERNEL_BACKEND``-then-numpy default).  Deliberately
        absent from segment store keys: a fleet may mix numpy and
        compiled workers and still assemble digest-identical YLTs.  The
        resolved name is recorded per worker (stats) and per computed
        segment (entry meta), so provenance survives even when results
        are interchangeable.
    """

    def __init__(
        self,
        queue: JobQueue,
        store: ResultStore,
        contexts: Optional[Dict[str, FleetContext]] = None,
        worker_id: str | None = None,
        retry_policy: RetryPolicy = DEFAULT_RETRY_POLICY,
        fault_plan=None,
        speculate: bool = True,
        speculation_age_fraction: float = 0.5,
        backend=None,
    ) -> None:
        from repro.backends import active_backend_name

        self.queue = queue
        self.store = store
        self.contexts: Dict[str, FleetContext] = dict(contexts or {})
        self.worker_id = (
            worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        )
        self.retry_policy = retry_policy
        self.fault_plan = fault_plan
        self.speculate = bool(speculate)
        self.speculation_age_fraction = float(speculation_age_fraction)
        self.backend = backend
        self.backend_name = active_backend_name(backend)
        self._speculated_ids: Set[str] = set()
        self.stats = WorkerStats(
            worker_id=self.worker_id, backend=self.backend_name
        )

    # ------------------------------------------------------------------
    def _count_retry(self, attempt, exc, delay) -> None:
        self.stats.store_retries += 1

    def _store_call(self, fn):
        """Run a store operation under the worker's retry policy."""
        return retry_call(
            fn, self.retry_policy, on_retry=self._count_retry
        )

    # ------------------------------------------------------------------
    def _context(self, sweep_id: str) -> FleetContext:
        ctx = self.contexts.get(sweep_id)
        if ctx is None:
            manifest = self.queue.load_sweep(sweep_id)
            if manifest is None:
                raise ValueError(f"no manifest for sweep {sweep_id!r}")
            ctx = context_from_manifest(manifest)
            self.contexts[sweep_id] = ctx
        return ctx

    # ------------------------------------------------------------------
    @staticmethod
    def _task_from(payload: Dict[str, object]) -> PlanTask:
        return PlanTask(**{k: int(v) for k, v in payload.items()})

    def _compute_segment(self, ctx: FleetContext, task: PlanTask) -> StoreEntry:
        started = time.perf_counter()
        losses = execute_segment_cpu(
            ctx.yet,
            ctx.portfolio,
            ctx.catalog_size,
            task,
            kernel=ctx.kernel,
            lookup_kind=ctx.lookup_kind,
            dtype=np.dtype(ctx.dtype),
            secondary=ctx.secondary,
            secondary_seed=ctx.secondary_seed,
            backend=self.backend,
        )
        seconds = time.perf_counter() - started
        # End-to-end checksums in the entry *meta*: verified by the
        # assembler on read, catching damage past the backend's own CRC
        # (network tiers, injected corruption).
        return attach_checksums(
            StoreEntry(
                arrays={"losses": losses},
                meta={
                    "kind": JOB_KIND_SEGMENT,
                    "layer_id": task.layer_id,
                    "trial_start": task.trial_start,
                    "trial_stop": task.trial_stop,
                    "computed_by": self.worker_id,
                    "backend": self.backend_name,
                    "seconds": seconds,
                },
            )
        )

    def _ensure_segment(self, ctx: FleetContext, key: str, task: PlanTask) -> StoreEntry:
        """``get_or_compute`` one segment, counting computed vs reused."""
        computed = {}

        def produce() -> StoreEntry:
            entry = self._compute_segment(ctx, task)
            computed["seconds"] = float(entry.meta["seconds"])
            return entry

        entry = self._store_call(
            lambda: self.store.get_or_compute(key, produce)
        )
        if computed:
            self.stats.computed += 1
            self.stats.compute_seconds += computed["seconds"]
        else:
            self.stats.reused += 1
        return entry

    def _run_reduce(self, ctx: FleetContext, job: FleetJob) -> None:
        """Fold one partition's segments into a partial-YLT entry.

        The map and combine of the partition/shuffle mode, fused: each
        member segment is fetched-or-computed through the store (the
        once-per-fleet guarantee and computed/reused accounting are the
        segment path's, unchanged), then the loss vectors concatenate
        into one entry under the partition's content-addressed key.
        """
        from repro.fleet.partition import build_partial
        from repro.store.verify import verify_entry

        if self._store_call(lambda: self.store.contains(job.key)):
            return  # partial already reduced by a peer (or a past sweep)
        members = []
        for member in job.payload["segments"]:
            key = str(member["key"])
            task = self._task_from(member["task"])
            entry = self._ensure_segment(ctx, key, task)
            if not verify_entry(entry):
                # A damaged stored segment must not be folded into the
                # partial: retire it and compute a fresh one.
                self.store.note_corrupt(key, "damaged segment in reduce")
                self._store_call(lambda k=key: self.store.delete(k))
                entry = self._ensure_segment(ctx, key, task)
            members.append(
                (
                    {
                        "layer_id": task.layer_id,
                        "trial_start": task.trial_start,
                        "trial_stop": task.trial_stop,
                    },
                    entry.arrays["losses"],
                )
            )
        partial = attach_checksums(
            build_partial(
                members,
                meta={
                    "computed_by": self.worker_id,
                    "backend": self.backend_name,
                },
            )
        )
        self._store_call(
            lambda: self.store.get_or_compute(job.key, lambda: partial)
        )

    def _run_job(self, job: FleetJob) -> None:
        if self.fault_plan is not None:
            from repro.faults.plan import (  # deferred: chaos-only path
                KIND_KILL,
                KIND_POISON,
                OP_COMPUTE,
                InjectedFault,
                WorkerKilled,
            )

            for spec in self.fault_plan.fire(
                OP_COMPUTE, key=job.job_id, worker=self.worker_id
            ):
                if spec.kind == KIND_KILL:
                    raise WorkerKilled(
                        f"injected death of {self.worker_id!r} computing "
                        f"{job.job_id}"
                    )
                if spec.kind == KIND_POISON:
                    raise InjectedFault(
                        f"injected poison on segment {job.job_id}"
                    )
        ctx = self._context(job.sweep_id)
        if job.kind == JOB_KIND_SEGMENT:
            self._ensure_segment(
                ctx, job.key, self._task_from(job.payload["task"])
            )
        elif job.kind == JOB_KIND_REDUCE:
            self._run_reduce(ctx, job)
        elif job.kind == JOB_KIND_QUOTE:
            from repro.data.layer import LayerTerms  # deferred import

            service = ctx.quote_service(self.store)
            elt_ids = [int(e) for e in job.payload["elt_ids"]]
            terms = LayerTerms(*[float(t) for t in job.payload["terms"]])
            layer_id = int(job.payload.get("layer_id", 9999))
            derived = service.loss_store_key(elt_ids, terms, layer_id)
            if derived != job.key:
                # Submitter/worker config drift: computing would store
                # under the wrong address and the submitter's promised
                # replay would silently never happen.  Fail loudly.
                raise ValueError(
                    f"quote job {job.job_id}: worker-derived store key "
                    f"{derived[:16]}… != submitted {job.key[:16]}… — the "
                    "manifest's workload/config does not reproduce the "
                    "submitting service's inputs"
                )
            started = time.perf_counter()
            before = service.cache_stats()["losses"]["store_hits"]
            service.candidate_losses(elt_ids, terms, layer_id=layer_id)
            after = service.cache_stats()["losses"]["store_hits"]
            if after > before:
                self.stats.reused += 1
            else:
                self.stats.computed += 1
                self.stats.compute_seconds += time.perf_counter() - started
        else:
            raise ValueError(f"unknown job kind {job.kind!r}")

    # ------------------------------------------------------------------
    def run_one(self, sweep_id: str | None = None) -> bool:
        """Claim and process a single job; ``False`` when none pending."""
        job = self.queue.claim(self.worker_id, sweep_id=sweep_id)
        if job is None:
            return False
        self.stats.claimed += 1
        try:
            with _Heartbeat(self.queue, job, self.queue.lease_seconds / 4):
                self._run_job(job)
        except (KeyboardInterrupt, SystemExit):
            # A killed worker must stop, not eat the signal — hand the
            # job straight back (the interruption is not the job's
            # fault, so the attempt is not charged against it).
            job.attempts = max(0, job.attempts - 1)
            self.queue.fail(job, "worker interrupted", requeue=True)
            raise
        except Exception as exc:
            state = self.queue.fail(job, repr(exc), exc=exc)
            if state == "failed":
                self.stats.failed += 1
                self.stats.errors[job.job_id] = repr(exc)
            return True
        self.queue.complete(job)
        return True

    def speculate_one(self, sweep_id: str | None = None) -> bool:
        """Re-execute one straggling peer's segment into the store.

        Picks the oldest claimed job (not this worker's own, not one
        already speculated on) whose lease age passed
        ``speculation_age_fraction`` of the lease, and runs its
        computation through ``get_or_compute`` — without touching the
        queue state at all.  If the owner was merely slow, the store
        dedups and one compute is wasted; if the owner is dead, the
        requeued claim finds the result already stored.  Returns
        whether a speculation ran.
        """
        if not self.speculate:
            return False
        for job in self.queue.stragglers(
            self.speculation_age_fraction, sweep_id=sweep_id
        ):
            if job.kind != JOB_KIND_SEGMENT:
                continue
            if job.owner == self.worker_id:
                continue
            if job.job_id in self._speculated_ids:
                continue
            self._speculated_ids.add(job.job_id)
            try:
                ctx = self._context(job.sweep_id)
                task = self._task_from(job.payload["task"])
                computed = {}

                def produce() -> StoreEntry:
                    entry = self._compute_segment(ctx, task)
                    computed["seconds"] = float(entry.meta["seconds"])
                    return entry

                self._store_call(
                    lambda: self.store.get_or_compute(job.key, produce)
                )
            except Exception:
                return False  # speculation is best-effort by definition
            if computed:
                # Counted separately from ``computed``: a speculative
                # produce is work the *owner's* claim will reuse.
                self.stats.speculated += 1
                self.stats.compute_seconds += computed["seconds"]
            return True
        return False

    def run(
        self,
        sweep_id: str | None = None,
        max_jobs: int | None = None,
        drain: bool = True,
        poll_seconds: float = 0.05,
    ) -> WorkerStats:
        """Process jobs until the sweep (or queue) has no open work.

        ``drain=True`` keeps the worker alive while *other* workers
        still hold claims — their jobs may yet expire back to pending,
        and this worker requeues them (``requeue_expired``) and
        *speculates* on their segments (:meth:`speculate_one`) as part
        of its idle loop.  ``drain=False`` exits at the first empty
        claim.  ``max_jobs`` bounds the work taken (testing and
        fair-share scenarios).
        """
        done = 0
        while max_jobs is None or done < max_jobs:
            if self.run_one(sweep_id=sweep_id):
                done += 1
                continue
            self.stats.requeued_for_peers += len(self.queue.requeue_expired())
            if self.queue.active_count(sweep_id) == 0 or not drain:
                break
            if not self.speculate_one(sweep_id=sweep_id):
                time.sleep(poll_seconds)
        return self.stats
