"""Segment-level result assembly: stored pieces → one exact YLT.

The assembler is the read side of a fleet sweep: given a sweep's
segment records (from a manifest or a
:class:`~repro.plan.delta.DeltaPlan`), it pulls each segment's stored
per-trial losses and writes them into the output rows at the segment's
global trial range — the same slot-assignment rule every executor uses,
so the assembled :class:`~repro.data.ylt.YearLossTable` is bit-for-bit
identical to a monolithic run (segments store the exact ``float64``
bytes a monolithic executor would have written; assembly is pure
placement, no arithmetic).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

import numpy as np

from repro.data.ylt import YearLossTable
from repro.plan.delta import DeltaPlan
from repro.store.base import ResultStore
from repro.store.verify import fetch_verified
from repro.utils.retry import STORE_FETCH_POLICY, RetryPolicy


class FleetAssemblyError(RuntimeError):
    """A sweep cannot be assembled (segments missing or inconsistent)."""


#: the assembler's segment view: (key, layer_id, trial_start, trial_stop)
SegmentSpec = Tuple[str, int, int, int]


def _segment_specs(source) -> List[SegmentSpec]:
    """Normalise a DeltaPlan / manifest / iterable into segment specs."""
    if isinstance(source, DeltaPlan):
        return [
            (r.key, r.task.layer_id, r.task.trial_start, r.task.trial_stop)
            for r in source.segments
        ]
    if isinstance(source, Mapping):  # a sweep manifest
        return [
            (
                str(seg["key"]),
                int(seg["layer_id"]),
                int(seg["trial_start"]),
                int(seg["trial_stop"]),
            )
            for seg in source["segments"]
        ]
    return [
        (str(key), int(layer_id), int(start), int(stop))
        for key, layer_id, start, stop in source
    ]


class ResultAssembler:
    """Merge stored per-segment losses into the final YLT.

    Segment fetches go through
    :func:`~repro.store.verify.fetch_verified`: transient read errors
    and transient corruption are retried under ``retry_policy``, and a
    durably damaged entry is deleted from the store and reported as
    *missing* — so the caller's normal recovery path (requeue the
    missing segments, recompute, gather again) also heals corruption.
    """

    def __init__(
        self,
        store: ResultStore,
        retry_policy: RetryPolicy = STORE_FETCH_POLICY,
    ) -> None:
        self.store = store
        self.retry_policy = retry_policy

    # ------------------------------------------------------------------
    def missing_keys(self, source) -> List[str]:
        """Segment keys the store cannot currently serve."""
        return [
            key
            for key, *_ in _segment_specs(source)
            if not self.store.contains(key)
        ]

    def assemble(
        self,
        source: "DeltaPlan | Mapping[str, Any] | Iterable[SegmentSpec]",
        n_trials: int | None = None,
    ) -> YearLossTable:
        """Build the YLT from stored segments.

        ``source`` is a :class:`~repro.plan.delta.DeltaPlan`, a sweep
        manifest dict, or an iterable of ``(key, layer_id, trial_start,
        trial_stop)`` tuples.  Every layer's segments must tile
        ``[0, n_trials)`` exactly once (``n_trials`` is inferred from
        the source when omitted) and every key must be retrievable —
        anything else raises :class:`FleetAssemblyError` naming the
        problem, because a partially assembled YLT is a wrong answer,
        not a degraded one.
        """
        specs = _segment_specs(source)
        if not specs:
            raise FleetAssemblyError("no segments to assemble")
        if n_trials is None:
            if isinstance(source, DeltaPlan):
                n_trials = source.plan.n_trials
            elif isinstance(source, Mapping):
                n_trials = int(source["n_trials"])
            else:
                n_trials = max(stop for _, _, _, stop in specs)

        per_layer: Dict[int, np.ndarray] = {}
        covered: Dict[int, int] = {}
        missing: List[str] = []
        for key, layer_id, start, stop in sorted(
            specs, key=lambda s: (s[1], s[2])
        ):
            out = per_layer.get(layer_id)
            if out is None:
                out = per_layer[layer_id] = np.empty(n_trials, dtype=np.float64)
                covered[layer_id] = 0
            if start != covered[layer_id] or stop > n_trials:
                raise FleetAssemblyError(
                    f"layer {layer_id}: segment coverage breaks at trial "
                    f"{covered[layer_id]} (next segment spans "
                    f"[{start}, {stop}) of {n_trials})"
                )
            entry = fetch_verified(self.store, key, policy=self.retry_policy)
            if entry is None:
                missing.append(key)
            else:
                losses = entry.arrays["losses"]
                if losses.shape != (stop - start,):
                    raise FleetAssemblyError(
                        f"segment {key[:16]}… of layer {layer_id} holds "
                        f"{losses.shape} losses for trials [{start}, {stop})"
                    )
                out[start:stop] = losses
            covered[layer_id] = stop
        if missing:
            raise FleetAssemblyError(
                f"{len(missing)} segment(s) not in store "
                f"(first: {missing[0]}) — run workers (or requeue) before "
                "gathering"
            )
        for layer_id, stop in covered.items():
            if stop != n_trials:
                raise FleetAssemblyError(
                    f"layer {layer_id} covered only [0, {stop}) of "
                    f"[0, {n_trials})"
                )
        return YearLossTable.from_dict(per_layer)

    def assemble_partials(
        self, manifest: Mapping[str, Any], n_trials: int | None = None
    ) -> YearLossTable:
        """Build the YLT from a sweep's partial-YLT entries.

        The partition/shuffle read path: fetch the ``P`` partition
        entries named by ``manifest["partitions"]`` (instead of the
        ``S`` member segments), unpack each partial's blocks and place
        them by global trial index — ``P`` store round trips for the
        whole sweep.  Coverage and placement rules are identical to
        :meth:`assemble`, and since partials concatenate the exact
        segment bytes, so is the assembled YLT.

        Raises :class:`FleetAssemblyError` when the manifest has no
        partitions or any partial is missing/damaged — callers fall
        back to per-segment assembly (which can heal by recompute).
        """
        from repro.fleet.partition import partial_blocks  # deferred

        partitions = manifest.get("partitions")
        if not partitions:
            raise FleetAssemblyError(
                "manifest has no partitions — submitted without "
                "partition/shuffle mode"
            )
        if n_trials is None:
            n_trials = int(manifest["n_trials"])

        blocks: List[Tuple[int, int, int, np.ndarray]] = []
        missing: List[str] = []
        for partition in partitions:
            key = str(partition["key"])
            entry = fetch_verified(self.store, key, policy=self.retry_policy)
            if entry is None:
                missing.append(key)
                continue
            try:
                blocks.extend(partial_blocks(entry))
            except ValueError as exc:
                raise FleetAssemblyError(
                    f"partial {key[:16]}… is internally inconsistent: {exc}"
                ) from exc
        if missing:
            raise FleetAssemblyError(
                f"{len(missing)} partial(s) not in store "
                f"(first: {missing[0]}) — run reduce workers before "
                "gathering"
            )

        per_layer: Dict[int, np.ndarray] = {}
        covered: Dict[int, int] = {}
        for layer_id, start, stop, losses in sorted(
            blocks, key=lambda b: (b[0], b[1])
        ):
            out = per_layer.get(layer_id)
            if out is None:
                out = per_layer[layer_id] = np.empty(n_trials, dtype=np.float64)
                covered[layer_id] = 0
            if start != covered[layer_id] or stop > n_trials:
                raise FleetAssemblyError(
                    f"layer {layer_id}: partial coverage breaks at trial "
                    f"{covered[layer_id]} (next block spans "
                    f"[{start}, {stop}) of {n_trials})"
                )
            out[start:stop] = losses
            covered[layer_id] = stop
        for layer_id, stop in covered.items():
            if stop != n_trials:
                raise FleetAssemblyError(
                    f"layer {layer_id} covered only [0, {stop}) of "
                    f"[0, {n_trials})"
                )
        return YearLossTable.from_dict(per_layer)
