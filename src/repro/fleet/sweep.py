"""Sweep orchestration: submit, drain, gather.

A *sweep* is one analysis decomposed into segment jobs.  Submission is
store-aware end to end: the engine's
:meth:`~repro.engines.base.Engine.plan_missing` derives every segment's
content-addressed key, probes the store, and only the missing segments
become queue jobs — a re-sweep of a partially changed input (extended
YET, one re-termed layer) enqueues only the delta.  The manifest
records *all* segments (stored and missing), which is exactly what the
assembler needs to gather the final YLT.

``run_fleet`` (the API behind
:meth:`repro.core.analysis.AggregateRiskAnalysis.run_fleet`) wires the
whole loop in-process: submit, spawn N worker threads against the
shared queue/store, drain, assemble.  The same queue directory and
cache dir serve subprocess workers (``repro-fleet worker``) unchanged —
the example and the REPLAY-style benchmarks run both shapes.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.fleet.assemble import FleetAssemblyError, ResultAssembler
from repro.fleet.context import FleetContext, config_from_context, spec_dict
from repro.fleet.jobs import JOB_KIND_SEGMENT, FleetJob, JobQueue
from repro.fleet.worker import FleetWorker, WorkerStats
from repro.plan.delta import DeltaPlan
from repro.plan.scheduler import Scheduler
from repro.store.base import ResultStore


@dataclass
class SweepTicket:
    """Receipt of a submitted sweep."""

    sweep_id: str
    delta: DeltaPlan
    submitted: int
    reused: int
    manifest: Dict[str, Any]

    def summary(self) -> Dict[str, Any]:
        return {
            "sweep_id": self.sweep_id,
            "submitted": self.submitted,
            "reused": self.reused,
            **self.delta.summary(),
        }


def context_for_engine(
    yet: YearEventTable,
    portfolio: Portfolio,
    catalog_size: int,
    engine_obj,
) -> FleetContext:
    """A :class:`FleetContext` matching an engine's numeric config."""
    caps = engine_obj.capabilities()
    return FleetContext(
        yet=yet,
        portfolio=portfolio,
        catalog_size=int(catalog_size),
        kernel=caps.kernel,
        dtype=caps.dtype,
        lookup_kind=engine_obj.lookup_kind,
        secondary=engine_obj.secondary,
        secondary_seed=engine_obj._secondary_base_seed(),
    )


def _workload_block(
    workload_spec, scenario, stage_trials: int | None
) -> Dict[str, Any]:
    """The manifest's ``workload`` block: spec + scenario + stage."""
    block: Dict[str, Any] = {}
    if workload_spec is not None:
        block["spec"] = spec_dict(workload_spec)
    if scenario is not None:
        block["scenario"] = scenario.to_dict()
    if stage_trials is not None:
        block["stage_trials"] = int(stage_trials)
    return block


def submit_sweep(
    queue: JobQueue,
    store: ResultStore,
    yet: YearEventTable,
    portfolio: Portfolio,
    catalog_size: int,
    engine_obj,
    segment_trials: int | None = None,
    plan=None,
    workload_spec=None,
    sweep_id: str | None = None,
    n_partitions: int | None = None,
    scenario=None,
    stage_trials: int | None = None,
) -> SweepTicket:
    """Delta-plan an analysis and enqueue its missing segments.

    The sweep id defaults to a digest of the delta plan (decomposition
    + segment keys), so resubmitting the identical sweep is idempotent:
    job ids collide and the queue skips them.  ``workload_spec`` (a
    :class:`~repro.data.presets.WorkloadSpec`) embeds the seeded
    recipe for the inputs in the manifest so workers in other processes
    can regenerate them; in-process fleets register their live context
    instead and may omit it.

    ``n_partitions`` switches the sweep to **partition/shuffle** mode
    (:mod:`repro.fleet.partition`): instead of one job per missing
    segment, the queue gets one *reduce* job per partition of the full
    segment list.  Reduce workers fetch-or-compute their members (the
    per-segment store dedup is unchanged) and store one partial-YLT
    entry each, and :func:`gather_sweep` merges the partials — P store
    reads at assembly instead of S.  Partitions whose partial is
    already stored are skipped entirely (the delta principle, one
    level up).

    ``scenario`` (a :class:`~repro.scenario.spec.Scenario`) records in
    the manifest that ``yet``/``portfolio`` are the *compiled* outputs
    of that spec applied to the workload-spec baseline; cross-process
    workers re-compile it deterministically.  ``stage_trials`` marks a
    staged trial-prefix sweep (adaptive campaigns), so workers slice
    the compiled table the same way the submitter did.
    """
    delta = engine_obj.plan_missing(
        yet, portfolio, store, segment_trials=segment_trials, plan=plan
    )
    if sweep_id is None:
        sweep_id = f"sweep-{delta.fingerprint()[:16]}"
    ctx = context_for_engine(yet, portfolio, catalog_size, engine_obj)
    manifest: Dict[str, Any] = {
        "sweep_id": sweep_id,
        "kind": "analysis",
        "engine": engine_obj.name,
        "config": config_from_context(ctx),
        "workload": _workload_block(workload_spec, scenario, stage_trials),
        "n_trials": yet.n_trials,
        "n_occurrences": yet.n_occurrences,
        "layer_ids": [int(i) for i in delta.plan.layer_ids],
        "plan_fingerprint": delta.plan.fingerprint(),
        "delta_fingerprint": delta.fingerprint(),
        "segments": [
            {
                "key": record.key,
                "task_id": record.task.task_id,
                "layer_id": record.task.layer_id,
                "trial_start": record.task.trial_start,
                "trial_stop": record.task.trial_stop,
                "occ_start": record.task.occ_start,
                "occ_stop": record.task.occ_stop,
                "stored": record.stored,
            }
            for record in delta.segments
        ],
    }
    if n_partitions is not None:
        from repro.fleet.partition import (
            build_partitions,
            manifest_partitions,
            reduce_jobs,
        )

        partitions = build_partitions(delta.segments, n_partitions)
        manifest["partitions"] = manifest_partitions(partitions)
        queue.save_sweep(sweep_id, manifest)
        todo = [
            p for p in partitions if not store.contains(p["key"])
        ]
        submitted = queue.submit(reduce_jobs(sweep_id, todo))
        return SweepTicket(
            sweep_id=sweep_id,
            delta=delta,
            submitted=submitted,
            reused=len(partitions) - len(todo),
            manifest=manifest,
        )
    queue.save_sweep(sweep_id, manifest)
    jobs = [
        FleetJob(
            job_id=f"{sweep_id}.t{record.task.task_id:06d}",
            sweep_id=sweep_id,
            kind=JOB_KIND_SEGMENT,
            key=record.key,
            payload={
                "task": {
                    "task_id": record.task.task_id,
                    "layer_id": record.task.layer_id,
                    "slot": record.task.slot,
                    "seq": record.task.seq,
                    "trial_start": record.task.trial_start,
                    "trial_stop": record.task.trial_stop,
                    "occ_start": record.task.occ_start,
                    "occ_stop": record.task.occ_stop,
                }
            },
        )
        for record in delta.missing
    ]
    submitted = queue.submit(jobs)
    return SweepTicket(
        sweep_id=sweep_id,
        delta=delta,
        submitted=submitted,
        reused=delta.n_stored,
        manifest=manifest,
    )


def run_workers(
    queue: JobQueue,
    store: ResultStore,
    contexts: Optional[Dict[str, FleetContext]] = None,
    n_workers: int = 2,
    sweep_id: str | None = None,
    poll_seconds: float = 0.02,
    backend=None,
) -> List[WorkerStats]:
    """Drain a sweep with ``n_workers`` in-process worker threads.

    NumPy kernels release the GIL, so threads genuinely overlap on
    multi-core hosts; on any host, results are identical because
    placement is fixed by global trial index and the store dedups the
    compute.  Raises when jobs exhausted their attempts — a sweep with
    ``failed/`` jobs must not silently assemble.

    ``backend`` selects every worker's kernel backend (or, as a list
    with one entry per worker, a deliberately mixed fleet — results are
    identical either way, since backends are pinned to the oracle).
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    if isinstance(backend, (list, tuple)):
        if len(backend) != n_workers:
            raise ValueError(
                f"backend list has {len(backend)} entries for "
                f"{n_workers} workers"
            )
        per_worker = list(backend)
    else:
        per_worker = [backend] * n_workers
    workers = [
        FleetWorker(queue, store, contexts=contexts, backend=per_worker[i])
        for i in range(n_workers)
    ]
    Scheduler(max_workers=n_workers).run_jobs(
        [
            (lambda w=worker: w.run(sweep_id=sweep_id, poll_seconds=poll_seconds))
            for worker in workers
        ]
    )
    failures = list(queue.jobs("failed", sweep_id))
    if failures:
        details = "; ".join(
            f"{job.job_id}: {job.error}" for job in failures[:3]
        )
        raise FleetAssemblyError(
            f"{len(failures)} job(s) exhausted their attempts ({details})"
        )
    return [worker.stats for worker in workers]


def gather_sweep(
    queue: JobQueue, store: ResultStore, sweep_id: str
):
    """Assemble a sweep's YLT from its manifest + the store.

    A partition/shuffle sweep assembles from its P partial-YLT entries;
    when any partial is missing or damaged, assembly falls back to the
    per-segment path (S fetches, but able to heal by recompute) before
    giving up — a degraded gather beats a failed one, and both paths
    produce bit-identical YLTs.
    """
    manifest = queue.load_sweep(sweep_id)
    if manifest is None:
        raise FleetAssemblyError(f"no manifest for sweep {sweep_id!r}")
    assembler = ResultAssembler(store)
    if manifest.get("partitions"):
        try:
            return assembler.assemble_partials(manifest)
        except FleetAssemblyError:
            pass  # degraded: fall through to per-segment assembly
    return assembler.assemble(manifest)


def modeled_makespan(job_seconds: Sequence[float], n_workers: int) -> float:
    """Makespan of an LPT schedule of measured job times over a fleet.

    The fleet analogue of the repository's simulated-GPU cost models:
    per-job compute seconds are *measured* (stored by workers in each
    segment's meta), and the wall-clock of a hypothetical ``n_workers``
    fleet is the longest-processing-time-first greedy assignment — the
    standard 4/3-competitive bound.  This is what the FLEET-ABLATE
    benchmark reports alongside measured wall times, so the scaling
    claim is meaningful even on single-core CI hosts.
    """
    if n_workers < 1:
        raise ValueError(f"n_workers must be >= 1, got {n_workers}")
    loads = [0.0] * min(n_workers, max(1, len(job_seconds)))
    heapq.heapify(loads)
    for seconds in sorted((float(s) for s in job_seconds), reverse=True):
        heapq.heappush(loads, heapq.heappop(loads) + seconds)
    return max(loads) if loads else 0.0


def wait_for_drain(
    queue: JobQueue,
    sweep_id: str | None = None,
    timeout: float = 300.0,
    poll_seconds: float = 0.1,
) -> bool:
    """Block until a sweep has no pending/claimed jobs (external workers).

    Requeues expired leases while waiting (so a crashed external worker
    cannot wedge the wait).  Returns ``False`` on timeout.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if queue.active_count(sweep_id) == 0:
            return True
        queue.requeue_expired()
        time.sleep(poll_seconds)
    return queue.active_count(sweep_id) == 0
