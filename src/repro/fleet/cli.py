"""``repro-fleet`` command line: distributed sweeps from a shell.

A sweep's coordination state is two directories — a queue dir and a
store cache dir — so a "cluster" is any set of processes (or machines)
that can see both.  Typical session::

    repro-fleet submit --queue /tmp/q --store /tmp/c --n-trials 20000
    repro-fleet worker --queue /tmp/q --store /tmp/c &   # repeat per core
    repro-fleet status --queue /tmp/q
    repro-fleet gather --queue /tmp/q --store /tmp/c --sweep <id> --out ylt.npz

Workers regenerate the sweep's seeded workload from the manifest, so
the only shared state is the filesystem; inputs (and therefore every
content-addressed segment key) are byte-identical across the fleet.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from typing import List

from repro.data.presets import (
    BENCH_DEFAULT,
    BENCH_LARGE,
    BENCH_SMALL,
    WorkloadSpec,
)

_SCALES = {
    "small": BENCH_SMALL,
    "default": BENCH_DEFAULT,
    "large": BENCH_LARGE,
}

#: spec fields adjustable from the command line.
_SPEC_OVERRIDES = (
    "n_trials",
    "events_per_trial",
    "catalog_size",
    "elts_per_layer",
    "losses_per_elt",
    "n_layers",
    "seed",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-fleet",
        description="Distributed aggregate-risk-analysis sweeps over a "
        "shared job queue and result store.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, store: bool = True):
        p.add_argument(
            "--queue",
            required=True,
            help="queue directory, or tcp://host:port of a repro-kv-server",
        )
        if store:
            p.add_argument(
                "--store",
                default=None,
                help="store cache dir or tcp://host:port (default: "
                "$REPRO_STORE_URL, then $REPRO_CACHE_DIR)",
            )

    submit = sub.add_parser("submit", help="delta-plan and enqueue a sweep")
    add_common(submit)
    submit.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="small",
        help="base workload spec (default: small)",
    )
    for field in _SPEC_OVERRIDES:
        submit.add_argument(
            f"--{field.replace('_', '-')}", type=int, default=None
        )
    submit.add_argument("--engine", default="sequential")
    submit.add_argument("--kernel", choices=("ragged", "dense"), default=None)
    submit.add_argument(
        "--segment-trials",
        type=int,
        default=None,
        help="fixed segment stride (default: the engine's native plan)",
    )
    submit.add_argument(
        "--secondary",
        default=None,
        metavar="ALPHA,BETA",
        help="enable secondary uncertainty with Beta(alpha, beta)",
    )
    submit.add_argument("--secondary-seed", type=int, default=20130812)
    submit.add_argument(
        "--partitions",
        type=int,
        default=None,
        metavar="N",
        help="partition/shuffle mode: enqueue N reduce jobs (workers "
        "fold their segments into partial YLTs; gather merges N "
        "partials instead of every segment)",
    )

    worker = sub.add_parser("worker", help="claim and execute jobs")
    add_common(worker)
    worker.add_argument("--worker-id", default=None)
    worker.add_argument(
        "--backend",
        default=None,
        help="kernel backend for segment computes (numpy/numba/cupy/"
        "auto; default follows $REPRO_KERNEL_BACKEND, then numpy). "
        "Never part of store keys — fleets may mix backends freely.",
    )
    worker.add_argument("--max-jobs", type=int, default=None)
    worker.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        help="heartbeat patience before peers may requeue this worker's jobs",
    )
    worker.add_argument(
        "--no-drain",
        action="store_true",
        help="exit at the first empty claim instead of waiting for "
        "claimed jobs to resolve",
    )

    status = sub.add_parser(
        "status", help="per-sweep job counts (and store health)"
    )
    add_common(status)
    status.add_argument("--sweep", default=None)
    status.add_argument(
        "--failed",
        action="store_true",
        help="also print each failed job's failure provenance "
        "(per-attempt worker, error and exception chain)",
    )
    status.add_argument(
        "--json",
        action="store_true",
        help="emit the queue/store/worker stats as machine-readable "
        "JSON (failed-job provenance always included)",
    )

    gather = sub.add_parser("gather", help="assemble a sweep's YLT")
    add_common(gather)
    gather.add_argument("--sweep", required=True)
    gather.add_argument(
        "--out", default=None, help="write the YLT to this .npz path"
    )
    gather.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="wait up to this many seconds for open jobs to drain first",
    )
    return parser


def _store_for(args):
    # Directory path or tcp:// URL (multi-machine fleets); None falls
    # back to $REPRO_STORE_URL, then the default shared cache dir.
    from repro.net.url import store_from_url

    return store_from_url(args.store)


def _queue_for(args, **kwargs):
    from repro.net.url import queue_from_url

    return queue_from_url(args.queue, **kwargs)


def _cmd_submit(args) -> int:
    from repro.engines.registry import create_engine
    from repro.fleet.sweep import submit_sweep

    spec: WorkloadSpec = _SCALES[args.scale]
    changes = {
        field: getattr(args, field)
        for field in _SPEC_OVERRIDES
        if getattr(args, field) is not None
    }
    if changes:
        spec = spec.with_(name=f"{spec.name}-custom", **changes)

    from repro.data.generator import generate_workload

    workload = generate_workload(spec)
    secondary = None
    if args.secondary:
        from repro.core.secondary import SecondaryUncertainty

        alpha, beta = (float(v) for v in args.secondary.split(","))
        secondary = SecondaryUncertainty(alpha, beta)
    engine_obj = create_engine(
        args.engine,
        kernel=args.kernel,
        secondary=secondary,
        secondary_seed=args.secondary_seed if secondary is not None else None,
    )
    ticket = submit_sweep(
        _queue_for(args),
        _store_for(args),
        workload.yet,
        workload.portfolio,
        workload.catalog.n_events,
        engine_obj,
        segment_trials=args.segment_trials,
        workload_spec=spec,
        n_partitions=args.partitions,
    )
    print(f"sweep:     {ticket.sweep_id}")
    print(f"engine:    {args.engine} (kernel={engine_obj.kernel})")
    print(f"workload:  {dataclasses.asdict(spec)}")
    print(f"segments:  {ticket.delta.n_segments}")
    print(f"enqueued:  {ticket.submitted}")
    print(f"reused:    {ticket.reused} already in store")
    return 0


def _cmd_worker(args) -> int:
    from repro.fleet.worker import FleetWorker

    queue = _queue_for(args, lease_seconds=args.lease_seconds)
    worker = FleetWorker(
        queue,
        _store_for(args),
        worker_id=args.worker_id,
        backend=args.backend,
    )
    stats = worker.run(max_jobs=args.max_jobs, drain=not args.no_drain)
    print(
        f"{stats.worker_id}: backend={stats.backend} "
        f"claimed={stats.claimed} "
        f"computed={stats.computed} reused={stats.reused} "
        f"failed={stats.failed} compute_seconds={stats.compute_seconds:.3f}"
    )
    return 1 if stats.failed else 0


def _backend_mix(store, manifest, sample: int = 32) -> str:
    """Kernel-backend provenance of a sweep's stored segments.

    Reads up to ``sample`` stored segment entries' meta (backends are
    never part of the key, so provenance lives only there) and returns
    e.g. ``"numpy=30 numba=2"`` — or ``""`` when nothing is readable.
    """
    counts: dict = {}
    seen = 0
    for seg in manifest.get("segments", ()):
        if seen >= sample:
            break
        key = seg.get("key")
        if not key:
            continue
        try:
            entry = store.get(key)
        except Exception:
            continue
        if entry is None:
            continue
        seen += 1
        name = entry.meta.get("backend", "?")
        counts[name] = counts.get(name, 0) + 1
    return " ".join(f"{name}={n}" for name, n in sorted(counts.items()))


def _failed_jobs(queue, sweep_id) -> List[dict]:
    """Failure provenance of a sweep's exhausted jobs, JSON-able."""
    return [
        {
            "job_id": job.job_id,
            "kind": job.kind,
            "attempts": job.attempts,
            "error": job.error,
            "history": list(job.history),
        }
        for job in queue.jobs("failed", sweep_id)
    ]


def _cmd_status(args) -> int:
    import json

    queue = _queue_for(args)
    sweep_ids = [args.sweep] if args.sweep else queue.sweep_ids()
    store = None
    health = None
    if getattr(args, "store", None):
        # Fold the store's degradation picture — breaker states,
        # corruption/retry counters, hedged-read wins — into the same
        # screen as the job counts (one place to look during an outage).
        from repro.store.health import format_health, store_health

        store = _store_for(args)
        health = store_health(store)
        if health["entries"] is None:
            # Op counters are process-local (all zero in a fresh CLI);
            # a one-off directory walk gives the on-disk truth.
            try:
                health["entries"] = len(store)
            except TypeError:
                pass
        if not args.json:
            for line in format_health(health):
                print(line)
    if args.json:
        sweeps = []
        for sweep_id in sweep_ids:
            manifest = queue.load_sweep(sweep_id) or {}
            sweeps.append(
                {
                    "sweep_id": sweep_id,
                    "counts": queue.counts(sweep_id),
                    "reused": sum(
                        1
                        for seg in manifest.get("segments", ())
                        if seg.get("stored")
                    ),
                    "engine": manifest.get("engine"),
                    "n_trials": manifest.get("n_trials"),
                    "failed_jobs": _failed_jobs(queue, sweep_id),
                }
            )
        print(json.dumps({"store": health, "sweeps": sweeps}, indent=2))
        return 0
    if not sweep_ids:
        print("no sweeps")
        return 0
    for sweep_id in sweep_ids:
        counts = queue.counts(sweep_id)
        manifest = queue.load_sweep(sweep_id) or {}
        reused = sum(
            1 for seg in manifest.get("segments", ()) if seg.get("stored")
        )
        line = (
            f"{sweep_id}: pending={counts['pending']} "
            f"claimed={counts['claimed']} done={counts['done']} "
            f"failed={counts['failed']} reused={reused} "
            f"engine={manifest.get('engine', '?')}"
        )
        if store is not None:
            mix = _backend_mix(store, manifest)
            if mix:
                line += f" backends[{mix}]"
        print(line)
        if args.failed:
            for job in queue.jobs("failed", sweep_id):
                print(f"  failed {job.job_id} ({job.kind}, "
                      f"{job.attempts} attempt(s)):")
                for record in job.history:
                    print(
                        f"    attempt {record.get('attempt', '?')} "
                        f"on {record.get('worker') or '?'}: "
                        f"{record.get('error', '?')}"
                    )
                    for link in record.get("chain", ()):
                        print(f"      caused by: {link}")
    return 0


def _cmd_gather(args) -> int:
    from repro.fleet.sweep import gather_sweep, wait_for_drain
    from repro.store.keys import ylt_digest

    queue = _queue_for(args)
    if args.timeout > 0 and not wait_for_drain(
        queue, args.sweep, timeout=args.timeout
    ):
        print(
            f"timed out: {queue.active_count(args.sweep)} job(s) still open",
            file=sys.stderr,
        )
        return 1
    started = time.perf_counter()
    ylt = gather_sweep(queue, _store_for(args), args.sweep)
    seconds = time.perf_counter() - started
    print(f"assembled {ylt.n_layers} layer(s) x {ylt.n_trials} trials "
          f"in {seconds:.3f}s")
    print(f"ylt digest: {ylt_digest(ylt)}")
    for layer_id in ylt.layer_ids:
        print(f"layer {layer_id}: expected loss {ylt.expected_loss(layer_id):,.2f}")
    if args.out:
        from repro.io.binary import save_ylt

        save_ylt(ylt, args.out)
        print(f"wrote {args.out}")
    return 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "submit": _cmd_submit,
        "worker": _cmd_worker,
        "status": _cmd_status,
        "gather": _cmd_gather,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
