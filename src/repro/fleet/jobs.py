"""The durable job queue: segment-granular work shared by a fleet.

A :class:`JobQueue` is a directory.  Each job is one JSON file that
moves between state subdirectories by ``rename(2)`` — the one cheap
atomic primitive POSIX gives us, and the same discipline the file store
uses for entries::

    <queue_dir>/
        pending/<job_id>.json     # submitted, unowned
        claimed/<job_id>.json     # leased to a worker (mtime = heartbeat)
        done/<job_id>.json        # completed
        failed/<job_id>.json      # exhausted max_attempts
        locks/<job_id>.lock       # requeue-scan exclusivity (flock)
        sweeps/<sweep_id>.json    # sweep manifests (what to assemble)

Claiming is a rename from ``pending/`` to ``claimed/``: exactly one of
N racing workers (threads *or* processes on a shared filesystem) wins,
no lock required.  Leases are the claimed file's mtime: a worker
heartbeats by touching it, and :meth:`requeue_expired` renames files
whose heartbeat is older than ``lease_seconds`` back to ``pending/``
(under a per-job flock so concurrent scanners don't double-count).

Exactly-once *effects* do not depend on exactly-once job execution: a
job's result lands in the content-addressed result store via
``get_or_compute``, so a requeued job whose original worker already
stored the segment becomes a store hit, and two workers racing on one
segment compute it once per fleet (the store's cross-process lock).
The queue only has to guarantee that every job is eventually completed
by *someone* — which rename-based claims plus lease expiry give.
"""

from __future__ import annotations

import os
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.io.atomic import lock_file, read_json, touch, write_json_atomic

PathLike = Union[str, Path]

#: job lifecycle states == queue subdirectory names.
JOB_STATES = ("pending", "claimed", "done", "failed")

#: job kinds the fleet worker knows how to execute.
JOB_KIND_SEGMENT = "segment"
JOB_KIND_QUOTE = "quote"
JOB_KIND_REDUCE = "reduce"


@dataclass
class FleetJob:
    """One unit of queued work.

    Attributes
    ----------
    job_id:
        Queue-unique id (``<sweep_id>.t<task_id>`` for segments); the
        file name, so submission of an existing id is a no-op.
    sweep_id:
        The sweep manifest this job belongs to.
    kind:
        ``"segment"`` (one plan task) or ``"quote"`` (one candidate
        layer's finished year-loss vector).
    key:
        Content-addressed store key the result must land under.
    payload:
        Kind-specific work description (task coordinates, quote terms).
    attempts:
        Times a worker has claimed this job (requeue increments).
    owner:
        Worker id of the current/last claimant.
    error:
        Last failure message, if any.
    history:
        Failure provenance: one record per failed attempt —
        ``{"attempt", "worker", "exc_type", "error", "chain"}`` where
        ``chain`` is the exception cause chain outermost-first.  Rides
        with the job into ``failed/``, so a poison job explains itself
        (``repro-fleet status --failed``).
    """

    job_id: str
    sweep_id: str
    kind: str
    key: str
    payload: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 0
    owner: Optional[str] = None
    error: Optional[str] = None
    history: List[Dict[str, Any]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "job_id": self.job_id,
            "sweep_id": self.sweep_id,
            "kind": self.kind,
            "key": self.key,
            "payload": self.payload,
            "attempts": self.attempts,
            "owner": self.owner,
            "error": self.error,
            "history": self.history,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "FleetJob":
        return cls(
            job_id=str(data["job_id"]),
            sweep_id=str(data["sweep_id"]),
            kind=str(data["kind"]),
            key=str(data["key"]),
            payload=dict(data.get("payload") or {}),
            attempts=int(data.get("attempts", 0)),
            owner=data.get("owner"),
            error=data.get("error"),
            history=list(data.get("history") or []),
        )


def exception_chain(exc: BaseException) -> List[str]:
    """The cause/context chain as ``"Type: message"`` strings,
    outermost first — what failure provenance persists in place of a
    traceback (JSON-able, stable across Python versions)."""
    chain: List[str] = []
    seen: set = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or (
            current.__context__ if not current.__suppress_context__ else None
        )
    return chain


class JobQueue:
    """Durable, multi-process work queue under one directory.

    Parameters
    ----------
    queue_dir:
        Root directory (created on first use).  Workers on any machine
        that can see this path — and the companion result store —
        cooperate on the same sweeps.
    lease_seconds:
        Heartbeat patience: a claimed job whose file mtime is older
        than this is presumed abandoned (crashed/stalled worker) and
        eligible for :meth:`requeue_expired`.
    max_attempts:
        Claims before a repeatedly failing job moves to ``failed/``
        instead of back to ``pending/``.
    """

    def __init__(
        self,
        queue_dir: PathLike,
        lease_seconds: float = 60.0,
        max_attempts: int = 5,
    ) -> None:
        if lease_seconds <= 0:
            raise ValueError(f"lease_seconds must be > 0, got {lease_seconds}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.queue_dir = Path(queue_dir).expanduser()
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)

    # -- layout --------------------------------------------------------
    def state_dir(self, state: str) -> Path:
        if state not in JOB_STATES:
            raise ValueError(f"unknown state {state!r}; expected {JOB_STATES}")
        return self.queue_dir / state

    @property
    def _locks_dir(self) -> Path:
        return self.queue_dir / "locks"

    @property
    def _sweeps_dir(self) -> Path:
        return self.queue_dir / "sweeps"

    def ensure(self) -> None:
        for state in JOB_STATES:
            self.state_dir(state).mkdir(parents=True, exist_ok=True)
        self._locks_dir.mkdir(parents=True, exist_ok=True)
        self._sweeps_dir.mkdir(parents=True, exist_ok=True)

    def _job_path(self, state: str, job_id: str) -> Path:
        return self.state_dir(state) / f"{job_id}.json"

    def find(self, job_id: str) -> Optional[str]:
        """The state currently holding ``job_id``, or ``None``."""
        for state in JOB_STATES:
            if self._job_path(state, job_id).is_file():
                return state
        return None

    # -- submission ----------------------------------------------------
    def submit(self, jobs: List[FleetJob]) -> int:
        """Enqueue jobs; returns how many were actually added.

        Idempotent by ``job_id``: a job already pending, claimed or
        done is skipped, so resubmitting a sweep after a partial run
        only fills the gaps.  A job found in ``failed/`` is *revived* —
        its attempt counter resets and it returns to ``pending/`` — so
        resubmission is the recovery path after fixing whatever
        exhausted its attempts (the last error is kept on the job).
        """
        self.ensure()
        added = 0
        for job in jobs:
            state = self.find(job.job_id)
            if state == "failed":
                revived = read_json(self._job_path("failed", job.job_id))
                if revived is not None:
                    job = FleetJob.from_json(revived)
                    job.attempts = 0
                try:
                    os.remove(self._job_path("failed", job.job_id))
                except OSError:
                    continue  # a racing submitter revived it first
            elif state is not None:
                continue
            write_json_atomic(self._job_path("pending", job.job_id), job.to_json())
            added += 1
        return added

    # -- sweeps --------------------------------------------------------
    def save_sweep(self, sweep_id: str, manifest: Dict[str, Any]) -> None:
        self.ensure()
        write_json_atomic(self._sweeps_dir / f"{sweep_id}.json", manifest)

    def load_sweep(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        return read_json(self._sweeps_dir / f"{sweep_id}.json")

    def sweep_ids(self) -> List[str]:
        if not self._sweeps_dir.is_dir():
            return []
        return sorted(p.stem for p in self._sweeps_dir.glob("*.json"))

    # -- claim / lease / complete --------------------------------------
    def _list_state(self, state: str, sweep_id: str | None = None) -> List[Path]:
        directory = self.state_dir(state)
        if not directory.is_dir():
            return []
        paths = sorted(directory.glob("*.json"))
        if sweep_id is not None:
            prefix = f"{sweep_id}."
            paths = [p for p in paths if p.name.startswith(prefix)]
        return paths

    def claim(
        self, worker_id: str | None = None, sweep_id: str | None = None
    ) -> Optional[FleetJob]:
        """Atomically take one pending job, or ``None`` if none remain.

        The claim is a ``rename(2)`` into ``claimed/`` — exactly one of
        N racing claimants wins each job.  Workers start their scan at
        an id-derived offset so a fleet doesn't stampede the same file.
        The claimed file is rewritten with owner/attempt bookkeeping
        (its mtime starts the lease).
        """
        self.ensure()
        worker_id = worker_id or f"worker-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        # Unsorted scandir: claims need *a* job, not the first job, and
        # a 10k-segment sweep would otherwise pay an O(n log n) sort
        # per claim.  The id-derived offset de-stampedes the fleet.
        prefix = f"{sweep_id}." if sweep_id is not None else ""
        try:
            with os.scandir(self.state_dir("pending")) as it:
                candidates = [
                    Path(entry.path)
                    for entry in it
                    if entry.name.endswith(".json")
                    and entry.name.startswith(prefix)
                ]
        except OSError:
            return None
        if not candidates:
            return None
        offset = hash(worker_id) % len(candidates)
        for path in candidates[offset:] + candidates[:offset]:
            target = self.state_dir("claimed") / path.name
            try:
                os.rename(path, target)
            except OSError:
                continue  # a racing worker won this one; try the next
            # rename preserves the pending file's (stale) mtime; start
            # the lease NOW so a job that waited longer than the lease
            # in pending/ is not instantly "expired" for requeue scans.
            touch(target)
            data = read_json(target)
            if data is None:
                if not target.is_file():
                    # The file vanished: a peer's requeue scan saw the
                    # pre-touch stale mtime and sent the job back to
                    # pending.  It is still live work — move on.
                    continue
                # Present but unreadable: poison, not a crash loop.
                job = FleetJob(
                    job_id=path.stem,
                    sweep_id=(sweep_id or path.stem.split(".")[0]),
                    kind="unknown",
                    key="unreadable",
                )
                self.fail(job, "unreadable job file", requeue=False)
                continue
            job = FleetJob.from_json(data)
            job.attempts += 1
            job.owner = worker_id
            write_json_atomic(target, job.to_json())
            return job
        return None

    def heartbeat(self, job: FleetJob) -> bool:
        """Refresh the lease on a claimed job (``False`` if lost)."""
        return touch(self._job_path("claimed", job.job_id))

    def complete(self, job: FleetJob) -> bool:
        """Move a claimed job to ``done/`` (the terminal success state).

        ``False`` when the claim was lost meanwhile (lease expired and
        a peer requeued or finished the job) — the caller's result is
        already safe in the store either way.
        """
        return self._move(job, "claimed", "done")

    def fail(
        self,
        job: FleetJob,
        error: str,
        requeue: bool = True,
        exc: BaseException | None = None,
        exc_type: str | None = None,
        chain: List[str] | None = None,
    ) -> str:
        """Record a failure (with provenance); requeue or retire the job.

        Returns the state the job landed in: ``"pending"`` when it will
        be retried, ``"failed"`` once ``max_attempts`` is exhausted (or
        ``requeue=False``), ``"lost"`` when this worker no longer held
        the claim (the job lives on elsewhere; nothing was recorded).

        ``exc`` (when the failure was an exception) enriches the job's
        provenance ``history`` with the exception type and full cause
        chain; the record travels with the job through every requeue
        and into ``failed/``, where ``repro-fleet status --failed``
        reads it back.  ``exc_type``/``chain`` carry the same
        provenance pre-serialised — the network transport's path, where
        the exception object itself cannot cross the wire.
        """
        job.error = str(error)
        if exc is not None:
            exc_type = type(exc).__name__
            chain = exception_chain(exc)
        job.history.append(
            {
                "attempt": job.attempts,
                "worker": job.owner,
                "exc_type": exc_type,
                "error": str(error),
                "chain": list(chain or []),
            }
        )
        state = (
            "pending"
            if requeue and job.attempts < self.max_attempts
            else "failed"
        )
        return state if self._move(job, "claimed", state) else "lost"

    def _move(self, job: FleetJob, src: str, dst: str) -> bool:
        """Transition a job this caller owns; ``False`` if it doesn't.

        Guarded by the job's flock (shared with :meth:`requeue_expired`)
        and an under-lock existence check, so a worker whose lease
        expired — its job requeued and possibly finished by a peer —
        cannot re-materialise it in another state from a stale copy.
        """
        self.ensure()
        source = self._job_path(src, job.job_id)
        with lock_file(self._locks_dir / f"{job.job_id}.lock"):
            if not source.is_file():
                return False  # claim lost: the job moved on without us
            write_json_atomic(source, job.to_json())
            try:
                os.replace(source, self._job_path(dst, job.job_id))
            except OSError:
                return False
        return True

    def _lease_age(self, path: Path, now: float) -> float:
        """Monotonic-safe lease age of a claimed file, in seconds.

        The heartbeat clock is the file's mtime, which may come from a
        *different machine's* wall clock on a shared filesystem.  A
        skewed (future) mtime must not make the job look fresh forever:
        the age is clamped to ``>= 0``, and an mtime further in the
        future than one lease period is normalised to *now* (one
        ``utime``), so from this scan onward the lease ages normally
        and can expire.  May raise ``OSError`` (file completed
        meanwhile) — callers skip.
        """
        age = now - path.stat().st_mtime
        if age < -self.lease_seconds:
            touch(path)  # clock skew beyond tolerance: restart the lease
            return 0.0
        return max(0.0, age)

    def requeue_expired(self, now: float | None = None) -> List[str]:
        """Return crashed/stalled workers' jobs to ``pending/``.

        A claimed file whose heartbeat (lease age, clock-skew-clamped
        by :meth:`_lease_age`) is at least ``lease_seconds`` old is
        renamed back under a per-job flock — two concurrent scanners
        agree on one requeue, and a worker that heartbeats between the
        check and the rename keeps its job only if the heartbeat landed
        first (losing a heartbeat race costs a duplicate *claim*, never
        a duplicate stored result: the store dedups the compute).
        """
        now = time.time() if now is None else float(now)
        requeued: List[str] = []
        for path in self._list_state("claimed"):
            try:
                expired = self._lease_age(path, now) >= self.lease_seconds
            except OSError:
                continue  # completed meanwhile
            if not expired:
                continue
            with lock_file(self._locks_dir / f"{path.stem}.lock"):
                try:
                    if self._lease_age(path, now) < self.lease_seconds:
                        continue  # heartbeat arrived while we waited
                    os.rename(path, self.state_dir("pending") / path.name)
                except OSError:
                    continue
                requeued.append(path.stem)
        return requeued

    def stragglers(
        self,
        min_age_fraction: float = 0.5,
        sweep_id: str | None = None,
        now: float | None = None,
    ) -> List[FleetJob]:
        """Claimed jobs whose lease age passed a fraction of the lease.

        The speculation feed: a job claimed long ago but not yet done
        is *probably* on a struggling worker.  Idle peers re-execute
        its computation through ``get_or_compute`` — if the owner was
        merely slow, one of the two computes is a harmless duplicate
        deduped by the store; if the owner is dead, the result is
        already stored when the lease finally expires and the requeued
        claim becomes a pure store hit.  Oldest first.
        """
        if not 0.0 < min_age_fraction <= 1.0:
            raise ValueError(
                f"min_age_fraction must be in (0, 1], got {min_age_fraction}"
            )
        now = time.time() if now is None else float(now)
        threshold = min_age_fraction * self.lease_seconds
        aged: List[tuple] = []
        for path in self._list_state("claimed", sweep_id):
            try:
                age = self._lease_age(path, now)
            except OSError:
                continue
            if age < threshold:
                continue
            data = read_json(path)
            if data is not None:
                aged.append((age, FleetJob.from_json(data)))
        aged.sort(key=lambda pair: -pair[0])
        return [job for _, job in aged]

    # -- introspection -------------------------------------------------
    def _count_state(self, state: str, sweep_id: str | None = None) -> int:
        """Unsorted scandir count of one state (the idle-loop path —
        workers poll this dozens of times a second, so no globbing or
        sorting of the ever-growing ``done/`` directory)."""
        prefix = f"{sweep_id}." if sweep_id is not None else ""
        try:
            with os.scandir(self.state_dir(state)) as it:
                return sum(
                    1
                    for entry in it
                    if entry.name.endswith(".json")
                    and entry.name.startswith(prefix)
                )
        except OSError:
            return 0

    def counts(self, sweep_id: str | None = None) -> Dict[str, int]:
        """Jobs per state (optionally restricted to one sweep)."""
        return {
            state: self._count_state(state, sweep_id)
            for state in JOB_STATES
        }

    def active_count(self, sweep_id: str | None = None) -> int:
        """Jobs still pending or claimed (the sweep's open work)."""
        return self._count_state("pending", sweep_id) + self._count_state(
            "claimed", sweep_id
        )

    def jobs(
        self, state: str, sweep_id: str | None = None
    ) -> Iterator[FleetJob]:
        """Iterate jobs currently in ``state`` (snapshot semantics)."""
        for path in self._list_state(state, sweep_id):
            data = read_json(path)
            if data is not None:
                yield FleetJob.from_json(data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobQueue({str(self.queue_dir)!r}, "
            f"lease_seconds={self.lease_seconds})"
        )
