"""The client side: a pooled wire transport and ``RemoteStore``.

:class:`WireTransport` owns the sockets: a small pool of connections to
one server, connect/request timeouts, and the chaos hook — a seeded
:class:`~repro.faults.plan.FaultPlan` consulted before every send
(``OP_SEND``) and receive (``OP_RECV``), so wire latency, connection
drops and IO errors replay deterministically like every other injected
fault in the stack.

:class:`RemoteStore` is a full :class:`~repro.store.base.ResultStore`
over that transport.  Design choices worth naming:

* **Every RPC is retried** under a bounded
  :class:`~repro.utils.retry.RetryPolicy` and scored against one
  per-server :class:`~repro.utils.retry.CircuitBreaker`.  The breaker
  opening makes the store fail fast with ``OSError`` — which is
  exactly what :class:`~repro.store.filestore.TieredStore` expects
  from a sick tier, so slotting a ``RemoteStore`` into a tier list
  buys hedged reads, quarantine and graceful degradation with no new
  code.
* **Retries are safe by construction.**  GET/CONTAINS/STATS are pure
  reads; PUT/DELETE are idempotent because keys are content-addressed
  (two puts of one key carry identical bytes).  A dropped connection
  mid-RPC therefore costs one reconnect-and-retry, never a wrong
  state.
* **Cross-machine ``get_or_compute`` dedup** uses the server's
  lease-based LOCK op: ``_exclusive`` polls for the lock and releases
  it on exit.  When the server is unreachable the guard degrades to a
  pass-through — the same trade :func:`~repro.io.atomic.lock_file`
  makes on filesystems without flock: a duplicate compute deduped by
  content-addressed keys, never a stalled fleet.
"""

from __future__ import annotations

import contextlib
import logging
import socket
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import (
    KIND_DROP,
    KIND_IO_ERROR,
    KIND_LATENCY,
    OP_RECV,
    OP_SEND,
    FaultPlan,
)
from repro.net.protocol import (
    WireProtocolError,
    decode_entry,
    encode_entry,
    pack_message,
    raise_for_header,
    read_frame_size,
    unpack_payload,
)
from repro.store.base import ResultStore, StoreEntry
from repro.utils.retry import CircuitBreaker, RetryPolicy, retry_call

logger = logging.getLogger("repro.net.client")

#: wire flavour of the stack default: one more attempt than local disk
#: (a dropped connection is routine, not alarming), bounded overall.
WIRE_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.02, max_delay=0.5, deadline_seconds=10.0
)


class WireTransport:
    """A pool of framed connections to one ``repro-kv-server``.

    ``request(header, blobs)`` is the whole API: borrow a socket, send
    one frame, read one frame back, return the socket to the pool.  Any
    socket that saw an error is closed, not pooled — the next request
    dials fresh.  Thread-safe; one transport is shared by a
    ``RemoteStore`` and a ``RemoteJobQueue`` talking to the same
    server.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        pool_size: int = 4,
        fault_plan: Optional[FaultPlan] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        if connect_timeout <= 0 or request_timeout <= 0:
            raise ValueError("transport timeouts must be > 0")
        self.host = str(host)
        self.port = int(port)
        self.connect_timeout = float(connect_timeout)
        self.request_timeout = float(request_timeout)
        self.pool_size = int(pool_size)
        self.fault_plan = fault_plan
        self.worker_id = worker_id
        self._pool: List[socket.socket] = []
        self._mutex = threading.Lock()
        self.requests = 0
        self.reconnects = 0

    # -- socket pool ---------------------------------------------------
    def _checkout(self) -> socket.socket:
        with self._mutex:
            if self._pool:
                return self._pool.pop()
        self.reconnects += 1
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.connect_timeout
        )
        sock.settimeout(self.request_timeout)
        return sock

    def _checkin(self, sock: socket.socket) -> None:
        with self._mutex:
            if len(self._pool) < self.pool_size:
                self._pool.append(sock)
                return
        sock.close()

    def close(self) -> None:
        with self._mutex:
            pool, self._pool = self._pool, []
        for sock in pool:
            with contextlib.suppress(OSError):
                sock.close()

    # -- chaos hook ----------------------------------------------------
    def _inject(self, op: str, key: Optional[str], sock: socket.socket) -> None:
        """Apply any scheduled wire fault for ``op`` (send/recv)."""
        if self.fault_plan is None:
            return
        for spec in self.fault_plan.fire(op, key=key, worker=self.worker_id):
            if spec.kind == KIND_LATENCY:
                time.sleep(spec.latency_seconds)
            elif spec.kind == KIND_DROP:
                # Sever the connection the way a mid-RPC network
                # partition would.  On OP_RECV the request is already
                # on the wire — the server acts, the reply is lost —
                # and raising here (rather than letting the pending
                # read race the in-flight reply) makes the loss
                # deterministic; the retry path dials fresh.
                with contextlib.suppress(OSError):
                    sock.shutdown(socket.SHUT_RDWR)
                raise WireProtocolError(
                    f"injected connection drop on {op} of {key!r}"
                )
            elif spec.kind == KIND_IO_ERROR:
                raise WireProtocolError(
                    f"injected wire fault on {op} of {key!r}"
                )

    # -- one RPC -------------------------------------------------------
    def request(
        self,
        header: Dict[str, Any],
        blobs: Optional[Dict[str, np.ndarray]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """One framed round trip.  Raises ``OSError`` flavours on any
        transport trouble (retryable), ``ValueError`` on server-rejected
        requests (not retryable)."""
        key = header.get("key") or header.get("job_id")
        frame = pack_message(header, blobs)
        sock = self._checkout()
        try:
            self._inject(OP_SEND, key, sock)
            sock.sendall(frame)
            self._inject(OP_RECV, key, sock)
            prefix = self._read_exact(sock, 8)
            payload = self._read_exact(sock, read_frame_size(prefix))
        except BaseException:
            with contextlib.suppress(OSError):
                sock.close()
            raise
        else:
            self._checkin(sock)
        finally:
            with self._mutex:
                self.requests += 1
        reply_header, reply_blobs = unpack_payload(payload)
        raise_for_header(reply_header)
        return reply_header, reply_blobs

    @staticmethod
    def _read_exact(sock: socket.socket, n: int) -> bytes:
        chunks: List[bytes] = []
        remaining = n
        while remaining > 0:
            chunk = sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise WireProtocolError(
                    f"connection closed {remaining} bytes short of a frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


class _ServerLockGuard:
    """``_exclusive`` over the server's lease-based LOCK op.

    Polls ``lock`` until granted (bounded by ``acquire_timeout``), then
    releases on exit.  Degrades to a pass-through when the server
    cannot be reached or the wait times out — the
    :func:`~repro.io.atomic.lock_file` trade: duplicate compute beats
    stalled fleet.
    """

    def __init__(
        self,
        store: "RemoteStore",
        key: str,
        acquire_timeout: float,
        poll_interval: float = 0.05,
    ) -> None:
        self.store = store
        self.key = key
        self.acquire_timeout = acquire_timeout
        self.poll_interval = poll_interval
        self.owner = f"{store.client_id}:{uuid.uuid4().hex[:8]}"
        self.acquired = False

    def __enter__(self) -> bool:
        deadline = time.monotonic() + self.acquire_timeout
        while True:
            try:
                header, _ = self.store._rpc(
                    {"op": "lock", "key": self.key, "owner": self.owner}
                )
            except OSError:
                return False  # degraded: proceed unlocked
            if header.get("acquired"):
                self.acquired = True
                return True
            if time.monotonic() >= deadline:
                return False  # holder outlived our patience; proceed
            time.sleep(self.poll_interval)

    def __exit__(self, *exc) -> bool:
        if self.acquired:
            with contextlib.suppress(OSError):
                self.store._rpc(
                    {"op": "unlock", "key": self.key, "owner": self.owner}
                )
        return False


class RemoteStore(ResultStore):
    """A :class:`ResultStore` whose backend is a ``repro-kv-server``.

    Parameters
    ----------
    host / port:
        The server address (or pass a ready-made ``transport``).
    retry_policy:
        Per-RPC retry bounds (:data:`WIRE_RETRY_POLICY` by default).
    breaker:
        Injectable :class:`CircuitBreaker`; by default 5 consecutive
        failed RPCs open it for 15 s, during which every call fails
        fast with ``OSError`` — the signal ``TieredStore`` interprets
        as "skip this tier".
    lock_timeout:
        Patience for the server-side ``get_or_compute`` lock before
        proceeding unlocked.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9410,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        retry_policy: RetryPolicy = WIRE_RETRY_POLICY,
        breaker: Optional[CircuitBreaker] = None,
        fault_plan: Optional[FaultPlan] = None,
        transport: Optional[WireTransport] = None,
        lock_timeout: float = 120.0,
        client_id: Optional[str] = None,
    ) -> None:
        super().__init__()
        self.transport = transport or WireTransport(
            host,
            port,
            connect_timeout=connect_timeout,
            request_timeout=request_timeout,
            fault_plan=fault_plan,
        )
        self.retry_policy = retry_policy
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, cooldown_seconds=15.0
        )
        self.lock_timeout = float(lock_timeout)
        self.client_id = client_id or f"client-{uuid.uuid4().hex[:8]}"
        self.rpc_retries = 0
        self.breaker_rejections = 0

    # -- the one RPC path ----------------------------------------------
    def _rpc(
        self,
        header: Dict[str, Any],
        blobs: Optional[Dict[str, np.ndarray]] = None,
    ) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """A breaker-guarded, retried round trip.

        The breaker scores the *retried* outcome, not each attempt: a
        request that succeeds on its second try is a success (the
        server works), not half a failure.
        """
        with self._lock:
            if not self.breaker.allow():
                self.breaker_rejections += 1
                raise OSError(
                    f"remote store breaker open for "
                    f"{self.transport.host}:{self.transport.port}"
                )

        def count_retry(attempt: int, exc: BaseException, delay: float) -> None:
            with self._lock:
                self.rpc_retries += 1

        try:
            result = retry_call(
                lambda: self.transport.request(header, blobs),
                self.retry_policy,
                on_retry=count_retry,
            )
        except OSError:
            with self._lock:
                self.breaker.record_failure()
            raise
        with self._lock:
            self.breaker.record_success()
        return result

    # -- ResultStore backend hooks --------------------------------------
    def _get(self, key: str) -> Optional[StoreEntry]:
        header, blobs = self._rpc({"op": "get", "key": key})
        if not header.get("found"):
            return None
        try:
            return decode_entry(header, blobs)
        except WireProtocolError as exc:
            self.note_corrupt(key, str(exc))
            return None

    def _put(self, key: str, entry: StoreEntry) -> None:
        header, blobs = encode_entry({"op": "put", "key": key}, entry)
        self._rpc(header, blobs)

    def contains(self, key: str) -> bool:
        header, _ = self._rpc({"op": "contains", "key": key})
        return bool(header.get("found"))

    def _delete(self, key: str) -> bool:
        header, _ = self._rpc({"op": "delete", "key": key})
        return bool(header.get("deleted"))

    def _exclusive(self, key: str):
        return _ServerLockGuard(self, key, self.lock_timeout)

    # -- introspection --------------------------------------------------
    def server_stats(self) -> Dict[str, Any]:
        """The *server's* store counters (this client's live in
        :meth:`stats` like every other ``ResultStore``)."""
        header, _ = self._rpc({"op": "stats"})
        return dict(header.get("stats") or {})

    def _size_hint(self) -> Optional[int]:
        try:
            header, _ = self._rpc({"op": "stats"})
        except (OSError, ValueError):
            return None
        return header.get("size")

    def stats(self) -> Dict[str, int]:
        stats = super().stats()
        with self._lock:
            stats["rpc_retries"] = self.rpc_retries
            stats["breaker_rejections"] = self.breaker_rejections
            stats["breaker"] = self.breaker.as_dict()
        stats["requests"] = self.transport.requests
        stats["reconnects"] = self.transport.reconnects
        return stats

    def __len__(self) -> int:
        size = self._size_hint()
        return 0 if size is None else int(size)

    def clear(self) -> None:
        raise NotImplementedError(
            "RemoteStore does not clear the shared server; clear the "
            "server's backing store directly"
        )

    def close(self) -> None:
        self.transport.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteStore({self.transport.host}:{self.transport.port}, "
            f"breaker={self.breaker.state})"
        )
