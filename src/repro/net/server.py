"""The reference KV + queue server (``repro-kv-server``).

One asyncio server fronts two contracts over the framing in
:mod:`repro.net.protocol`:

* a **store front**: GET/PUT/CONTAINS/DELETE/STATS plus lease-based
  LOCK/UNLOCK, delegating to any local
  :class:`~repro.store.base.ResultStore` (a ``FileStore`` in
  production, a ``MemoryStore`` in tests);
* a **queue front**: submit/claim/heartbeat/complete/fail/requeue and
  the introspection calls, delegating to a server-local
  :class:`~repro.fleet.jobs.JobQueue`.

Two properties matter more than throughput here:

* **Server-authoritative clocks.**  Every lease — job heartbeats *and*
  ``get_or_compute`` locks — is stamped and aged on the server's clock
  (heartbeats ``touch(2)`` files on the server's disk), so worker
  machines with skewed wall clocks cannot make a dead peer's job look
  fresh or a live peer's look expired.  The client never sends a
  timestamp.
* **Lease-based locks.**  The store's cross-machine ``get_or_compute``
  exclusivity is a lock *lease*: an owner that vanishes (crashed
  worker, dropped connection) blocks peers only until the lease
  expires, never forever.  Losing a lock race costs a duplicate
  compute deduped by content-addressed keys — the same trade every
  layer of the fleet already makes.

The implementation is deliberately small and sequential per
connection: it is the executable spec a Redis/S3-style adapter must
match, and the double every net test runs against — not a tuned
production daemon.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.fleet.jobs import FleetJob, JobQueue
from repro.net.protocol import (
    decode_entry,
    encode_entry,
    error_header,
    pack_message,
    read_frame_size,
    unpack_payload,
)
from repro.store.base import ResultStore, StoreEntry, check_key

logger = logging.getLogger("repro.net.server")


class _LockTable:
    """Lease-based advisory locks for cross-machine ``get_or_compute``.

    ``acquire`` is idempotent per owner (re-acquiring refreshes the
    lease), mirroring flock semantics within one holder.  Expired
    leases are stolen silently: the previous owner is presumed dead,
    and the worst outcome of presuming wrong is one duplicate compute.
    """

    def __init__(self, lease_seconds: float) -> None:
        if lease_seconds <= 0:
            raise ValueError(
                f"lock lease_seconds must be > 0, got {lease_seconds}"
            )
        self.lease_seconds = float(lease_seconds)
        self._held: Dict[str, Tuple[str, float]] = {}
        self._mutex = threading.Lock()

    def acquire(self, key: str, owner: str) -> bool:
        now = time.monotonic()
        with self._mutex:
            holder = self._held.get(key)
            if holder is not None and holder[0] != owner and holder[1] > now:
                return False
            self._held[key] = (owner, now + self.lease_seconds)
            return True

    def release(self, key: str, owner: str) -> bool:
        with self._mutex:
            holder = self._held.get(key)
            if holder is None or holder[0] != owner:
                return False
            del self._held[key]
            return True


class NetServer:
    """The asyncio front over a local store and (optionally) a queue.

    Parameters
    ----------
    store:
        The backing :class:`ResultStore` every store op delegates to.
    queue:
        The server-local :class:`JobQueue` queue ops delegate to; when
        ``None``, queue ops answer ``bad_request`` (a pure-KV server).
    host / port:
        Bind address.  ``port=0`` asks the OS for a free port —
        :attr:`bound_port` reports the choice once serving.
    lock_lease_seconds:
        Lease on LOCK grants (see :class:`_LockTable`).
    """

    def __init__(
        self,
        store: ResultStore,
        queue: Optional[JobQueue] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lock_lease_seconds: float = 30.0,
    ) -> None:
        self.store = store
        self.queue = queue
        self.host = host
        self.port = int(port)
        self.locks = _LockTable(lock_lease_seconds)
        self.bound_port: Optional[int] = None
        self.requests = 0
        self.errors = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        logger.info("repro-kv-server listening on %s:%d", self.host, self.bound_port)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- connection loop -----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            while True:
                try:
                    prefix = await reader.readexactly(8)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break  # clean (or abrupt) client disconnect
                except asyncio.CancelledError:
                    break  # server shutdown; swallowed so the stream
                    # wrapper's done-callback stays quiet
                try:
                    payload = await reader.readexactly(read_frame_size(prefix))
                    header, blobs = unpack_payload(payload)
                    reply = self._dispatch(header, blobs)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ValueError as exc:
                    self.errors += 1
                    reply = pack_message(error_header(str(exc), "bad_request"))
                except Exception as exc:  # noqa: BLE001 - server must answer
                    self.errors += 1
                    logger.warning("request failed: %r", exc)
                    reply = pack_message(error_header(repr(exc)))
                try:
                    writer.write(reply)
                    await writer.drain()
                except (ConnectionError, OSError):
                    break
        finally:
            if task is not None:
                self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # -- dispatch ------------------------------------------------------
    def _dispatch(
        self, header: Dict[str, Any], blobs: Dict[str, np.ndarray]
    ) -> bytes:
        op = header.get("op")
        if not isinstance(op, str):
            raise ValueError(f"request has no op: {header!r}")
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise ValueError(f"unknown op {op!r}")
        self.requests += 1
        return handler(header, blobs)

    @staticmethod
    def _reply(
        header: Optional[Dict[str, Any]] = None,
        blobs: Optional[Dict[str, np.ndarray]] = None,
    ) -> bytes:
        merged = {"ok": True}
        merged.update(header or {})
        return pack_message(merged, blobs)

    # -- store ops -----------------------------------------------------
    def _op_get(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        entry = self.store.get(key)
        if entry is None:
            return self._reply({"found": False})
        reply_header, reply_blobs = encode_entry({"found": True}, entry)
        return self._reply(reply_header, reply_blobs)

    def _op_put(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        self.store.put(key, decode_entry(header, blobs))
        return self._reply()

    def _op_contains(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        return self._reply({"found": bool(self.store.contains(key))})

    def _op_delete(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        return self._reply({"deleted": bool(self.store.delete(key))})

    def _op_stats(self, header, blobs) -> bytes:
        stats = dict(self.store.stats())
        stats["server"] = {"requests": self.requests, "errors": self.errors}
        return self._reply({"stats": stats, "size": len(self.store)})

    def _op_lock(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        owner = str(header.get("owner") or "")
        if not owner:
            raise ValueError("lock requests must name an owner")
        return self._reply({"acquired": self.locks.acquire(key, owner)})

    def _op_unlock(self, header, blobs) -> bytes:
        key = check_key(str(header.get("key")))
        owner = str(header.get("owner") or "")
        return self._reply({"released": self.locks.release(key, owner)})

    # -- queue ops -----------------------------------------------------
    def _require_queue(self) -> JobQueue:
        if self.queue is None:
            raise ValueError("this server exposes no job queue")
        return self.queue

    def _op_qconfig(self, header, blobs) -> bytes:
        queue = self._require_queue()
        return self._reply(
            {
                "lease_seconds": queue.lease_seconds,
                "max_attempts": queue.max_attempts,
            }
        )

    def _op_qsubmit(self, header, blobs) -> bytes:
        queue = self._require_queue()
        jobs = [FleetJob.from_json(j) for j in header.get("jobs") or []]
        return self._reply({"added": queue.submit(jobs)})

    def _op_qclaim(self, header, blobs) -> bytes:
        queue = self._require_queue()
        job = queue.claim(
            worker_id=header.get("worker_id"), sweep_id=header.get("sweep_id")
        )
        return self._reply({"job": None if job is None else job.to_json()})

    def _op_qheartbeat(self, header, blobs) -> bytes:
        queue = self._require_queue()
        job = FleetJob.from_json(header["job"])
        # touch(2) on the server's disk: the lease clock is OURS, so a
        # worker machine's skewed wall clock cannot alter lease aging.
        return self._reply({"alive": bool(queue.heartbeat(job))})

    def _op_qcomplete(self, header, blobs) -> bytes:
        queue = self._require_queue()
        job = FleetJob.from_json(header["job"])
        return self._reply({"completed": bool(queue.complete(job))})

    def _op_qfail(self, header, blobs) -> bytes:
        queue = self._require_queue()
        job = FleetJob.from_json(header["job"])
        state = queue.fail(
            job,
            str(header.get("error", "")),
            requeue=bool(header.get("requeue", True)),
            exc_type=header.get("exc_type"),
            chain=header.get("chain"),
        )
        return self._reply({"state": state})

    def _op_qrequeue(self, header, blobs) -> bytes:
        # No client timestamp accepted: expiry is judged *here*.
        return self._reply({"requeued": self._require_queue().requeue_expired()})

    def _op_qcounts(self, header, blobs) -> bytes:
        queue = self._require_queue()
        return self._reply({"counts": queue.counts(header.get("sweep_id"))})

    def _op_qactive(self, header, blobs) -> bytes:
        queue = self._require_queue()
        return self._reply({"active": queue.active_count(header.get("sweep_id"))})

    def _op_qjobs(self, header, blobs) -> bytes:
        queue = self._require_queue()
        state = str(header.get("state"))
        jobs = queue.jobs(state, header.get("sweep_id"))
        return self._reply({"jobs": [job.to_json() for job in jobs]})

    def _op_qstragglers(self, header, blobs) -> bytes:
        queue = self._require_queue()
        jobs = queue.stragglers(
            min_age_fraction=float(header.get("min_age_fraction", 0.5)),
            sweep_id=header.get("sweep_id"),
        )
        return self._reply({"jobs": [job.to_json() for job in jobs]})

    def _op_qfind(self, header, blobs) -> bytes:
        queue = self._require_queue()
        return self._reply({"state": queue.find(str(header.get("job_id")))})

    def _op_qsave_sweep(self, header, blobs) -> bytes:
        queue = self._require_queue()
        sweep_id = str(header.get("sweep_id"))
        queue.save_sweep(sweep_id, dict(header.get("manifest") or {}))
        return self._reply()

    def _op_qload_sweep(self, header, blobs) -> bytes:
        queue = self._require_queue()
        return self._reply(
            {"manifest": queue.load_sweep(str(header.get("sweep_id")))}
        )

    def _op_qsweep_ids(self, header, blobs) -> bytes:
        return self._reply({"sweep_ids": self._require_queue().sweep_ids()})


class ServerThread:
    """Run a :class:`NetServer` on a daemon thread (the test harness).

    ::

        with ServerThread(NetServer(store, queue)) as address:
            client = RemoteStore(*address)

    ``address`` is the bound ``(host, port)`` — pass ``port=0`` to the
    server and read the OS's choice here.
    """

    def __init__(self, server: NetServer, startup_timeout: float = 10.0) -> None:
        self.server = server
        self.startup_timeout = float(startup_timeout)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def address(self) -> Tuple[str, int]:
        if self.server.bound_port is None:
            raise RuntimeError("server not started")
        return self.server.host, self.server.bound_port

    def start(self) -> Tuple[str, int]:
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-kv-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(self.startup_timeout):
            raise RuntimeError("repro-kv-server failed to start in time")
        return self.address

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)

        async def _serve() -> None:
            await self.server.start()
            self._started.set()

        self._loop.run_until_complete(_serve())
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=self.startup_timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> Tuple[str, int]:
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
