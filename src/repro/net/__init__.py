"""Network transports: the store and queue contracts over a socket.

Everything the fleet coordinates through — the content-addressed
:class:`~repro.store.base.ResultStore` and the
:class:`~repro.fleet.jobs.JobQueue` — was designed against a narrow
contract (key → array bundle; claim/heartbeat/complete/requeue), and
this package carries both contracts over TCP so a fleet stops being
"processes that share a filesystem" and becomes "machines that share a
server":

* :mod:`repro.net.protocol` — a small length-prefixed binary wire
  format: JSON headers for control, raw array blobs with per-blob
  CRC32s for payloads (the same checksums the file store keeps on
  disk), one framing for every RPC;
* :mod:`repro.net.server` — the reference asyncio server
  (``repro-kv-server``): a dumb KV front over any local
  :class:`~repro.store.base.ResultStore` plus a queue front over a
  server-local :class:`~repro.fleet.jobs.JobQueue` whose lease clock is
  the **server's** — heartbeats and requeue scans never depend on a
  worker machine's wall clock.  It is deliberately simple: the spec an
  adapter for a real Redis/S3-style backend must match, and the test
  double every net test runs against;
* :mod:`repro.net.client` — :class:`~repro.net.client.RemoteStore`, a
  full ``ResultStore`` over the wire (connect/read timeouts, bounded
  retries, a fail-fast circuit breaker, server-side lock leases for
  cross-machine ``get_or_compute`` dedup) that slots under
  :class:`~repro.store.filestore.TieredStore` as a network tier and
  inherits hedged reads, digest-verified fetches and quarantine for
  free;
* :mod:`repro.net.queue` — :class:`~repro.net.queue.RemoteJobQueue`, a
  drop-in ``JobQueue`` client speaking the same framing, preserving
  rename-atomic claims, server-clock leases and the once-per-fleet
  compute guarantee for workers on different machines;
* :mod:`repro.net.url` — ``tcp://host:port`` vs directory-path
  resolution (``$REPRO_STORE_URL`` / ``$REPRO_QUEUE_URL``) shared by
  the CLIs.

Chaos coverage rides the existing seeded harness:
:mod:`repro.faults.wire` injects latency, connection drops and IO
errors on every RPC, and the NET-ABLATE benchmark pins digest equality
through all of it.
"""

from repro.net.client import RemoteStore
from repro.net.protocol import (
    WireProtocolError,
    RemoteServerError,
    decode_entry,
    encode_entry,
    pack_message,
    unpack_payload,
)
from repro.net.queue import RemoteJobQueue
from repro.net.server import NetServer, ServerThread
from repro.net.url import (
    QUEUE_URL_ENV,
    STORE_URL_ENV,
    parse_tcp_url,
    queue_from_url,
    store_from_url,
)

__all__ = [
    "RemoteStore",
    "RemoteJobQueue",
    "NetServer",
    "ServerThread",
    "WireProtocolError",
    "RemoteServerError",
    "pack_message",
    "unpack_payload",
    "encode_entry",
    "decode_entry",
    "parse_tcp_url",
    "store_from_url",
    "queue_from_url",
    "STORE_URL_ENV",
    "QUEUE_URL_ENV",
]
