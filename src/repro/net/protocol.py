"""The wire format: length-prefixed frames, JSON headers, CRC'd blobs.

One framing for every RPC both directions::

    frame   := magic(4) | u32 frame_len | payload(frame_len)
    payload := u32 header_len | header_json | blob_0 | blob_1 | ...

The header is a small JSON object.  Requests carry ``{"op": ..., ...}``;
responses carry ``{"ok": true, ...}`` or ``{"ok": false, "error": ...,
"kind": "bad_request" | "server_error"}``.  Binary array payloads ride
as *blobs* after the header: the header's ``"blobs"`` list records each
one's name, dtype, shape, byte length and CRC32 (the same
:func:`~repro.io.atomic.array_crc32` checksum the file store keeps on
disk), and the raw bytes follow in list order.  Decoding verifies every
CRC, so a frame damaged anywhere between the peers surfaces as a typed
:class:`WireProtocolError` — an ``OSError``, i.e. *transient* to every
retry policy in the stack — never as silently wrong numbers.

All integers are big-endian.  ``MAX_FRAME_BYTES`` bounds what either
side will buffer, so a garbled length prefix fails loudly instead of
attempting a multi-terabyte allocation.

:func:`encode_entry` / :func:`decode_entry` map a
:class:`~repro.store.base.StoreEntry` onto this shape (meta in the
header, one blob per array) — the network analogue of the file store's
``meta.json`` + ``.npy`` layout.
"""

from __future__ import annotations

import json
import struct
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.io.atomic import array_crc32
from repro.store.base import StoreEntry

#: protocol magic + version; bump on incompatible framing changes.
MAGIC = b"RKV1"

#: refuse to buffer frames beyond this (a garbled length prefix must
#: fail loudly, not allocate).  Generous for YLT segments: 1 GiB.
MAX_FRAME_BYTES = 1 << 30

_U32 = struct.Struct(">I")


class WireProtocolError(OSError):
    """A malformed, truncated or checksum-failing frame.

    Subclasses :class:`OSError` deliberately: wire damage is transient
    to every retry policy in the stack (:data:`~repro.utils.retry.
    DEFAULT_RETRY_POLICY` retries ``OSError``), so a flipped bit on the
    wire costs a retry, never a wrong answer and never a crash path of
    its own.
    """


class RemoteServerError(OSError):
    """The server answered ``ok=false`` with ``kind="server_error"``.

    Also an ``OSError``: the server's transient failures (its disk, its
    own store tiers) should look exactly like a flaky local disk to the
    caller's retry/breaker machinery.  Client-side *usage* errors
    (``kind="bad_request"``) raise :class:`ValueError` instead and are
    never retried.
    """


def pack_message(
    header: Mapping[str, Any],
    blobs: Optional[Mapping[str, np.ndarray]] = None,
) -> bytes:
    """Serialise one message (header + named array blobs) into a frame."""
    blobs = blobs or {}
    specs: List[Dict[str, Any]] = []
    payloads: List[bytes] = []
    for name, array in blobs.items():
        data = np.ascontiguousarray(array)
        raw = data.tobytes()
        specs.append(
            {
                "name": str(name),
                "dtype": str(data.dtype.str),
                "shape": [int(n) for n in data.shape],
                "nbytes": len(raw),
                "crc32": array_crc32(data),
            }
        )
        payloads.append(raw)
    full_header = dict(header)
    if specs:
        full_header["blobs"] = specs
    header_bytes = json.dumps(full_header, sort_keys=True).encode("utf-8")
    body = b"".join([_U32.pack(len(header_bytes)), header_bytes, *payloads])
    if len(body) > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    return b"".join([MAGIC, _U32.pack(len(body)), body])


def read_frame_size(prefix: bytes) -> int:
    """Validate the 8-byte frame prefix; return the payload length."""
    if len(prefix) != 8:
        raise WireProtocolError(
            f"truncated frame prefix ({len(prefix)} of 8 bytes)"
        )
    if prefix[:4] != MAGIC:
        raise WireProtocolError(
            f"bad magic {prefix[:4]!r} (expected {MAGIC!r}) — not a "
            "repro-kv peer, or a corrupted stream"
        )
    (size,) = _U32.unpack(prefix[4:8])
    if size > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"declared frame of {size} bytes exceeds MAX_FRAME_BYTES"
        )
    return size


def unpack_payload(
    payload: bytes,
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Parse a frame payload into ``(header, blobs)``, verifying CRCs.

    Returned arrays are detached read-only copies — safe to hand to
    store consumers directly (the :class:`~repro.store.base.StoreEntry`
    immutability contract).
    """
    if len(payload) < 4:
        raise WireProtocolError("frame too short for a header length")
    (header_len,) = _U32.unpack(payload[:4])
    if 4 + header_len > len(payload):
        raise WireProtocolError(
            f"declared header of {header_len} bytes overruns the frame"
        )
    try:
        header = json.loads(payload[4 : 4 + header_len].decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise WireProtocolError(f"garbled frame header: {exc!r}") from exc
    if not isinstance(header, dict):
        raise WireProtocolError(f"frame header is not an object: {header!r}")

    blobs: Dict[str, np.ndarray] = {}
    offset = 4 + header_len
    for spec in header.pop("blobs", []):
        nbytes = int(spec["nbytes"])
        raw = payload[offset : offset + nbytes]
        if len(raw) != nbytes:
            raise WireProtocolError(
                f"blob {spec.get('name')!r} truncated on the wire "
                f"({len(raw)} of {nbytes} bytes)"
            )
        offset += nbytes
        array = np.frombuffer(raw, dtype=np.dtype(str(spec["dtype"])))
        array = array.reshape([int(n) for n in spec["shape"]]).copy()
        if array_crc32(array) != int(spec["crc32"]):
            raise WireProtocolError(
                f"blob {spec.get('name')!r} failed its CRC32 — damaged "
                "in flight"
            )
        array.flags.writeable = False
        blobs[str(spec["name"])] = array
    if offset != len(payload):
        raise WireProtocolError(
            f"{len(payload) - offset} trailing bytes after the last blob"
        )
    return header, blobs


# -- store entry codec ----------------------------------------------------


def encode_entry(
    header: Mapping[str, Any], entry: StoreEntry
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Fold a :class:`StoreEntry` into a message: meta in the header,
    one CRC'd blob per array."""
    merged = dict(header)
    merged["meta"] = dict(entry.meta)
    merged["arrays"] = sorted(entry.arrays)
    return merged, dict(entry.arrays)


def decode_entry(
    header: Mapping[str, Any], blobs: Mapping[str, np.ndarray]
) -> StoreEntry:
    """Rebuild the :class:`StoreEntry` encoded by :func:`encode_entry`."""
    names = header.get("arrays")
    if not isinstance(names, list) or not names:
        raise WireProtocolError(f"entry frame lists no arrays: {names!r}")
    arrays = {}
    for name in names:
        array = blobs.get(str(name))
        if array is None:
            raise WireProtocolError(
                f"entry frame promises array {name!r} but carries no "
                "such blob"
            )
        arrays[str(name)] = array
    return StoreEntry(arrays=arrays, meta=dict(header.get("meta") or {}))


def error_header(error: str, kind: str = "server_error") -> Dict[str, Any]:
    """The failure response shape both sides agree on."""
    return {"ok": False, "error": str(error), "kind": str(kind)}


def raise_for_header(header: Mapping[str, Any]) -> None:
    """Convert a failure response into the typed client-side exception.

    ``bad_request`` (malformed op, bad key, unknown state name) raises
    :class:`ValueError` — caller bugs are not transient and must never
    be retried; anything else raises :class:`RemoteServerError`, which
    the retry/breaker machinery treats exactly like local disk trouble.
    """
    if header.get("ok", False):
        return
    error = str(header.get("error", "unspecified server failure"))
    if header.get("kind") == "bad_request":
        raise ValueError(f"rejected by server: {error}")
    raise RemoteServerError(error)
