"""``RemoteJobQueue``: the ``JobQueue`` contract over the wire.

A drop-in duck type for :class:`~repro.fleet.jobs.JobQueue` — every
method a :class:`~repro.fleet.worker.FleetWorker`, sweep submitter or
CLI touches exists here with the same signature and semantics, but each
is one RPC to the reference server's queue front instead of a
filesystem operation.

What the transport must preserve (and how it does):

* **Atomic claims** — the rename(2) race happens *on the server*
  against its local directory queue; N workers claiming over N sockets
  contend exactly like N processes on a shared filesystem.
* **Server-authoritative leases** — ``heartbeat`` and ``requeue_expired``
  carry no timestamps; the server touches and ages claim files on its
  own clock, so a worker machine's skewed wall clock cannot distort
  lease arithmetic (the clamp in ``JobQueue._lease_age`` remains as
  defence for the server's *own* mtime anomalies).
* **Benign drops** — a reply lost after the server acted is always
  safe: a dropped claim reply leaves the job leased to a worker that
  never heard of it, and the lease expires it back to ``pending/``; a
  dropped complete reply at worst re-runs a job whose result is
  already a store hit.  Exactly-once *effects* still come from the
  store, never the queue.
* **Failure provenance** — ``fail`` serialises the exception type and
  cause chain client-side (exception objects cannot cross the wire)
  and the server appends the same history record the local queue
  would.

Retry/breaker behaviour mirrors :class:`~repro.net.client.RemoteStore`;
pass the *same* :class:`~repro.net.client.WireTransport` to share one
socket pool with the store client when both point at one server.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.fleet.jobs import FleetJob, exception_chain
from repro.net.client import WIRE_RETRY_POLICY, WireTransport
from repro.utils.retry import CircuitBreaker, RetryPolicy, retry_call


class RemoteJobQueue:
    """A network client speaking the server's queue ops.

    Parameters mirror :class:`~repro.net.client.RemoteStore`; pass
    ``transport`` to share a socket pool with a store client.
    ``lease_seconds`` / ``max_attempts`` are the *server's* values,
    fetched once and cached — workers derive heartbeat cadence and
    speculation ages from them, so they must agree fleet-wide.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 9410,
        connect_timeout: float = 5.0,
        request_timeout: float = 30.0,
        retry_policy: RetryPolicy = WIRE_RETRY_POLICY,
        breaker: Optional[CircuitBreaker] = None,
        transport: Optional[WireTransport] = None,
        fault_plan=None,
    ) -> None:
        self.transport = transport or WireTransport(
            host,
            port,
            connect_timeout=connect_timeout,
            request_timeout=request_timeout,
            fault_plan=fault_plan,
        )
        self.retry_policy = retry_policy
        self.breaker = breaker or CircuitBreaker(
            failure_threshold=5, cooldown_seconds=15.0
        )
        self._mutex = threading.Lock()
        self._config: Optional[Tuple[float, int]] = None
        self.rpc_retries = 0

    # -- plumbing ------------------------------------------------------
    def _rpc(self, header: Dict[str, Any]) -> Dict[str, Any]:
        with self._mutex:
            if not self.breaker.allow():
                raise OSError(
                    f"remote queue breaker open for "
                    f"{self.transport.host}:{self.transport.port}"
                )

        def count_retry(attempt: int, exc: BaseException, delay: float) -> None:
            with self._mutex:
                self.rpc_retries += 1

        try:
            reply, _ = retry_call(
                lambda: self.transport.request(header),
                self.retry_policy,
                on_retry=count_retry,
            )
        except OSError:
            with self._mutex:
                self.breaker.record_failure()
            raise
        with self._mutex:
            self.breaker.record_success()
        return reply

    def _get_config(self) -> Tuple[float, int]:
        with self._mutex:
            cached = self._config
        if cached is not None:
            return cached
        reply = self._rpc({"op": "qconfig"})
        config = (float(reply["lease_seconds"]), int(reply["max_attempts"]))
        with self._mutex:
            self._config = config
        return config

    @property
    def lease_seconds(self) -> float:
        return self._get_config()[0]

    @property
    def max_attempts(self) -> int:
        return self._get_config()[1]

    def ensure(self) -> None:
        """Directory creation is the server's concern; this probes it."""
        self._get_config()

    # -- submission / sweeps -------------------------------------------
    def submit(self, jobs: List[FleetJob]) -> int:
        reply = self._rpc(
            {"op": "qsubmit", "jobs": [job.to_json() for job in jobs]}
        )
        return int(reply.get("added", 0))

    def save_sweep(self, sweep_id: str, manifest: Dict[str, Any]) -> None:
        self._rpc(
            {"op": "qsave_sweep", "sweep_id": sweep_id, "manifest": manifest}
        )

    def load_sweep(self, sweep_id: str) -> Optional[Dict[str, Any]]:
        reply = self._rpc({"op": "qload_sweep", "sweep_id": sweep_id})
        return reply.get("manifest")

    def sweep_ids(self) -> List[str]:
        return list(self._rpc({"op": "qsweep_ids"}).get("sweep_ids") or [])

    # -- claim / lease / complete --------------------------------------
    def claim(
        self, worker_id: str | None = None, sweep_id: str | None = None
    ) -> Optional[FleetJob]:
        reply = self._rpc(
            {"op": "qclaim", "worker_id": worker_id, "sweep_id": sweep_id}
        )
        data = reply.get("job")
        return None if data is None else FleetJob.from_json(data)

    def heartbeat(self, job: FleetJob) -> bool:
        # A heartbeat that cannot reach the server is a *failed*
        # heartbeat, not an error: the worker keeps computing and the
        # lease question resolves on the server (peer requeue at worst
        # duplicates a claim; the store dedups the compute).
        try:
            reply = self._rpc({"op": "qheartbeat", "job": job.to_json()})
        except OSError:
            return False
        return bool(reply.get("alive"))

    def complete(self, job: FleetJob) -> bool:
        reply = self._rpc({"op": "qcomplete", "job": job.to_json()})
        return bool(reply.get("completed"))

    def fail(
        self,
        job: FleetJob,
        error: str,
        requeue: bool = True,
        exc: BaseException | None = None,
    ) -> str:
        reply = self._rpc(
            {
                "op": "qfail",
                "job": job.to_json(),
                "error": str(error),
                "requeue": bool(requeue),
                # provenance crosses the wire pre-serialised
                "exc_type": type(exc).__name__ if exc is not None else None,
                "chain": exception_chain(exc) if exc is not None else [],
            }
        )
        return str(reply.get("state", "lost"))

    def requeue_expired(self, now: float | None = None) -> List[str]:
        # ``now`` is accepted for signature compatibility but NOT sent:
        # expiry is judged on the server's clock, which is the point.
        reply = self._rpc({"op": "qrequeue"})
        return list(reply.get("requeued") or [])

    # -- introspection -------------------------------------------------
    def find(self, job_id: str) -> Optional[str]:
        return self._rpc({"op": "qfind", "job_id": job_id}).get("state")

    def counts(self, sweep_id: str | None = None) -> Dict[str, int]:
        reply = self._rpc({"op": "qcounts", "sweep_id": sweep_id})
        return dict(reply.get("counts") or {})

    def active_count(self, sweep_id: str | None = None) -> int:
        reply = self._rpc({"op": "qactive", "sweep_id": sweep_id})
        return int(reply.get("active", 0))

    def jobs(
        self, state: str, sweep_id: str | None = None
    ) -> Iterator[FleetJob]:
        reply = self._rpc(
            {"op": "qjobs", "state": state, "sweep_id": sweep_id}
        )
        for data in reply.get("jobs") or []:
            yield FleetJob.from_json(data)

    def stragglers(
        self,
        min_age_fraction: float = 0.5,
        sweep_id: str | None = None,
        now: float | None = None,
    ) -> List[FleetJob]:
        reply = self._rpc(
            {
                "op": "qstragglers",
                "min_age_fraction": min_age_fraction,
                "sweep_id": sweep_id,
            }
        )
        return [FleetJob.from_json(d) for d in reply.get("jobs") or []]

    def close(self) -> None:
        with contextlib.suppress(OSError):
            self.transport.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RemoteJobQueue({self.transport.host}:{self.transport.port}, "
            f"breaker={self.breaker.state})"
        )
