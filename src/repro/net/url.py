"""URL resolution: one spelling for local directories and tcp servers.

Every CLI that takes ``--store`` / ``--queue`` accepts either a
directory path (the single-machine fleet: shared filesystem) or a
``tcp://host:port`` URL (the multi-machine fleet: a ``repro-kv-server``),
and the environment variables ``$REPRO_STORE_URL`` / ``$REPRO_QUEUE_URL``
supply fleet-wide defaults so a worker machine needs no flags at all::

    export REPRO_STORE_URL=tcp://10.0.0.5:9410
    export REPRO_QUEUE_URL=tcp://10.0.0.5:9410
    repro-fleet worker --queue "$REPRO_QUEUE_URL"

Both URLs usually name the same server (the reference server fronts
store and queue on one port); keeping them separate env vars leaves
room for split deployments.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

STORE_URL_ENV = "REPRO_STORE_URL"
QUEUE_URL_ENV = "REPRO_QUEUE_URL"

_TCP_SCHEME = "tcp://"


def parse_tcp_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` → ``(host, port)``; raises on anything else.

    A trailing slash (``tcp://host:port/``) is tolerated — URL-shaped
    configs commonly carry one.  Everything else malformed (missing
    host or port, a non-numeric or out-of-range port, an embedded path)
    raises a ``ValueError`` naming the problem, so a typo'd fleet URL
    fails at parse time instead of as a confusing downstream socket
    error.
    """
    if not url.startswith(_TCP_SCHEME):
        raise ValueError(f"not a tcp:// URL: {url!r}")
    rest = url[len(_TCP_SCHEME):].rstrip("/")
    if "/" in rest:
        raise ValueError(
            f"tcp URL must not carry a path, expected tcp://host:port, "
            f"got {url!r}"
        )
    host, sep, port = rest.rpartition(":")
    if not sep or not port:
        raise ValueError(
            f"tcp URL is missing a port, expected tcp://host:port, "
            f"got {url!r}"
        )
    if not host:
        raise ValueError(
            f"tcp URL is missing a host, expected tcp://host:port, "
            f"got {url!r}"
        )
    if not (port.isascii() and port.isdigit()):
        raise ValueError(
            f"invalid tcp port {port!r} in {url!r} (expected an integer)"
        )
    number = int(port)
    if not 1 <= number <= 65535:
        raise ValueError(
            f"tcp port {number} out of range 1-65535 in {url!r}"
        )
    return host, number


def is_tcp_url(value: Optional[str]) -> bool:
    return isinstance(value, str) and value.startswith(_TCP_SCHEME)


def store_from_url(url: Optional[str] = None, **remote_kwargs):
    """Resolve a store target: tcp URL → :class:`RemoteStore`, path →
    :class:`~repro.store.filestore.SharedFileStore`.

    ``url=None`` falls back to ``$REPRO_STORE_URL``, then to the shared
    file store's own default cache directory.  ``remote_kwargs`` reach
    the :class:`RemoteStore` constructor (timeouts, retry policy) and
    are ignored for directory stores.
    """
    url = url if url is not None else os.environ.get(STORE_URL_ENV)
    if is_tcp_url(url):
        from repro.net.client import RemoteStore

        host, port = parse_tcp_url(url)
        return RemoteStore(host, port, **remote_kwargs)
    from repro.store import SharedFileStore

    return SharedFileStore(url)


def queue_from_url(url: Optional[str] = None, **local_kwargs):
    """Resolve a queue target: tcp URL → :class:`RemoteJobQueue`, path →
    :class:`~repro.fleet.jobs.JobQueue`.

    ``url=None`` falls back to ``$REPRO_QUEUE_URL`` (there is no
    directory default — a queue path must be explicit).
    ``local_kwargs`` (``lease_seconds``, ``max_attempts``) configure a
    *local* directory queue; for a remote queue those are the server's
    settings and client-side values are ignored.
    """
    url = url if url is not None else os.environ.get(QUEUE_URL_ENV)
    if url is None:
        raise ValueError(
            f"no queue target: pass a directory or tcp:// URL, or set "
            f"${QUEUE_URL_ENV}"
        )
    if is_tcp_url(url):
        from repro.net.queue import RemoteJobQueue

        host, port = parse_tcp_url(url)
        return RemoteJobQueue(host, port)
    from repro.fleet.jobs import JobQueue

    return JobQueue(url, **local_kwargs)
