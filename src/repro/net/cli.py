"""``repro-kv-server``: run the reference store/queue server.

Typical multi-machine session (see README "Running a multi-machine
fleet")::

    # on the server box
    repro-kv-server --host 0.0.0.0 --port 9410 \
        --store-dir /srv/repro/cache --queue-dir /srv/repro/queue

    # on each worker box
    export REPRO_STORE_URL=tcp://server:9410
    export REPRO_QUEUE_URL=tcp://server:9410
    repro-fleet worker --queue "$REPRO_QUEUE_URL" --store "$REPRO_STORE_URL"

The server owns the durable state: its ``--store-dir`` is the fleet's
shared result store and its ``--queue-dir`` the shared job queue, both
living on *its* disk with *its* clock driving every lease.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys
from typing import List


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-kv-server",
        description="Reference wire-protocol server fronting a local "
        "result store and job queue for multi-machine fleets.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=9410)
    parser.add_argument(
        "--store-dir",
        default=None,
        help="backing store directory (default: $REPRO_CACHE_DIR); "
        "--memory overrides",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="back the store with an in-memory LRU instead of a "
        "directory (tests, throwaway fleets)",
    )
    parser.add_argument(
        "--max-entries",
        type=int,
        default=1024,
        help="entry cap for --memory stores",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        help="job queue directory; omit to serve the KV front only",
    )
    parser.add_argument(
        "--lease-seconds",
        type=float,
        default=60.0,
        help="job lease patience (the fleet-wide value: aged on this "
        "server's clock)",
    )
    parser.add_argument("--max-attempts", type=int, default=5)
    parser.add_argument(
        "--lock-lease-seconds",
        type=float,
        default=30.0,
        help="lease on get_or_compute locks (a crashed holder blocks "
        "peers at most this long)",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
    )

    from repro.net.server import NetServer

    if args.memory:
        from repro.store.base import MemoryStore

        store = MemoryStore(max_entries=args.max_entries)
    else:
        from repro.store import SharedFileStore

        store = SharedFileStore(args.store_dir)

    queue = None
    if args.queue_dir is not None:
        from repro.fleet.jobs import JobQueue

        queue = JobQueue(
            args.queue_dir,
            lease_seconds=args.lease_seconds,
            max_attempts=args.max_attempts,
        )
        queue.ensure()

    server = NetServer(
        store,
        queue,
        host=args.host,
        port=args.port,
        lock_lease_seconds=args.lock_lease_seconds,
    )
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
