"""Factory, shared cache and memory accounting for lookup structures."""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup
from repro.lookup.combined import StackedDirectTable
from repro.lookup.compressed import CompressedBlockTable
from repro.lookup.cuckoo import CuckooTable
from repro.lookup.direct import DirectAccessTable
from repro.lookup.hashtable import OpenAddressingTable
from repro.lookup.sorted_table import SortedLookupTable

LOOKUP_KINDS = ("direct", "sorted", "hash", "cuckoo", "compressed")
"""Registry names accepted by :func:`build_lookup`."""


def build_lookup(
    elt: EventLossTable,
    catalog_size: int,
    kind: str = "direct",
    dtype: np.dtype | type = np.float64,
) -> LossLookup:
    """Build the lookup structure named ``kind`` for one ELT.

    ``dtype`` affects the direct table's slot precision and the
    compressed table's stored losses; the other compact structures keep
    float64 losses (their memory is key-dominated anyway).
    """
    if kind == "direct":
        return DirectAccessTable(elt, catalog_size=catalog_size, dtype=dtype)
    if kind == "sorted":
        return SortedLookupTable(elt)
    if kind == "hash":
        return OpenAddressingTable(elt)
    if kind == "cuckoo":
        return CuckooTable(elt)
    if kind == "compressed":
        # Loss precision follows the engine's working dtype so that the
        # compressed structure is drop-in exact for float64 engines.
        return CompressedBlockTable(elt, loss_dtype=dtype)
    raise ValueError(f"unknown lookup kind {kind!r}; expected one of {LOOKUP_KINDS}")


def build_layer_lookups(
    elts: Sequence[EventLossTable],
    catalog_size: int,
    kind: str = "direct",
    dtype: np.dtype | type = np.float64,
) -> List[LossLookup]:
    """Build one lookup structure per ELT of a layer."""
    return [
        build_lookup(elt, catalog_size=catalog_size, kind=kind, dtype=dtype)
        for elt in elts
    ]


def build_stacked_table(
    elts: Sequence[EventLossTable],
    catalog_size: int,
    dtype: np.dtype | type = np.float64,
) -> StackedDirectTable:
    """Build the fused-kernel stacked direct table for one layer."""
    return StackedDirectTable(elts, catalog_size=catalog_size, dtype=dtype)


class LookupCache:
    """LRU cache of built layer lookup structures.

    Lookup structures are frozen after construction and safe for
    concurrent readers, so portfolios whose layers share ELTs — and
    repeated engine runs over the same portfolio (benchmark sweeps,
    pricing loops) — can share one build instead of rebuilding per layer
    per run.

    Entries are keyed by the *identity* of the ELT objects (plus their
    terms and the identity of their data buffers, so reassigning
    ``elt.terms``/``elt.losses`` misses the cache) and
    ``(catalog_size, kind, dtype)``.  Each entry holds only *weak*
    references to its ELTs: dropping a workload evicts its entries —
    the cache never pins hundreds of MB of tables past the data's
    lifetime — and eviction-on-death also guarantees a recycled ``id()``
    can never alias a cached key.  ``maxsize`` bounds worst-case memory
    while the data is alive (direct tables at paper scale are ~240 MB
    per 15-ELT layer).

    The one mutation the key cannot see is *in-place* edits of a live
    ELT's loss values (``elt.losses *= 2``); lookup structures have
    always been build-time snapshots, so after such an edit call
    :func:`clear_lookup_cache` (or use a fresh :class:`LookupCache`).
    """

    def __init__(self, maxsize: int = 8) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        # key -> (value, tuple of weakrefs keeping eviction callbacks alive)
        self._entries: "OrderedDict[Tuple, Tuple[object, tuple]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _evict(self, key: Tuple) -> None:
        with self._lock:
            self._entries.pop(key, None)

    def _get(self, key: Tuple, elts: Sequence[EventLossTable], build):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry[0]
        value = build()
        # Weak references with an eviction callback: the entry dies with
        # its ELTs, so cached ids always refer to live objects and the
        # tables are reclaimable once the workload is dropped.
        refs = tuple(
            weakref.ref(elt, lambda _ref, key=key: self._evict(key))
            for elt in elts
        )
        with self._lock:
            self.misses += 1
            self._entries[key] = (value, refs)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
        return value

    @staticmethod
    def _key(
        tag: str,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        kind: str,
        dtype: np.dtype | type,
    ) -> Tuple:
        return (
            tag,
            tuple(
                (
                    id(elt),
                    elt.terms.as_tuple(),
                    elt.event_ids.ctypes.data,
                    elt.losses.ctypes.data,
                    elt.n_losses,
                )
                for elt in elts
            ),
            int(catalog_size),
            kind,
            np.dtype(dtype).str,
        )

    # ------------------------------------------------------------------
    def layer_lookups(
        self,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        kind: str = "direct",
        dtype: np.dtype | type = np.float64,
    ) -> List[LossLookup]:
        """Cached :func:`build_layer_lookups`."""
        key = self._key("lookups", elts, catalog_size, kind, dtype)
        return self._get(
            key,
            elts,
            lambda: build_layer_lookups(
                elts, catalog_size=catalog_size, kind=kind, dtype=dtype
            ),
        )

    def stacked_table(
        self,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        dtype: np.dtype | type = np.float64,
    ) -> StackedDirectTable:
        """Cached :func:`build_stacked_table`."""
        key = self._key("stacked", elts, catalog_size, "stacked", dtype)
        return self._get(
            key,
            elts,
            lambda: build_stacked_table(elts, catalog_size, dtype=dtype),
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "size": len(self)}


_DEFAULT_CACHE = LookupCache()


def get_lookup_cache() -> LookupCache:
    """The process-wide shared lookup cache used by all engines."""
    return _DEFAULT_CACHE


def clear_lookup_cache() -> None:
    """Drop every cached lookup build (benchmark hygiene)."""
    _DEFAULT_CACHE.clear()


def cached_layer_lookups(
    elts: Sequence[EventLossTable],
    catalog_size: int,
    kind: str = "direct",
    dtype: np.dtype | type = np.float64,
) -> List[LossLookup]:
    """:func:`build_layer_lookups` through the shared process-wide cache."""
    return _DEFAULT_CACHE.layer_lookups(
        elts, catalog_size=catalog_size, kind=kind, dtype=dtype
    )


def memory_report(
    elts: Sequence[EventLossTable],
    catalog_size: int,
    include_stacked: bool = False,
) -> List[Dict[str, float]]:
    """Memory/access trade-off rows for every structure kind.

    One row per kind with total bytes across the given ELTs and expected
    memory accesses per lookup — the quantified version of the paper's
    Section III argument (direct access: most memory, fewest accesses).

    ``include_stacked`` appends the fused ragged kernel's layer-wide
    :class:`~repro.lookup.combined.StackedDirectTable` (the default
    kernel path's representation): byte-identical to the per-ELT direct
    tables, but serviced by one gather for the whole layer.
    """
    rows: List[Dict[str, float]] = []
    for kind in LOOKUP_KINDS:
        lookups = build_layer_lookups(elts, catalog_size, kind=kind)
        total_bytes = sum(lk.nbytes for lk in lookups)
        accesses = (
            sum(lk.mean_accesses_per_lookup() for lk in lookups) / len(lookups)
            if lookups
            else 0.0
        )
        rows.append(
            {
                "kind": kind,
                "total_bytes": float(total_bytes),
                "bytes_per_elt": float(total_bytes / max(len(lookups), 1)),
                "accesses_per_lookup": float(accesses),
            }
        )
    if include_stacked and elts:
        stacked = build_stacked_table(elts, catalog_size)
        rows.append(
            {
                "kind": "stacked",
                "total_bytes": float(stacked.nbytes),
                "bytes_per_elt": float(stacked.nbytes / stacked.n_elts),
                "accesses_per_lookup": float(
                    stacked.mean_accesses_per_lookup()
                ),
            }
        )
    return rows
