"""Factory and memory accounting for lookup structures."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup
from repro.lookup.compressed import CompressedBlockTable
from repro.lookup.cuckoo import CuckooTable
from repro.lookup.direct import DirectAccessTable
from repro.lookup.hashtable import OpenAddressingTable
from repro.lookup.sorted_table import SortedLookupTable

LOOKUP_KINDS = ("direct", "sorted", "hash", "cuckoo", "compressed")
"""Registry names accepted by :func:`build_lookup`."""


def build_lookup(
    elt: EventLossTable,
    catalog_size: int,
    kind: str = "direct",
    dtype: np.dtype | type = np.float64,
) -> LossLookup:
    """Build the lookup structure named ``kind`` for one ELT.

    ``dtype`` affects the direct table's slot precision and the
    compressed table's stored losses; the other compact structures keep
    float64 losses (their memory is key-dominated anyway).
    """
    if kind == "direct":
        return DirectAccessTable(elt, catalog_size=catalog_size, dtype=dtype)
    if kind == "sorted":
        return SortedLookupTable(elt)
    if kind == "hash":
        return OpenAddressingTable(elt)
    if kind == "cuckoo":
        return CuckooTable(elt)
    if kind == "compressed":
        # Loss precision follows the engine's working dtype so that the
        # compressed structure is drop-in exact for float64 engines.
        return CompressedBlockTable(elt, loss_dtype=dtype)
    raise ValueError(f"unknown lookup kind {kind!r}; expected one of {LOOKUP_KINDS}")


def build_layer_lookups(
    elts: Sequence[EventLossTable],
    catalog_size: int,
    kind: str = "direct",
    dtype: np.dtype | type = np.float64,
) -> List[LossLookup]:
    """Build one lookup structure per ELT of a layer."""
    return [
        build_lookup(elt, catalog_size=catalog_size, kind=kind, dtype=dtype)
        for elt in elts
    ]


def memory_report(
    elts: Sequence[EventLossTable], catalog_size: int
) -> List[Dict[str, float]]:
    """Memory/access trade-off rows for every structure kind.

    One row per kind with total bytes across the given ELTs and expected
    memory accesses per lookup — the quantified version of the paper's
    Section III argument (direct access: most memory, fewest accesses).
    """
    rows: List[Dict[str, float]] = []
    for kind in LOOKUP_KINDS:
        lookups = build_layer_lookups(elts, catalog_size, kind=kind)
        total_bytes = sum(lk.nbytes for lk in lookups)
        accesses = (
            sum(lk.mean_accesses_per_lookup() for lk in lookups) / len(lookups)
            if lookups
            else 0.0
        )
        rows.append(
            {
                "kind": kind,
                "total_bytes": float(total_bytes),
                "bytes_per_elt": float(total_bytes / max(len(lookups), 1)),
                "accesses_per_lookup": float(accesses),
            }
        )
    return rows
