"""Direct access table: the paper's chosen ELT representation.

A dense loss array indexed by event id over the *whole* catalogue.  Lookup
is a single array read — the fewest possible memory accesses — which is
exactly why the paper picks it despite the memory waste: with a 2,000,000
event catalogue and ~20,000 non-zero losses the table is 99% zeros, and a
layer of 15 ELTs materialises 30,000,000 loss slots.
"""

from __future__ import annotations

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup


class DirectAccessTable(LossLookup):
    """Dense ``losses[event_id]`` array with one access per lookup.

    Parameters
    ----------
    elt:
        Source event loss table.
    catalog_size:
        Size of the event-id address space.  The dense array has
        ``catalog_size + 1`` slots so ids ``0..catalog_size`` index it
        directly; slot 0 (the null/padding event) is always 0.0.
    dtype:
        Loss storage dtype.  ``float64`` by default; the optimised GPU
        engine rebuilds tables with ``float32`` (the paper's
        reduced-precision optimisation).
    """

    kind = "direct"

    def __init__(
        self,
        elt: EventLossTable,
        catalog_size: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        super().__init__(elt)
        if catalog_size < elt.max_event_id:
            raise ValueError(
                f"catalog_size {catalog_size} smaller than ELT's max event id "
                f"{elt.max_event_id}"
            )
        self.catalog_size = int(catalog_size)
        self._table = np.zeros(self.catalog_size + 1, dtype=dtype)
        self._table[elt.event_ids] = elt.losses.astype(dtype)

    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        # Returns the table's own dtype (no float64 upcast): the paper's
        # reduced-precision optimisation only pays off if float32 losses
        # stay float32 through the whole kernel.
        ids = np.asarray(event_ids)
        return self._table[ids]

    @property
    def nbytes(self) -> int:
        return int(self._table.nbytes)

    @property
    def dtype(self) -> np.dtype:
        return self._table.dtype

    @property
    def n_slots(self) -> int:
        return int(self._table.size)

    @property
    def fill_fraction(self) -> float:
        """Fraction of slots holding a non-zero loss (sparsity measure)."""
        return self.n_losses / self.n_slots

    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        # One array read per query, unconditionally — the whole point.
        return 1.0

    def raw_table(self) -> np.ndarray:
        """The dense loss array itself (read-only view).

        Exposed so engines can stage it into (simulated) device global
        memory without a copy through the abstract interface.
        """
        view = self._table.view()
        view.flags.writeable = False
        return view
