"""Combined direct-access table over all ELTs of a layer.

The paper's second data-structure variant (Section III): instead of 15
independent direct access tables, one table whose *row* for event ``e``
holds that event's loss in every ELT, so a whole row can be staged into
GPU shared memory in one cooperative load.  The paper measured this
*slower* than independent tables because threads must first communicate
which rows to fetch; our GPU cost model charges exactly that shared-memory
write traffic, reproducing the paper's finding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.elt import EventLossTable


class CombinedDirectTable:
    """Dense ``(catalog_size + 1, n_elts)`` loss matrix for one layer.

    Row ``e`` holds event ``e``'s loss in each covered ELT (0.0 where the
    event is absent).  Row-major layout so one row — the unit the paper's
    variant stages into shared memory — is contiguous.

    This class deliberately does *not* subclass
    :class:`~repro.lookup.base.LossLookup`: its queries return a matrix
    (one loss per ELT), not a vector.
    """

    kind = "combined"

    def __init__(
        self,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if not elts:
            raise ValueError("combined table needs at least one ELT")
        max_id = max(elt.max_event_id for elt in elts)
        if catalog_size < max_id:
            raise ValueError(
                f"catalog_size {catalog_size} smaller than max event id {max_id}"
            )
        self.catalog_size = int(catalog_size)
        self.elt_ids = tuple(elt.elt_id for elt in elts)
        if len(set(self.elt_ids)) != len(self.elt_ids):
            raise ValueError(f"duplicate ELT ids: {self.elt_ids}")
        self._table = np.zeros(
            (self.catalog_size + 1, len(elts)), dtype=dtype, order="C"
        )
        for col, elt in enumerate(elts):
            self._table[elt.event_ids, col] = elt.losses.astype(dtype)

    @property
    def n_elts(self) -> int:
        return self._table.shape[1]

    def lookup_rows(self, event_ids: np.ndarray) -> np.ndarray:
        """Fetch whole rows: shape ``ids.shape + (n_elts,)`` of losses."""
        ids = np.asarray(event_ids)
        return self._table[ids].astype(np.float64, copy=False)

    def lookup_elt(self, event_ids: np.ndarray, elt_id: int) -> np.ndarray:
        """Single-ELT column view of the same row fetch."""
        try:
            col = self.elt_ids.index(int(elt_id))
        except ValueError:
            raise KeyError(f"ELT {elt_id} not in combined table") from None
        ids = np.asarray(event_ids)
        return self._table[ids, col].astype(np.float64, copy=False)

    @property
    def nbytes(self) -> int:
        return int(self._table.nbytes)

    @property
    def row_nbytes(self) -> int:
        """Bytes fetched per row load (what shared memory must hold)."""
        return int(self._table.shape[1] * self._table.itemsize)

    def mean_accesses_per_lookup(self) -> float:
        """Memory reads per (event, ELT) query.

        A row fetch services all ``n_elts`` per-ELT lookups of one event in
        one contiguous read of ``n_elts`` words, so per (event, ELT) pair
        the read cost is 1 — but the *coordination* cost (threads writing
        the needed event ids to shared memory first) is charged separately
        by the GPU cost model, which is what makes this variant lose.
        """
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CombinedDirectTable(n_elts={self.n_elts}, "
            f"catalog_size={self.catalog_size}, nbytes={self.nbytes})"
        )
