"""Combined and stacked direct-access tables over all ELTs of a layer.

Two layer-wide variants of the direct access table live here:

* :class:`CombinedDirectTable` — the paper's second data-structure variant
  (Section III): instead of 15 independent direct access tables, one table
  whose *row* for event ``e`` holds that event's loss in every ELT, so a
  whole row can be staged into GPU shared memory in one cooperative load.
  The paper measured this *slower* than independent tables because threads
  must first communicate which rows to fetch; our GPU cost model charges
  exactly that shared-memory write traffic, reproducing the paper's
  finding.
* :class:`StackedDirectTable` — the transpose layout,
  ``(n_elts, catalog_size + 1)`` with each *row* one ELT's dense loss
  array.  This is the fused CPU kernel's layout
  (:mod:`repro.core.kernels`): ``table[:, ids]`` services every ELT of the
  layer with **one** gather call over a flat CSR id array, and the per-ELT
  financial terms are stored as column vectors so they broadcast over the
  gathered block in place — no per-ELT temporaries.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple

import numpy as np

from repro.data.elt import EventLossTable


class CombinedDirectTable:
    """Dense ``(catalog_size + 1, n_elts)`` loss matrix for one layer.

    Row ``e`` holds event ``e``'s loss in each covered ELT (0.0 where the
    event is absent).  Row-major layout so one row — the unit the paper's
    variant stages into shared memory — is contiguous.

    This class deliberately does *not* subclass
    :class:`~repro.lookup.base.LossLookup`: its queries return a matrix
    (one loss per ELT), not a vector.
    """

    kind = "combined"

    def __init__(
        self,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if not elts:
            raise ValueError("combined table needs at least one ELT")
        max_id = max(elt.max_event_id for elt in elts)
        if catalog_size < max_id:
            raise ValueError(
                f"catalog_size {catalog_size} smaller than max event id {max_id}"
            )
        self.catalog_size = int(catalog_size)
        self.elt_ids = tuple(elt.elt_id for elt in elts)
        if len(set(self.elt_ids)) != len(self.elt_ids):
            raise ValueError(f"duplicate ELT ids: {self.elt_ids}")
        self._table = np.zeros(
            (self.catalog_size + 1, len(elts)), dtype=dtype, order="C"
        )
        for col, elt in enumerate(elts):
            self._table[elt.event_ids, col] = elt.losses.astype(dtype)

    @property
    def n_elts(self) -> int:
        return self._table.shape[1]

    def lookup_rows(self, event_ids: np.ndarray) -> np.ndarray:
        """Fetch whole rows: shape ``ids.shape + (n_elts,)`` of losses.

        Results carry the table's storage dtype (no float64 upcast).
        """
        ids = np.asarray(event_ids)
        return self._table[ids]

    def lookup_elt(self, event_ids: np.ndarray, elt_id: int) -> np.ndarray:
        """Single-ELT column view of the same row fetch."""
        try:
            col = self.elt_ids.index(int(elt_id))
        except ValueError:
            raise KeyError(f"ELT {elt_id} not in combined table") from None
        ids = np.asarray(event_ids)
        return self._table[ids, col]

    @property
    def nbytes(self) -> int:
        return int(self._table.nbytes)

    @property
    def row_nbytes(self) -> int:
        """Bytes fetched per row load (what shared memory must hold)."""
        return int(self._table.shape[1] * self._table.itemsize)

    def mean_accesses_per_lookup(self) -> float:
        """Memory reads per (event, ELT) query.

        A row fetch services all ``n_elts`` per-ELT lookups of one event in
        one contiguous read of ``n_elts`` words, so per (event, ELT) pair
        the read cost is 1 — but the *coordination* cost (threads writing
        the needed event ids to shared memory first) is charged separately
        by the GPU cost model, which is what makes this variant lose.
        """
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CombinedDirectTable(n_elts={self.n_elts}, "
            f"catalog_size={self.catalog_size}, nbytes={self.nbytes})"
        )


class StackedDirectTable:
    """``(n_elts, catalog_size + 1)`` loss matrix, one ELT per row.

    The fused ragged kernel's layer representation: one gather
    (:meth:`gather`) pulls the loss of *every* covered ELT for a flat
    batch of event ids, and :meth:`apply_terms_inplace` applies each
    ELT's financial terms to its row of the gathered block by
    broadcasting — replacing the dense path's per-ELT
    gather + four-temporary term application.

    Like :class:`CombinedDirectTable` this is deliberately not a
    :class:`~repro.lookup.base.LossLookup` (queries return a matrix, not
    a vector), and like every lookup structure it is frozen after
    construction and safe for concurrent readers.
    """

    kind = "stacked"

    def __init__(
        self,
        elts: Sequence[EventLossTable],
        catalog_size: int,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if not elts:
            raise ValueError("stacked table needs at least one ELT")
        max_id = max(elt.max_event_id for elt in elts)
        if catalog_size < max_id:
            raise ValueError(
                f"catalog_size {catalog_size} smaller than max event id {max_id}"
            )
        self.catalog_size = int(catalog_size)
        self.elt_ids = tuple(elt.elt_id for elt in elts)
        if len(set(self.elt_ids)) != len(self.elt_ids):
            raise ValueError(f"duplicate ELT ids: {self.elt_ids}")
        dt = np.dtype(dtype)
        self._table = np.zeros(
            (len(elts), self.catalog_size + 1), dtype=dt, order="C"
        )
        for row, elt in enumerate(elts):
            self._table[row, elt.event_ids] = elt.losses.astype(dt)
        self.terms = tuple(elt.terms for elt in elts)
        # Per-ELT terms as (n_elts, 1) columns: broadcasting applies each
        # ELT's terms to its own row of a gathered (n_elts, n_ids) block.
        # Stored in the table's dtype so a float32 block runs pure
        # float32 ufunc loops (mixed float32/float64 operands would
        # silently compute every element in double).
        as_col = lambda xs: np.asarray(xs, dtype=np.float64).astype(dt).reshape(
            -1, 1
        )
        self._fx = as_col([t.currency_rate for t in self.terms])
        self._retention = as_col([t.retention for t in self.terms])
        self._limit = as_col([t.limit for t in self.terms])
        self._share = as_col([t.share for t in self.terms])
        self._any_fx = bool(np.any(self._fx != 1.0))
        self._any_retention = bool(np.any(self._retention != 0.0))
        self._any_limit = bool(np.any(np.isfinite(self._limit)))
        self._any_share = bool(np.any(self._share != 1.0))

    # ------------------------------------------------------------------
    @property
    def n_elts(self) -> int:
        return self._table.shape[0]

    @property
    def dtype(self) -> np.dtype:
        return self._table.dtype

    @property
    def nbytes(self) -> int:
        return int(self._table.nbytes)

    @property
    def shape(self) -> Tuple[int, int]:
        return self._table.shape

    # ------------------------------------------------------------------
    def gather(
        self, event_ids: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """One fused gather: gross losses of every ELT for a flat id batch.

        Returns a ``(n_elts, n_ids)`` block in the table's dtype; pass a
        pooled ``out`` buffer of that shape/dtype to avoid allocating.
        """
        ids = np.asarray(event_ids)
        if ids.ndim != 1:
            raise ValueError(f"event_ids must be 1-D, got shape {ids.shape}")
        return np.take(self._table, ids, axis=1, out=out)

    def apply_terms_inplace(self, gross: np.ndarray) -> np.ndarray:
        """Financial terms of every ELT applied to its row, in place.

        Same arithmetic and operation order as
        :meth:`repro.data.elt.ELTFinancialTerms.apply`
        (``share * min(max(l*fx - ret, 0), lim)``), but broadcast over
        the whole gathered block with zero temporaries.  Identity
        components are skipped entirely (losses are non-negative, so
        with no retention the ``max(·, 0)`` clamp is a no-op too).
        """
        if self._any_fx:
            np.multiply(gross, self._fx, out=gross)
        if self._any_retention:
            np.subtract(gross, self._retention, out=gross)
            np.maximum(gross, 0.0, out=gross)
        if self._any_limit:
            np.minimum(gross, self._limit, out=gross)
        if self._any_share:
            np.multiply(gross, self._share, out=gross)
        return gross

    def broadcast_arrays(self):
        """Raw arrays for compiled kernel backends (read-only contract).

        Returns ``(table, fx, retention, limit, share, flags)``: the
        ``(n_elts, catalog + 1)`` loss matrix, the four per-ELT term
        vectors as 1-D arrays in the table's dtype, and the
        ``(any_fx, any_retention, any_limit, any_share)`` identity-skip
        flags — everything a backend needs to replicate
        :meth:`apply_terms_inplace` scalar-wise.  Callers must treat
        the arrays as frozen (they are shared with every concurrent
        reader of this table).
        """
        return (
            self._table,
            self._fx[:, 0],
            self._retention[:, 0],
            self._limit[:, 0],
            self._share[:, 0],
            (
                self._any_fx,
                self._any_retention,
                self._any_limit,
                self._any_share,
            ),
        )

    def mean_accesses_per_lookup(self) -> float:
        # Row-per-ELT layout keeps the direct table's defining property:
        # one array read per (event, ELT) query.
        return 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StackedDirectTable(n_elts={self.n_elts}, "
            f"catalog_size={self.catalog_size}, dtype={self.dtype}, "
            f"nbytes={self.nbytes})"
        )
