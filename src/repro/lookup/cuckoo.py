"""Cuckoo hashing: the constant-worst-case scheme the paper cites.

Pagh & Rodler's cuckoo hashing [15 in the paper] guarantees a key lives in
one of exactly two slots, so a lookup is *at most two* memory accesses —
the best worst case of any compact representation.  The paper still rejects
it for "considerable implementation and run-time performance complexity" on
GPUs; having a real implementation lets the data-structure benchmark put a
number on that trade-off.

Two tables of equal size are used, with independent multiplicative hash
functions; insertion evicts residents back and forth (the "cuckoo" walk)
and rebuilds with fresh hash multipliers if a walk exceeds the bound.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup

_EMPTY = np.int64(-1)
# Pool of odd 64-bit multipliers; rebuilds walk down this list.
_MULTIPLIERS: Tuple[int, ...] = (
    0x9E3779B97F4A7C15,
    0xC2B2AE3D27D4EB4F,
    0x165667B19E3779F9,
    0x27D4EB2F165667C5,
    0x2545F4914F6CDD1D,
    0x9E6C63D0876A9F4D,
    0xBF58476D1CE4E5B9,
    0x94D049BB133111EB,
)


def _hash_with(ids: np.ndarray, mult: int, mask: int) -> np.ndarray:
    with np.errstate(over="ignore"):
        h = ids.astype(np.uint64) * np.uint64(mult)
    return ((h >> np.uint64(29)) & np.uint64(mask)).astype(np.int64)


class CuckooTable(LossLookup):
    """Two-table cuckoo hash with at most two probes per lookup.

    Parameters
    ----------
    elt:
        Source event loss table.
    load_factor:
        Combined fill target across both tables; cuckoo hashing is
        reliable below ~0.5, the default.
    """

    kind = "cuckoo"

    #: eviction-walk bound before declaring a cycle and rehashing
    MAX_KICKS = 500

    def __init__(self, elt: EventLossTable, load_factor: float = 0.45) -> None:
        super().__init__(elt)
        if not 0.0 < load_factor <= 0.5:
            raise ValueError(
                f"cuckoo load_factor must be in (0, 0.5], got {load_factor}"
            )
        self.load_factor = float(load_factor)
        half = 8
        while elt.n_losses / (2 * half) > load_factor:
            half *= 2
        self._half = half
        self._mask = half - 1
        self.n_rebuilds = 0
        self._build(elt.event_ids.astype(np.int64), elt.losses)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, ids: np.ndarray, losses: np.ndarray) -> None:
        for attempt in range(len(_MULTIPLIERS) - 1):
            self._mult1 = _MULTIPLIERS[attempt]
            self._mult2 = _MULTIPLIERS[attempt + 1]
            self._keys = np.full(2 * self._half, _EMPTY, dtype=np.int64)
            self._values = np.zeros(2 * self._half, dtype=np.float64)
            if self._try_insert_all(ids, losses):
                return
            # Cycle detected: grow, advance multipliers and retry.
            self.n_rebuilds += 1
            self._half *= 2
            self._mask = self._half - 1
        raise RuntimeError(
            f"cuckoo build failed after {self.n_rebuilds} rebuilds"
        )

    def _slot1(self, key: int) -> int:
        return int(_hash_with(np.asarray([key]), self._mult1, self._mask)[0])

    def _slot2(self, key: int) -> int:
        # Second table occupies indices [half, 2*half).
        return self._half + int(
            _hash_with(np.asarray([key]), self._mult2, self._mask)[0]
        )

    def _try_insert_all(self, ids: np.ndarray, losses: np.ndarray) -> bool:
        for key, value in zip(ids, losses):
            key = int(key)
            value = float(value)
            # Standard cuckoo walk: place in table 1; if occupied evict the
            # resident into its alternate slot, and so on.
            slot = self._slot1(key)
            for _ in range(self.MAX_KICKS):
                if self._keys[slot] == _EMPTY:
                    self._keys[slot] = key
                    self._values[slot] = value
                    break
                key, self._keys[slot] = int(self._keys[slot]), key
                value, self._values[slot] = float(self._values[slot]), value
                # The evicted key goes to its *other* slot.
                s1, s2 = self._slot1(key), self._slot2(key)
                slot = s2 if slot == s1 else s1
            else:
                return False  # walk exceeded bound → cycle
        return True

    # ------------------------------------------------------------------
    # Lookup: always exactly two (vectorised) probes
    # ------------------------------------------------------------------
    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids, dtype=np.int64)
        flat = ids.ravel()
        out = np.zeros(flat.shape, dtype=np.float64)
        slot1 = _hash_with(flat, self._mult1, self._mask)
        hit1 = self._keys[slot1] == flat
        out[hit1] = self._values[slot1[hit1]]
        slot2 = self._half + _hash_with(flat, self._mult2, self._mask)
        hit2 = (~hit1) & (self._keys[slot2] == flat)
        out[hit2] = self._values[slot2[hit2]]
        return out.reshape(ids.shape)

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(self._keys.nbytes + self._values.nbytes)

    @property
    def size(self) -> int:
        return int(self._keys.size)

    @property
    def fill(self) -> float:
        return self.n_losses / self.size

    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        if event_ids is not None:
            ids = np.asarray(event_ids, dtype=np.int64).ravel()
            if ids.size == 0:
                return 0.0
            slot1 = _hash_with(ids, self._mult1, self._mask)
            hit1 = self._keys[slot1] == ids
            # One probe if found in table 1, two otherwise (hit2 or miss).
            return float(np.where(hit1, 1.0, 2.0).mean())
        # Sparse-ELT lookups are mostly misses → both slots checked.
        return 2.0
