"""Block-compressed ELT lookup: the paper's §VI future work, implemented.

"Future work will aim to investigate the use of compressed
representations of data in memory" — this structure is the standard
design point between the direct access table (1 access, huge memory) and
plain binary search (log₂ n accesses, minimal memory):

* event ids are split into fixed-size **blocks**; each block stores its
  first id uncompressed plus deltas from that base (ids are sorted, and
  at catastrophe-ELT densities consecutive ids are close, so the deltas
  fit 16 bits — the constructor falls back to 32-bit deltas when any
  block's span requires it);
* a lookup binary-searches the per-block base array (log₂(n/B) accesses
  over a structure that fits in cache), then searches the one block's
  deltas — a single contiguous, SIMD-friendly read.

Memory is ~6 bytes per loss (2-byte delta + 4-byte float loss) versus 12
for the sorted table and ``8 × catalogue / n`` for the direct table;
accesses are ``log₂(n/B) + 1`` block-reads.  The DS-TABLE benchmark
quantifies where it sits on the paper's trade-off curve.
"""

from __future__ import annotations

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup
from repro.utils.validation import check_positive


class CompressedBlockTable(LossLookup):
    """Delta-compressed, block-indexed ELT lookup.

    Parameters
    ----------
    elt:
        Source event loss table.
    block_size:
        Ids per block (power of two recommended; default 64).
    loss_dtype:
        Stored loss precision (``float32`` default — compression is the
        point of this structure).
    """

    kind = "compressed"

    def __init__(
        self,
        elt: EventLossTable,
        block_size: int = 64,
        loss_dtype: np.dtype | type = np.float32,
    ) -> None:
        super().__init__(elt)
        check_positive("block_size", block_size)
        self.block_size = int(block_size)
        ids = elt.event_ids.astype(np.int64)
        n = ids.size
        self._n = n
        self.n_blocks = -(-n // self.block_size) if n else 0

        if n:
            block_starts = np.arange(self.n_blocks) * self.block_size
            self._block_base = ids[block_starts].copy()
            # Delta of every id from its block's base.
            bases_per_id = np.repeat(
                self._block_base,
                np.diff(np.append(block_starts, n)),
            )
            deltas = ids - bases_per_id
            max_delta = int(deltas.max()) if deltas.size else 0
            delta_dtype = (
                np.uint16 if max_delta <= np.iinfo(np.uint16).max else np.uint32
            )
            self._deltas = deltas.astype(delta_dtype)
        else:
            self._block_base = np.empty(0, dtype=np.int64)
            self._deltas = np.empty(0, dtype=np.uint16)
        self._losses = elt.losses.astype(loss_dtype)

    # ------------------------------------------------------------------
    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        # Results carry the stored loss dtype (no float64 upcast) so the
        # reduced-precision path stays reduced end to end.
        queries = np.asarray(event_ids, dtype=np.int64)
        flat = queries.ravel()
        out = np.zeros(flat.shape, dtype=self._losses.dtype)
        if self._n == 0 or flat.size == 0:
            return out.reshape(queries.shape)
        # Rightmost block whose base is <= query.
        block = np.searchsorted(self._block_base, flat, side="right") - 1
        valid = np.flatnonzero(block >= 0)
        if valid.size == 0:
            return out.reshape(queries.shape)
        blocks_v = block[valid]
        # Candidate position via a search over per-block deltas: since
        # every block is short (block_size) and deltas are sorted within
        # it, reconstruct the candidate window and search vectorised by
        # grouping queries per block.
        order = np.argsort(blocks_v, kind="stable")
        valid_sorted = valid[order]
        blocks_sorted = blocks_v[order]
        boundaries = np.flatnonzero(np.diff(blocks_sorted)) + 1
        for group in np.split(np.arange(valid_sorted.size), boundaries):
            if group.size == 0:
                continue
            b = int(blocks_sorted[group[0]])
            lo = b * self.block_size
            hi = min(lo + self.block_size, self._n)
            ids_here = self._block_base[b] + self._deltas[lo:hi].astype(
                np.int64
            )
            idx = valid_sorted[group]
            q = flat[idx]
            pos = np.searchsorted(ids_here, q)
            pos_clipped = np.minimum(pos, ids_here.size - 1)
            hit = ids_here[pos_clipped] == q
            out[idx[hit]] = self._losses[lo + pos_clipped[hit]]
        return out.reshape(queries.shape)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(
            self._block_base.nbytes + self._deltas.nbytes + self._losses.nbytes
        )

    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        # Binary search over block bases + one contiguous block read.
        if self.n_blocks <= 1:
            return 1.0
        return float(np.log2(self.n_blocks) + 1.0)

    @property
    def delta_bits(self) -> int:
        """Bits per stored delta (16 at ELT densities, 32 fallback)."""
        return int(self._deltas.dtype.itemsize * 8)

    @property
    def compression_ratio(self) -> float:
        """Sorted-pairs bytes over compressed bytes (>1 = smaller)."""
        sparse = self._n * (4 + 8)
        return sparse / self.nbytes if self.nbytes else 1.0
