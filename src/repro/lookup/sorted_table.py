"""Sorted-pairs table with binary-search lookup.

The compact representation the paper contrasts against the direct access
table: the ELT's ``(event_id, loss)`` pairs kept sorted by id, queried with
binary search — O(log n) memory accesses per lookup instead of one, but
only ``12 bytes x n_losses`` of memory instead of ``8 bytes x catalogue``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup


class SortedLookupTable(LossLookup):
    """Binary search over the ELT's sorted ``(event_id, loss)`` arrays."""

    kind = "sorted"

    def __init__(self, elt: EventLossTable) -> None:
        super().__init__(elt)
        # EventLossTable guarantees strictly increasing ids already.
        self._ids = elt.event_ids.copy()
        self._losses = elt.losses.copy()

    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids)
        out = np.zeros(ids.shape, dtype=np.float64)
        if self._ids.size == 0:
            return out
        pos = np.searchsorted(self._ids, ids)
        pos_clipped = np.minimum(pos, self._ids.size - 1)
        hit = self._ids[pos_clipped] == ids
        out[hit] = self._losses[pos_clipped[hit]]
        return out

    @property
    def nbytes(self) -> int:
        return int(self._ids.nbytes + self._losses.nbytes)

    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        # Binary search touches ~log2(n)+1 id slots per query (plus the
        # loss read on a hit, which we fold into the +1); independent of
        # the queried ids.
        n = max(self.n_losses, 1)
        return math.log2(n) + 1.0 if n > 1 else 1.0
