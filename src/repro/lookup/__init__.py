"""ELT lookup structures.

The paper's key implementation decision (Section III) is how to represent
an Event Loss Table for fast random key lookup:

* :class:`~repro.lookup.direct.DirectAccessTable` — the paper's choice: a
  dense loss array over the whole event catalogue.  Exactly **one memory
  access per lookup** at the cost of extreme sparsity (2M slots for ~20K
  non-zero losses; 15 ELTs → 30M event-loss pairs in memory).
* :class:`~repro.lookup.sorted_table.SortedLookupTable` — the compact
  alternative with O(log n) binary search.
* :class:`~repro.lookup.hashtable.OpenAddressingTable` — expected O(1)
  linear-probing hash table (expected ~1/(1-α) probes at load factor α).
* :class:`~repro.lookup.cuckoo.CuckooTable` — the constant-worst-case
  hashing scheme the paper cites (Pagh & Rodler): at most two probes.
* :class:`~repro.lookup.combined.CombinedDirectTable` — the paper's second
  design variant where the 15 ELTs of a layer form one combined table and
  whole rows are fetched at a time.
* :class:`~repro.lookup.compressed.CompressedBlockTable` — the paper's §VI
  future work: a delta-compressed, block-indexed representation sitting
  between the direct table and binary search on both axes.

Every structure maps the null event id (0) and any absent id to a loss of
0.0, and reports its memory footprint and per-lookup memory-access count —
the two quantities the paper's analysis (and our GPU cost model) trade off.
"""

from repro.lookup.base import LossLookup
from repro.lookup.direct import DirectAccessTable
from repro.lookup.sorted_table import SortedLookupTable
from repro.lookup.hashtable import OpenAddressingTable
from repro.lookup.cuckoo import CuckooTable
from repro.lookup.combined import CombinedDirectTable, StackedDirectTable
from repro.lookup.compressed import CompressedBlockTable
from repro.lookup.factory import (
    LOOKUP_KINDS,
    LookupCache,
    build_lookup,
    build_layer_lookups,
    build_stacked_table,
    cached_layer_lookups,
    clear_lookup_cache,
    get_lookup_cache,
    memory_report,
)

__all__ = [
    "LossLookup",
    "DirectAccessTable",
    "SortedLookupTable",
    "OpenAddressingTable",
    "CuckooTable",
    "CombinedDirectTable",
    "StackedDirectTable",
    "CompressedBlockTable",
    "LOOKUP_KINDS",
    "LookupCache",
    "build_lookup",
    "build_layer_lookups",
    "build_stacked_table",
    "cached_layer_lookups",
    "clear_lookup_cache",
    "get_lookup_cache",
    "memory_report",
]
