"""Abstract interface of an ELT lookup structure."""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.data.elt import EventLossTable


class LossLookup(abc.ABC):
    """Event id → loss mapping supporting vectorised random lookup.

    Contract (relied on by every engine and property-tested):

    * ``lookup(ids)`` returns losses elementwise in the structure's own
      storage dtype (``float64`` unless built with a reduced precision —
      a float32 table yields float32 results, so the paper's
      reduced-precision path never silently upcasts);
    * absent ids — including the reserved null id 0 used for YET padding —
      yield exactly ``0.0``;
    * ``lookup`` never mutates its input and is safe to call concurrently
      from multiple threads (structures are frozen after construction);
    * ``mean_accesses_per_lookup(ids)`` reports how many memory reads the
      structure performs per query, the quantity the paper's direct-access
      argument and our GPU cost model are built on.
    """

    #: short registry name, set by subclasses (e.g. ``"direct"``).
    kind: str = "abstract"

    def __init__(self, elt: EventLossTable) -> None:
        self.elt_id = elt.elt_id
        self.n_losses = elt.n_losses
        self.terms = elt.terms

    # ------------------------------------------------------------------
    # Core mapping
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        """Vectorised loss lookup; absent ids map to 0.0."""

    def lookup_scalar(self, event_id: int) -> float:
        """Scalar convenience wrapper over :meth:`lookup`."""
        return float(self.lookup(np.asarray([event_id], dtype=np.int64))[0])

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def nbytes(self) -> int:
        """Memory footprint of the structure's arrays in bytes."""

    @abc.abstractmethod
    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        """Expected memory reads per query.

        If ``event_ids`` is given, the answer is exact for that query batch
        (e.g. actual probe counts); otherwise it is the structure's
        expected value.
        """

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Summary row used by memory/benchmark reports."""
        return {
            "kind": self.kind,
            "elt_id": self.elt_id,
            "n_losses": self.n_losses,
            "nbytes": self.nbytes,
            "accesses_per_lookup": self.mean_accesses_per_lookup(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(elt_id={self.elt_id}, "
            f"n_losses={self.n_losses}, nbytes={self.nbytes})"
        )
