"""Open-addressing hash table with linear probing.

The "constant-time space-efficient hashing" family the paper weighs
against the direct access table.  Expected probes per lookup at load
factor α are ~(1 + 1/(1-α))/2 for hits and higher for misses, so on a GPU
each lookup turns into a small, *data-dependent* number of uncoalesced
global-memory reads — the run-time complexity the paper declines to pay.

The probe loop is vectorised: each round advances only the still-active
queries, so a batch lookup costs O(max probe length) numpy passes.
"""

from __future__ import annotations

import numpy as np

from repro.data.elt import EventLossTable
from repro.lookup.base import LossLookup

_EMPTY = np.int64(-1)
# Knuth multiplicative hashing constant (golden-ratio based).
_HASH_MULT = np.uint64(0x9E3779B97F4A7C15)


def _hash_ids(ids: np.ndarray, mask: int) -> np.ndarray:
    """Multiplicative hash of int ids into ``[0, mask]`` (mask = size-1)."""
    with np.errstate(over="ignore"):
        h = ids.astype(np.uint64) * _HASH_MULT
    return ((h >> np.uint64(32)) & np.uint64(mask)).astype(np.int64)


class OpenAddressingTable(LossLookup):
    """Linear-probing hash table of ``(event_id, loss)`` pairs.

    Parameters
    ----------
    elt:
        Source event loss table.
    load_factor:
        Target fill fraction; the table size is the next power of two with
        fill at or below this.  Lower values trade memory for fewer probes.
    """

    kind = "hash"

    def __init__(self, elt: EventLossTable, load_factor: float = 0.5) -> None:
        super().__init__(elt)
        if not 0.0 < load_factor < 1.0:
            raise ValueError(f"load_factor must be in (0, 1), got {load_factor}")
        self.load_factor = float(load_factor)
        size = 8
        while elt.n_losses / size > load_factor:
            size *= 2
        self._mask = size - 1
        self._keys = np.full(size, _EMPTY, dtype=np.int64)
        self._values = np.zeros(size, dtype=np.float64)
        self._max_probe = 0
        self._bulk_insert(elt.event_ids.astype(np.int64), elt.losses)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _bulk_insert(self, ids: np.ndarray, losses: np.ndarray) -> None:
        """Insert all pairs; scalar loop is fine (construction is one-off)."""
        for event_id, loss in zip(ids, losses):
            idx = int(_hash_ids(np.asarray([event_id]), self._mask)[0])
            probes = 1
            while self._keys[idx] != _EMPTY:
                if self._keys[idx] == event_id:
                    raise ValueError(f"duplicate key {event_id} in hash insert")
                idx = (idx + 1) & self._mask
                probes += 1
                if probes > self._keys.size:
                    raise RuntimeError("hash table full during insert")
            self._keys[idx] = event_id
            self._values[idx] = loss
            self._max_probe = max(self._max_probe, probes)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def lookup(self, event_ids: np.ndarray) -> np.ndarray:
        ids = np.asarray(event_ids, dtype=np.int64)
        flat = ids.ravel()
        out = np.zeros(flat.shape, dtype=np.float64)
        idx = _hash_ids(flat, self._mask)
        active = np.ones(flat.shape, dtype=bool)
        # Linear probing: every surviving query advances one slot per
        # round.  Bounded by the longest probe sequence seen at insert.
        for _ in range(self._max_probe + 1):
            if not active.any():
                break
            slots = idx[active]
            keys_here = self._keys[slots]
            queried = flat[active]
            hit = keys_here == queried
            miss = keys_here == _EMPTY
            # Record hits.
            active_indices = np.flatnonzero(active)
            out[active_indices[hit]] = self._values[slots[hit]]
            # Hits and definite misses retire; the rest probe onward.
            still = ~(hit | miss)
            idx[active_indices] = (slots + 1) & self._mask
            active[active_indices[~still]] = False
        return out.reshape(ids.shape)

    def probe_counts(self, event_ids: np.ndarray) -> np.ndarray:
        """Exact probes per query (for cost models and the DS benchmark)."""
        ids = np.asarray(event_ids, dtype=np.int64).ravel()
        counts = np.zeros(ids.shape, dtype=np.int64)
        idx = _hash_ids(ids, self._mask)
        active = np.ones(ids.shape, dtype=bool)
        for _ in range(self._max_probe + 1):
            if not active.any():
                break
            counts[active] += 1
            slots = idx[active]
            keys_here = self._keys[slots]
            queried = ids[active]
            done = (keys_here == queried) | (keys_here == _EMPTY)
            active_indices = np.flatnonzero(active)
            idx[active_indices] = (slots + 1) & self._mask
            active[active_indices[done]] = False
        return counts

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return int(self._keys.nbytes + self._values.nbytes)

    @property
    def size(self) -> int:
        return int(self._keys.size)

    @property
    def fill(self) -> float:
        return self.n_losses / self.size

    def mean_accesses_per_lookup(self, event_ids: np.ndarray | None = None) -> float:
        if event_ids is not None:
            counts = self.probe_counts(np.asarray(event_ids))
            return float(counts.mean()) if counts.size else 0.0
        # Expected probes for an unsuccessful search under linear probing
        # (Knuth): (1 + 1/(1-α)^2)/2 — most YET lookups miss (sparse ELTs).
        alpha = self.fill
        return 0.5 * (1.0 + 1.0 / (1.0 - alpha) ** 2)
