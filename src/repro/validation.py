"""Cross-engine validation: the deployment-time correctness harness.

A downstream user switching engines (say multicore → multi-GPU for
production pricing) needs evidence the numbers are identical.  This
module runs any set of engines on one workload, compares every YLT
against the scalar Algorithm 1 reference, and produces a structured
report — the same check the test suite applies, packaged as a public
API.

Float64 engines must match the reference to tight tolerance; engines
using the reduced-precision optimisation (float32 tables/accumulation)
get a scale-aware band.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.core.algorithm import aggregate_risk_analysis_reference
from repro.data.generator import Workload
from repro.data.ylt import YearLossTable
from repro.engines.registry import available_engines, create_engine

#: engines whose results are exact in float64
EXACT_ENGINES = ("sequential", "multicore", "gpu")
#: engines using the paper's reduced-precision optimisation by default
FLOAT32_ENGINES = ("gpu-optimized", "multi-gpu")


@dataclass
class EngineCheck:
    """Comparison of one engine's YLT against the reference."""

    engine: str
    passed: bool
    max_abs_error: float
    max_rel_error: float
    tolerance_rel: float
    wall_seconds: float

    def summary(self) -> str:
        status = "OK " if self.passed else "FAIL"
        return (
            f"[{status}] {self.engine:14s} max_abs={self.max_abs_error:.3e} "
            f"max_rel={self.max_rel_error:.3e} "
            f"(tol {self.tolerance_rel:g}) in {self.wall_seconds:.2f}s"
        )


@dataclass
class ValidationReport:
    """Outcome of a cross-engine validation run."""

    n_trials: int
    n_layers: int
    checks: List[EngineCheck] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> List[str]:
        return [c.engine for c in self.checks if not c.passed]

    def summary(self) -> str:
        lines = [
            f"validated {len(self.checks)} engine(s) on "
            f"{self.n_trials} trials x {self.n_layers} layer(s):"
        ]
        lines.extend(check.summary() for check in self.checks)
        return "\n".join(lines)


def _errors(reference: YearLossTable, ylt: YearLossTable) -> tuple[float, float]:
    diff = np.abs(reference.losses - ylt.losses)
    max_abs = float(diff.max()) if diff.size else 0.0
    scale = np.maximum(np.abs(reference.losses), 1.0)
    max_rel = float((diff / scale).max()) if diff.size else 0.0
    return max_abs, max_rel


def verify_engines(
    workload: Workload,
    engines: Sequence[str] | None = None,
    exact_rtol: float = 1e-9,
    float32_rtol: float = 1e-4,
    engine_options: Dict[str, object] | None = None,
) -> ValidationReport:
    """Run engines on ``workload`` and compare against the reference.

    Parameters
    ----------
    workload:
        The problem instance (keep it small: the scalar reference is
        pure Python).
    engines:
        Engine names to validate; defaults to all non-reference engines.
    exact_rtol / float32_rtol:
        Relative tolerance bands for float64 and reduced-precision
        engines respectively.
    engine_options:
        Extra keyword options forwarded to every engine constructor.
    """
    names = tuple(engines) if engines else tuple(
        name for name in available_engines() if name != "reference"
    )
    options = dict(engine_options or {})
    reference = aggregate_risk_analysis_reference(
        workload.yet, workload.portfolio
    )
    report = ValidationReport(
        n_trials=workload.yet.n_trials,
        n_layers=workload.portfolio.n_layers,
    )
    for name in names:
        engine = create_engine(name, **options)
        result = engine.run(
            workload.yet, workload.portfolio, workload.catalog.n_events
        )
        max_abs, max_rel = _errors(reference, result.ylt)
        tolerance = exact_rtol if name in EXACT_ENGINES else float32_rtol
        report.checks.append(
            EngineCheck(
                engine=name,
                passed=max_rel <= tolerance,
                max_abs_error=max_abs,
                max_rel_error=max_rel,
                tolerance_rel=tolerance,
                wall_seconds=result.wall_seconds,
            )
        )
    return report


def assert_engines_agree(
    workload: Workload, engines: Sequence[str] | None = None, **kwargs
) -> ValidationReport:
    """:func:`verify_engines` that raises ``AssertionError`` on failure."""
    report = verify_engines(workload, engines=engines, **kwargs)
    if not report.all_passed:
        raise AssertionError(
            f"engine validation failed for {report.failures}:\n"
            f"{report.summary()}"
        )
    return report
