"""Term-application algebra: steps 2–4 of Algorithm 1.

The paper's per-trial pipeline after losses are combined across ELTs:

* **Occurrence terms** (lines 15–17): per event occurrence,
  ``lox_d ← min(max(lox_d − T_OccR, 0), T_OccL)`` — each occurrence is
  treated independently of every other.
* **Cumulative sum** (lines 18–20): ``lox_d ← Σ_{i<=d} lox_i`` over the
  trial's time-ordered events.
* **Aggregate terms** (lines 21–23): the same retention/limit clamp
  applied to the *cumulative* series.
* **Backward difference and sum** (lines 24–29): ``lox_d ← lox_d −
  lox_{d−1}`` then ``lr = Σ lox_d``.

Lines 24–29 telescope: the sum of backward differences of a series is its
final element, so the trial loss equals the clamped final cumulative sum.
:func:`trial_loss_from_occurrence_losses` exploits that identity; the
scalar reference executes the literal steps; property tests pin the two to
each other.  (The per-event differenced series itself is still meaningful —
it is the *incremental recovery* each occurrence adds once aggregate terms
bind — and is exposed by :func:`aggregate_recovery_increments` because the
paper's Algorithm 1 computes it explicitly.)
"""

from __future__ import annotations

import math

import numpy as np

from repro.data.layer import LayerTerms


def apply_occurrence_terms(
    losses: np.ndarray, terms: LayerTerms, out: np.ndarray | None = None
) -> np.ndarray:
    """Lines 15–17: clamp each occurrence loss by retention/limit.

    Works on any shape (engines pass ``(n_trials, n_events)`` blocks).
    ``out`` enables in-place operation to avoid temporaries in hot loops.
    """
    arr = np.asarray(losses)
    if out is None:
        out = np.empty_like(arr)
    np.subtract(arr, terms.occ_retention, out=out)
    np.maximum(out, 0.0, out=out)
    if math.isfinite(terms.occ_limit):
        np.minimum(out, terms.occ_limit, out=out)
    return out


def apply_aggregate_terms_cumulative(
    cumulative: np.ndarray, terms: LayerTerms, out: np.ndarray | None = None
) -> np.ndarray:
    """Lines 21–23: clamp a cumulative-loss series by aggregate terms."""
    arr = np.asarray(cumulative)
    if out is None:
        out = np.empty_like(arr)
    np.subtract(arr, terms.agg_retention, out=out)
    np.maximum(out, 0.0, out=out)
    if math.isfinite(terms.agg_limit):
        np.minimum(out, terms.agg_limit, out=out)
    return out


def aggregate_recovery_increments(
    occurrence_losses: np.ndarray, terms: LayerTerms
) -> np.ndarray:
    """Lines 18–26 on one trial: the per-event incremental recoveries.

    Input is the trial's occurrence-net loss sequence (time order); output
    is the differenced clamped cumulative series — how much each event adds
    to the year loss after aggregate terms.  Non-negative, and sums to the
    trial loss (the telescoping identity, property-tested).
    """
    seq = np.asarray(occurrence_losses, dtype=np.float64)
    if seq.ndim != 1:
        raise ValueError(f"expected one trial (1-D), got shape {seq.shape}")
    cumulative = np.cumsum(seq)
    clamped = apply_aggregate_terms_cumulative(cumulative, terms)
    return np.diff(clamped, prepend=0.0)


def trial_loss_from_occurrence_losses(
    occurrence_losses: np.ndarray, terms: LayerTerms
) -> np.ndarray:
    """Steps 3+4 fused over a ``(n_trials, n_events)`` block.

    Applies occurrence terms elementwise, then uses the telescoping
    identity: the trial loss is the aggregate clamp of the trial's *total*
    occurrence loss.  Returns a 1-D ``(n_trials,)`` year-loss vector.

    The clamp is monotone, so the maximum of the clamped cumulative series
    is attained at the final (total) value — no per-event cumulative sum is
    needed, which is what makes the optimised engines' chunked running-sum
    formulation (:mod:`repro.engines.gpu_optimized`) equivalent.
    """
    block = np.asarray(occurrence_losses)
    if block.ndim == 1:
        block = block.reshape(1, -1)
    occ = apply_occurrence_terms(block, terms)
    totals = occ.sum(axis=1)
    return apply_aggregate_terms_cumulative(totals, terms)


# ----------------------------------------------------------------------
# Scalar versions used by the line-by-line reference implementation
# ----------------------------------------------------------------------
def occurrence_term_scalar(loss: float, terms: LayerTerms) -> float:
    """Scalar line 16: ``min(max(l − T_OccR, 0), T_OccL)``."""
    value = max(loss - terms.occ_retention, 0.0)
    if math.isfinite(terms.occ_limit):
        value = min(value, terms.occ_limit)
    return value


def aggregate_term_scalar(cumulative: float, terms: LayerTerms) -> float:
    """Scalar line 22: ``min(max(c − T_AggR, 0), T_AggL)``."""
    value = max(cumulative - terms.agg_retention, 0.0)
    if math.isfinite(terms.agg_limit):
        value = min(value, terms.agg_limit)
    return value
