"""The vectorised trial-batch kernel — the shared numerical core.

All five implementations in :mod:`repro.engines` perform the same four
steps per (layer, trial); they differ in *where the data lives and how the
work is scheduled*.  This module provides the step arithmetic on a dense
``(n_trials, n_events)`` block so every engine computes identical numbers
and only the orchestration (threading, chunking, simulated devices)
differs — mirroring how the paper's C++/OpenMP/CUDA variants share one
kernel body.

Activities are charged to an :class:`~repro.utils.timer.ActivityProfile`
with the paper's Figure 6 categories: event fetch, loss lookup, financial
terms, layer terms.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.terms import (
    apply_aggregate_terms_cumulative,
    apply_occurrence_terms,
)
from repro.data.layer import LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.lookup.base import LossLookup
from repro.lookup.factory import cached_layer_lookups
from repro.utils.timer import (
    ACTIVITY_FETCH,
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_LOOKUP,
    ActivityProfile,
)


def layer_trial_batch(
    event_matrix: np.ndarray,
    lookups: Sequence[LossLookup],
    layer_terms: LayerTerms,
    profile: ActivityProfile | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Steps 1–4 of Algorithm 1 over a dense trial block for one layer.

    Parameters
    ----------
    event_matrix:
        ``(n_trials, n_events)`` event-id block (0 = padding).
    lookups:
        One lookup structure per covered ELT; each carries its ELT's
        financial terms.
    layer_terms:
        The layer's occurrence/aggregate XL terms.
    profile:
        Optional activity profile to charge wall-clock time against.
    dtype:
        Working precision of the accumulation (``float32`` reproduces the
        paper's reduced-precision GPU optimisation).

    Returns
    -------
    numpy.ndarray
        1-D ``(n_trials,)`` year losses in ``float64``.
    """
    profile = profile if profile is not None else ActivityProfile()
    matrix = np.asarray(event_matrix)
    if matrix.ndim != 2:
        raise ValueError(f"event_matrix must be 2-D, got shape {matrix.shape}")
    work_dtype = np.dtype(dtype)

    # Steps 1+2 (lines 4–14): per-occurrence losses, combined across ELTs.
    combined = np.zeros(matrix.shape, dtype=work_dtype)
    for lookup in lookups:
        with profile.track(ACTIVITY_LOOKUP):
            gross = lookup.lookup(matrix)
        with profile.track(ACTIVITY_FINANCIAL):
            net = lookup.terms.apply(gross)
            combined += net.astype(work_dtype, copy=False)

    # Steps 3+4 (lines 15–29): occurrence terms, cumulative aggregation.
    with profile.track(ACTIVITY_LAYER):
        occ = apply_occurrence_terms(combined, layer_terms, out=combined)
        totals = occ.sum(axis=1, dtype=np.float64)
        year = apply_aggregate_terms_cumulative(totals, layer_terms)
    return year


def run_vectorized(
    yet: YearEventTable,
    portfolio: Portfolio,
    catalog_size: int,
    lookup_kind: str = "direct",
    dtype: np.dtype | type = np.float64,
    batch_trials: int | None = None,
    profile: ActivityProfile | None = None,
    secondary=None,
    secondary_seed=None,
) -> YearLossTable:
    """Full analysis with the vectorised kernel, batched over trials.

    ``batch_trials`` bounds peak memory: the dense event block and the
    per-ELT gather results are ``batch x max_events`` arrays.  The default
    (all trials in one batch) is fastest when it fits.

    ``secondary`` (a :class:`~repro.core.secondary.SecondaryUncertainty`)
    switches every batch to the secondary-uncertainty kernel.  Each
    (layer, batch) gets a seed hashed from ``secondary_seed``, so a run
    is reproducible for a fixed decomposition — but unlike the ragged
    path's counter-based streams, dense draws are *not* invariant to the
    batch size.
    """
    profile = profile if profile is not None else ActivityProfile()
    n_trials = yet.n_trials
    batch = n_trials if batch_trials is None else max(1, int(batch_trials))
    base_seed = None
    if secondary is not None:
        from repro.core.secondary import resolve_secondary_seed

        base_seed = resolve_secondary_seed(secondary_seed)

    per_layer: dict[int, np.ndarray] = {}
    for layer in portfolio.layers:
        # Shared cache: layers (and repeated runs) with the same ELT
        # objects reuse one build instead of rebuilding per layer.
        with profile.track(ACTIVITY_FETCH):
            lookups = cached_layer_lookups(
                portfolio.elts_of(layer),
                catalog_size=catalog_size,
                kind=lookup_kind,
                dtype=dtype,
            )
        out = np.empty(n_trials, dtype=np.float64)
        for start in range(0, n_trials, batch):
            stop = min(start + batch, n_trials)
            chunk = yet.slice_trials(start, stop)
            with profile.track(ACTIVITY_FETCH):
                dense = chunk.to_dense()
            if secondary is not None:
                from repro.core.secondary import layer_trial_batch_secondary
                from repro.utils.rng import stable_hash_seed

                out[start:stop] = layer_trial_batch_secondary(
                    dense,
                    lookups,
                    layer.terms,
                    secondary,
                    seed=stable_hash_seed(
                        base_seed, "dense-secondary", layer.layer_id, start
                    ),
                    profile=profile,
                    dtype=dtype,
                )
            else:
                out[start:stop] = layer_trial_batch(
                    dense,
                    lookups,
                    layer.terms,
                    profile=profile,
                    dtype=dtype,
                )
        per_layer[layer.layer_id] = out
    return YearLossTable.from_dict(per_layer)
