"""Line-by-line scalar reference of Algorithm 1.

This module is the correctness oracle: it transcribes the paper's
pseudocode (lines 1–32) as literally as Python allows — explicit loops over
layers, trials, ELTs and events, with every intermediate array the
pseudocode names (``x``, ``lx``, ``lox``, ``lr``).  Every optimised engine
must reproduce its YLT bit-for-bit up to floating-point tolerance; the
equivalence is enforced by integration and property tests.

It is intentionally slow (pure Python): use it only on test-sized inputs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.terms import aggregate_term_scalar, occurrence_term_scalar
from repro.data.layer import Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable


def aggregate_risk_analysis_reference(
    yet: YearEventTable, portfolio: Portfolio
) -> YearLossTable:
    """Run Algorithm 1 exactly as written (procedure ARA, lines 1–32).

    Parameters
    ----------
    yet:
        The Year Event Table (input 1).
    portfolio:
        Supplies the ELTs (input 2) and Layers (input 3).

    Returns
    -------
    YearLossTable
        One aggregate (year) loss per layer per trial.
    """
    per_layer: Dict[int, np.ndarray] = {}

    for layer in portfolio.layers:  # line 2: for all a ∈ L
        elts = portfolio.elts_of(layer)
        # Pre-fetch each covered ELT as a dict: the reference uses plain
        # key-value lookup semantics, independent of the optimised
        # lookup structures it validates.
        elt_dicts: List[Dict[int, float]] = [elt.to_dict() for elt in elts]
        terms = layer.terms
        trial_losses = np.zeros(yet.n_trials, dtype=np.float64)

        for t in range(yet.n_trials):  # line 3: for all b ∈ YET
            event_ids, _timestamps = yet.trial(t)
            k = event_ids.size

            # Combined loss per event occurrence, accumulated across ELTs
            # (lines 4–14).  lox_d in the pseudocode.
            lox = [0.0] * k
            for elt, elt_dict in zip(elts, elt_dicts):  # line 4: c ∈ EL
                # Line 5–7: look up each event of the trial in this ELT.
                x = [elt_dict.get(int(event_id), 0.0) for event_id in event_ids]
                # Line 8–10: apply the ELT's financial terms per event loss.
                lx = [elt.terms.apply_scalar(loss) for loss in x]
                # Line 11–13: accumulate across ELTs into one loss/event.
                for d in range(k):
                    lox[d] = lox[d] + lx[d]

            # Line 15–17: occurrence terms per event occurrence.
            for d in range(k):
                lox[d] = occurrence_term_scalar(lox[d], terms)

            # Line 18–20: running cumulative sum over the ordered events.
            for d in range(1, k):
                lox[d] = lox[d] + lox[d - 1]

            # Line 21–23: aggregate terms on the cumulative series.
            for d in range(k):
                lox[d] = aggregate_term_scalar(lox[d], terms)

            # Line 24–26: backward difference (lox_{-1} treated as 0).
            previous = 0.0
            for d in range(k):
                current = lox[d]
                lox[d] = current - previous
                previous = current

            # Line 27–29: the trial (year) loss lr.
            lr = 0.0
            for d in range(k):
                lr = lr + lox[d]
            trial_losses[t] = lr

        per_layer[layer.layer_id] = trial_losses

    return YearLossTable.from_dict(per_layer)
