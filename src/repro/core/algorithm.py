"""Line-by-line scalar reference of Algorithm 1.

This module is the correctness oracle: it transcribes the paper's
pseudocode (lines 1–32) as literally as Python allows — explicit loops over
layers, trials, ELTs and events, with every intermediate array the
pseudocode names (``x``, ``lx``, ``lox``, ``lr``).  Every optimised engine
must reproduce its YLT bit-for-bit up to floating-point tolerance; the
equivalence is enforced by integration and property tests.

Secondary uncertainty is supported end to end: the scalar path consumes
the *same* counter-based multipliers the fused ragged kernel samples
(:meth:`~repro.core.secondary.SecondaryUncertainty.multipliers_for_span`,
addressed by global occurrence index), scaling each per-(occurrence, ELT)
gross loss before the ELT's financial terms — so a seeded secondary run
can be cross-checked against the oracle, not merely validated
statistically.

It is intentionally slow (pure Python): use it only on test-sized inputs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.terms import aggregate_term_scalar, occurrence_term_scalar
from repro.data.layer import Layer, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable


def reference_layer_losses(
    yet: YearEventTable,
    portfolio: Portfolio,
    layer: Layer,
    trial_start: int = 0,
    trial_stop: int | None = None,
    secondary=None,
    base_seed: int = 0,
) -> np.ndarray:
    """Scalar Algorithm 1 for one layer over trials ``[start, stop)``.

    The per-task unit of the plan-driven :class:`~repro.engines.
    sequential.ReferenceEngine`: trial and occurrence indices are global,
    so any decomposition reproduces the whole-run result exactly.

    ``secondary`` (with ``base_seed``, the resolved secondary seed)
    scales each per-(occurrence, ELT) loss by the same mean-1 Beta
    multiplier the fused kernels draw — addressed by
    ``(layer stream key, global occurrence index, ELT row)``.
    """
    trial_stop = yet.n_trials if trial_stop is None else trial_stop
    if not 0 <= trial_start <= trial_stop <= yet.n_trials:
        raise IndexError(
            f"invalid trial range [{trial_start}, {trial_stop}) "
            f"of {yet.n_trials}"
        )
    elts = portfolio.elts_of(layer)
    # Pre-fetch each covered ELT as a dict: the reference uses plain
    # key-value lookup semantics, independent of the optimised
    # lookup structures it validates.
    elt_dicts: List[Dict[int, float]] = [elt.to_dict() for elt in elts]
    terms = layer.terms
    trial_losses = np.zeros(trial_stop - trial_start, dtype=np.float64)

    stream_key = 0
    if secondary is not None:
        from repro.core.secondary import layer_stream_key

        stream_key = layer_stream_key(base_seed, layer.layer_id)

    for t in range(trial_start, trial_stop):  # line 3: for all b ∈ YET
        event_ids, _timestamps = yet.trial(t)
        k = event_ids.size

        multipliers = None
        if secondary is not None and k:
            # The kernel-identical draws for this trial's global
            # occurrence span: row = ELT position, column = occurrence.
            occ_lo = int(yet.offsets[t])
            multipliers = secondary.multipliers_for_span(
                stream_key, occ_lo, occ_lo + k, len(elts)
            )

        # Combined loss per event occurrence, accumulated across ELTs
        # (lines 4–14).  lox_d in the pseudocode.
        lox = [0.0] * k
        for c, (elt, elt_dict) in enumerate(zip(elts, elt_dicts)):  # line 4
            # Line 5–7: look up each event of the trial in this ELT.
            x = [elt_dict.get(int(event_id), 0.0) for event_id in event_ids]
            if multipliers is not None:
                # Secondary uncertainty: the looked-up mean loss becomes
                # a draw around the mean before financial terms apply.
                x = [
                    loss * float(multipliers[c, d])
                    for d, loss in enumerate(x)
                ]
            # Line 8–10: apply the ELT's financial terms per event loss.
            lx = [elt.terms.apply_scalar(loss) for loss in x]
            # Line 11–13: accumulate across ELTs into one loss/event.
            for d in range(k):
                lox[d] = lox[d] + lx[d]

        # Line 15–17: occurrence terms per event occurrence.
        for d in range(k):
            lox[d] = occurrence_term_scalar(lox[d], terms)

        # Line 18–20: running cumulative sum over the ordered events.
        for d in range(1, k):
            lox[d] = lox[d] + lox[d - 1]

        # Line 21–23: aggregate terms on the cumulative series.
        for d in range(k):
            lox[d] = aggregate_term_scalar(lox[d], terms)

        # Line 24–26: backward difference (lox_{-1} treated as 0).
        previous = 0.0
        for d in range(k):
            current = lox[d]
            lox[d] = current - previous
            previous = current

        # Line 27–29: the trial (year) loss lr.
        lr = 0.0
        for d in range(k):
            lr = lr + lox[d]
        trial_losses[t - trial_start] = lr

    return trial_losses


def aggregate_risk_analysis_reference(
    yet: YearEventTable,
    portfolio: Portfolio,
    secondary=None,
    secondary_seed=None,
) -> YearLossTable:
    """Run Algorithm 1 exactly as written (procedure ARA, lines 1–32).

    Parameters
    ----------
    yet:
        The Year Event Table (input 1).
    portfolio:
        Supplies the ELTs (input 2) and Layers (input 3).
    secondary:
        Optional :class:`~repro.core.secondary.SecondaryUncertainty` —
        the oracle then draws the same counter-based multipliers as the
        fused kernels, so seeded secondary runs cross-check end to end.
    secondary_seed:
        Seed of the multiplier streams (ignored without ``secondary``).

    Returns
    -------
    YearLossTable
        One aggregate (year) loss per layer per trial.
    """
    base_seed = 0
    if secondary is not None:
        from repro.core.secondary import resolve_secondary_seed

        base_seed = resolve_secondary_seed(secondary_seed)
    per_layer: Dict[int, np.ndarray] = {}
    for layer in portfolio.layers:  # line 2: for all a ∈ L
        per_layer[layer.layer_id] = reference_layer_losses(
            yet, portfolio, layer, secondary=secondary, base_seed=base_seed
        )
    return YearLossTable.from_dict(per_layer)
