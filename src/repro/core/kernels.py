"""Fused zero-copy kernels: Algorithm 1 directly on the ragged CSR arrays.

Why a second kernel path
------------------------
The paper's central lesson is that aggregate risk analysis is
memory-bound: every optimisation that won (direct access tables, chunked
shared-memory staging, reduced precision) cuts bytes moved per trial.
The legacy dense path (:mod:`repro.core.vectorized`) moves *more* bytes
than the problem requires: each batch pads the ragged YET to a
``(trials, events)`` matrix, then loops over ELTs doing one gather plus
several term-application temporaries each — a 15-ELT layer materialises
~45 full-size intermediates per batch.

This module is the fused alternative, selected with ``kernel="ragged"``
on any engine (``kernel="dense"`` keeps the legacy path):

* **no dense padding** — the kernel runs on the YET's CSR arrays
  (``event_ids``/``offsets``) directly, via zero-copy views from
  :meth:`repro.data.yet.YearEventTable.csr_block`;
* **one fused gather per layer** — a
  :class:`~repro.lookup.combined.StackedDirectTable` holds all of a
  layer's direct tables as rows of one ``(n_elts, catalog + 1)`` matrix,
  so ``table[:, ids]`` services every ELT in a single call;
* **in-place terms into pooled scratch** — financial terms broadcast
  over the gathered block in place, occurrence terms clamp the combined
  vector in place, and all working arrays come from a
  :class:`~repro.utils.bufpool.ScratchBufferPool` (allocate once, reuse
  every batch);
* **segment reduction instead of a padded row-sum** — per-trial totals
  come from ``np.add.reduceat`` over the CSR offsets;
* **occurrence chunking** — the gather runs over bounded occurrence
  chunks (the CPU mirror of the paper's shared-memory chunking), so peak
  scratch is ``n_elts x occ_chunk`` words rather than
  ``n_elts x n_occurrences``;
* **a batch autotuner** — :func:`autotune_batch_trials` sizes trial
  batches to a byte budget instead of defaulting to all-trials-at-once.

Choosing ``dense`` vs ``ragged``
--------------------------------
Prefer ``ragged`` when trials are ragged (dense padding wastes
``max/mean`` in both memory and arithmetic), when layers have many ELTs
(the fused gather and in-place terms remove per-ELT temporaries), or
when memory is tight (the autotuner plus pooling bound peak scratch).
The dense path remains useful as the bit-for-bit legacy baseline, for
the ``combined`` GPU variant study, and for workloads so small that
kernel choice is noise.  Both paths produce YLTs equal to the scalar
reference within float64 tolerance; the ``KERNEL-ABLATE`` experiment and
``benchmarks/test_kernel_fusion.py`` track the trajectory.

Non-direct lookup kinds (``sorted``/``hash``/``cuckoo``/``compressed``)
cannot be stacked into one matrix; for them the ragged path still runs —
per-ELT lookups over the *flat* CSR id array, combined in place — it
just forgoes the single fused gather.
"""

from __future__ import annotations

import os
from typing import Sequence

import numpy as np

from repro.backends import KernelBackend, resolve_backend
from repro.core.secondary import SECONDARY_TILE, SecondaryUncertainty
from repro.core.terms import (
    apply_aggregate_terms_cumulative,
    apply_occurrence_terms,
)
from repro.data.layer import LayerTerms, Portfolio
from repro.data.yet import YearEventTable
from repro.data.ylt import YearLossTable
from repro.lookup.base import LossLookup
from repro.lookup.combined import StackedDirectTable
from repro.lookup.factory import LookupCache, get_lookup_cache
from repro.utils.bufpool import ScratchBufferPool
from repro.utils.rng import SeedLike
from repro.utils.timer import (
    ACTIVITY_FINANCIAL,
    ACTIVITY_LAYER,
    ACTIVITY_LOOKUP,
    ActivityProfile,
)

KERNEL_DENSE = "dense"
KERNEL_RAGGED = "ragged"
KERNELS = (KERNEL_DENSE, KERNEL_RAGGED)
"""Kernel-path names accepted by engines and the high-level API."""

#: the default kernel path of every engine and the high-level API.
#: Ragged became the default once KERNEL-ABLATE confirmed parity with a
#: ~2-3x speedup and ~2.5x lower peak scratch across dtypes; ``dense``
#: remains selectable as the legacy baseline.
DEFAULT_KERNEL = KERNEL_RAGGED

#: default scratch budget of the batch autotuner (bytes)
DEFAULT_BATCH_BUDGET_BYTES = 64 * 2**20

#: fallback L2 budget when the cache hierarchy cannot be detected (1 MiB
#: — the ballpark per-core L2 of every x86/ARM server part of the last
#: decade).
FALLBACK_L2_CACHE_BYTES = 1 * 2**20

#: floor on the occurrence chunk (elements per ELT row): keeps each
#: fused-gather NumPy call large enough to amortise dispatch overhead.
MIN_OCC_CHUNK = 1_024

_DETECTED_L2: int | None = None


def get_l2_cache_bytes() -> int:
    """The occurrence-chunk byte budget: detected L2 size, overridable.

    Resolution order: the ``REPRO_L2_CACHE_BYTES`` environment variable
    (read every call, so tests and deployments can steer the autotuner
    without touching code; plain bytes or a ``K``/``M`` suffix, the same
    format sysfs uses — a malformed value raises rather than being
    silently ignored), then the per-core L2 data/unified cache size from
    sysfs (detected once and memoised), then
    :data:`FALLBACK_L2_CACHE_BYTES`.
    """
    override = os.environ.get("REPRO_L2_CACHE_BYTES")
    if override:
        nbytes = _parse_cache_size(override)
        if nbytes is None:
            raise ValueError(
                f"REPRO_L2_CACHE_BYTES={override!r} is not a byte count "
                "(expected an integer, optionally suffixed with K or M)"
            )
        return max(64 * 1024, nbytes)
    global _DETECTED_L2
    if _DETECTED_L2 is None:
        _DETECTED_L2 = _detect_l2_cache_bytes()
    return _DETECTED_L2


def _parse_cache_size(text: str) -> int | None:
    """Parse ``1048576`` / ``512K`` / ``1M`` into bytes (None if invalid)."""
    text = text.strip().upper()
    scale = 1
    if text.endswith("K"):
        scale, text = 1024, text[:-1]
    elif text.endswith("M"):
        scale, text = 1024 * 1024, text[:-1]
    try:
        nbytes = int(text) * scale
    except ValueError:
        return None
    return nbytes if nbytes > 0 else None


def _detect_l2_cache_bytes() -> int:
    """Read cpu0's level-2 data/unified cache size from sysfs."""
    base = "/sys/devices/system/cpu/cpu0/cache"
    try:
        for entry in sorted(os.listdir(base)):
            if not entry.startswith("index"):
                continue
            index = os.path.join(base, entry)
            try:
                with open(os.path.join(index, "level")) as f:
                    level = f.read().strip()
                with open(os.path.join(index, "type")) as f:
                    kind = f.read().strip()
                if level != "2" or kind not in ("Data", "Unified"):
                    continue
                with open(os.path.join(index, "size")) as f:
                    nbytes = _parse_cache_size(f.read())
            except OSError:
                continue
            if nbytes:
                return nbytes
    except OSError:
        pass
    return FALLBACK_L2_CACHE_BYTES


def max_occ_chunk(itemsize: int, l2_bytes: int | None = None) -> int:
    """Upper bound on the occurrence chunk for a working ``itemsize``.

    Half the L2 budget in words of ``itemsize`` — the single-ELT limit of
    :func:`occ_chunk_for`, and the derived replacement for the old fixed
    16K cap: a machine with a bigger L2 gets proportionally deeper
    chunks, a smaller one stays cache-resident.
    """
    l2 = get_l2_cache_bytes() if l2_bytes is None else l2_bytes
    return max(MIN_OCC_CHUNK, l2 // (2 * max(1, int(itemsize))))


def occ_chunk_for(
    n_elts: int, itemsize: int, l2_bytes: int | None = None
) -> int:
    """Occurrences per fused-gather chunk under the L2 cache budget.

    The staged block is ``n_elts x chunk`` words; it is sized to half the
    L2 budget (the other half is left for the combined vector, the
    multiplier block of the secondary path and the table lines the gather
    touches), clamped to ``[MIN_OCC_CHUNK, max_occ_chunk(...)]``.  This
    is the CPU mirror of the paper's shared-memory chunk: the reduction
    over the staged block re-reads what the gather just wrote, so keeping
    the block cache-resident is what makes the fusion pay.
    """
    l2 = get_l2_cache_bytes() if l2_bytes is None else l2_bytes
    chunk = (l2 // 2) // max(1, int(n_elts) * max(1, int(itemsize)))
    return max(MIN_OCC_CHUNK, min(max_occ_chunk(itemsize, l2), chunk))


def check_kernel(kernel: str) -> str:
    """Validate a kernel-path name (engine constructors call this)."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {KERNELS}")
    return kernel


# ----------------------------------------------------------------------
# Autotuning
# ----------------------------------------------------------------------
def autotune_batch_trials(
    n_trials: int,
    events_per_trial: float,
    n_elts: int,
    dtype: np.dtype | type = np.float64,
    budget_bytes: int = DEFAULT_BATCH_BUDGET_BYTES,
    secondary: bool = False,
    l2_bytes: int | None = None,
) -> int:
    """Trials per batch such that the kernel's scratch fits ``budget_bytes``.

    The ragged kernel's per-batch scratch is the combined loss vector
    (one word per occurrence), the fused gather chunk (``n_elts`` rows of
    :func:`occ_chunk_for` occurrences — charged exactly, at the same
    size the kernel will actually use, including the secondary path's
    rounding of the chunk to whole RNG tiles), the secondary path's
    multiplier block plus its per-tile uniform/index workspaces, and the
    per-trial totals.  Solving ``scratch(batch) <= budget`` replaces the
    dense path's default of all-trials-at-once with an explicit memory
    policy; the result is clamped to ``[1, n_trials]``.
    """
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1, got {n_trials}")
    if budget_bytes < 1:
        raise ValueError(f"budget_bytes must be >= 1, got {budget_bytes}")
    itemsize = np.dtype(dtype).itemsize
    events = max(1.0, float(events_per_trial))
    chunk = occ_chunk_for(n_elts, itemsize, l2_bytes=l2_bytes)
    if secondary:
        # The secondary kernel aligns its chunk to whole SECONDARY_TILEs
        # (never below one tile) and stages a multiplier block beside
        # the gather chunk, plus one float64 uniform and one intp index
        # workspace of a full tile per ELT row.
        chunk = max(1, chunk // SECONDARY_TILE) * SECONDARY_TILE
        fixed = n_elts * (
            chunk * itemsize * 2
            + SECONDARY_TILE * (8 + np.dtype(np.intp).itemsize)
        )
    else:
        fixed = n_elts * chunk * itemsize
    # Per trial: combined vector words + totals/year accumulators.
    per_trial = events * itemsize + 16
    batch = int(max(0, budget_bytes - fixed) / per_trial)
    return max(1, min(n_trials, batch))


def dense_intermediate_bytes(
    n_trials_batch: int, max_events: int, itemsize: int = 8, secondary: bool = False
) -> int:
    """Estimated peak intermediate bytes of one dense-path batch.

    Counts the full-size blocks simultaneously live at the legacy
    kernel's peak (inside a financial-term application): the padded
    ``(batch, max_events)`` id matrix (int32), the combined block, the
    gather result and two term-application temporaries — four blocks of
    the working itemsize plus the 4-byte ids.  With ``secondary``, the
    dense path additionally materialises a full-size float64 multiplier
    matrix and the scaled-gross temporary it produces.  The
    ``KERNEL-ABLATE`` experiments compare these estimates against the
    ragged path's *measured* pool peak.
    """
    block = int(n_trials_batch) * int(max_events)
    per_slot = 4 + 4 * int(itemsize)
    if secondary:
        # rng-sampled multipliers are always float64; `gross * multipliers`
        # adds one more block at the promoted itemsize.
        per_slot += 8 + max(8, int(itemsize))
    return block * per_slot


# ----------------------------------------------------------------------
# Segment reduction
# ----------------------------------------------------------------------
def segment_sums(
    values: np.ndarray, offsets: np.ndarray, out: np.ndarray | None = None
) -> np.ndarray:
    """Per-segment sums of a CSR-delimited flat array, in ``float64``.

    ``offsets`` delimits segment ``i`` as ``values[offsets[i]:offsets[i+1]]``;
    empty segments (including trailing ones whose start index equals
    ``values.size``) sum to exactly 0.0.  This replaces the dense path's
    padded row-sum: one ``np.add.reduceat`` over the offsets instead of
    touching ``n_trials x max_events`` slots.
    """
    offs = np.asarray(offsets)
    starts = offs[:-1]
    n_seg = starts.size
    if out is None:
        out = np.zeros(n_seg, dtype=np.float64)
    else:
        if out.shape != (n_seg,):
            raise ValueError(f"out shape {out.shape} != ({n_seg},)")
        out[:] = 0.0
    flat = np.asarray(values)
    if n_seg == 0 or flat.size == 0:
        return out
    # reduceat rejects indices == size (legal here: trailing empty
    # segments); restrict to in-bounds starts, which stay non-decreasing.
    valid = starts < flat.size
    out[valid] = np.add.reduceat(flat, starts[valid], dtype=np.float64)
    # For an empty segment reduceat yields values[start] — zero it.
    counts = np.diff(offs)
    out[counts == 0] = 0.0
    return out


# ----------------------------------------------------------------------
# Layer table selection (shared by run_ragged and every engine)
# ----------------------------------------------------------------------
def build_layer_tables(
    elts,
    catalog_size: int,
    lookup_kind: str,
    dtype: np.dtype | type,
    kernel: str,
    cache: LookupCache | None = None,
) -> tuple[list, StackedDirectTable | None, int]:
    """Cached lookup structures for one layer, per kernel path.

    Returns ``(lookups, stacked, table_bytes)``: the ragged path over
    direct tables uses one stacked matrix (``lookups`` empty), every
    other combination uses the per-ELT structures.  ``table_bytes`` is
    what an engine stages to a (simulated) device.  Builds go through
    ``cache`` (the process-wide lookup cache by default) so layers
    sharing ELTs — and repeated runs — build once.
    """
    cache = cache if cache is not None else get_lookup_cache()
    if kernel == KERNEL_RAGGED and lookup_kind == "direct":
        stacked = cache.stacked_table(elts, catalog_size, dtype=dtype)
        return [], stacked, stacked.nbytes
    lookups = cache.layer_lookups(
        elts, catalog_size=catalog_size, kind=lookup_kind, dtype=dtype
    )
    return lookups, None, sum(lk.nbytes for lk in lookups)


# ----------------------------------------------------------------------
# The fused kernel
# ----------------------------------------------------------------------
def _backend_can_dispatch(
    backend: KernelBackend,
    stacked: StackedDirectTable | None,
    work: np.dtype,
) -> bool:
    """Whether a non-oracle backend may take this call.

    Compiled backends only implement the stacked-direct path, and only
    when the working dtype *is* the table dtype — the float32 contract
    of PR 1 (float32 tables run pure float32 arithmetic) must survive
    dispatch, so a mismatch falls back to the oracle rather than
    letting a backend silently promote.
    """
    return (
        backend.name != "numpy"
        and stacked is not None
        and stacked.dtype == work
    )


def _fill_combined(
    ids: np.ndarray,
    lookups: Sequence[LossLookup] | None,
    stacked: StackedDirectTable | None,
    combined: np.ndarray,
    profile: ActivityProfile,
    pool: ScratchBufferPool,
    backend: KernelBackend | None = None,
) -> None:
    """Fill ``combined`` with per-occurrence losses summed across ELTs.

    Steps 1–2 of Algorithm 1 (gather + financial terms), the layer-term-
    independent prefix shared by every candidate layer over the same ELT
    set — which is exactly why it is split out: the quote service caches
    this vector and re-runs only the finish per candidate.

    ``backend`` (an already-resolved :class:`KernelBackend`) may service
    the stacked path in one compiled pass; a decline — or any
    non-stacked/mismatched-dtype call — runs the numpy oracle below.
    The compiled pass is charged to the lookup activity (the gather
    dominates it, and the fused call is indivisible).
    """
    n_occ = ids.size
    if (
        backend is not None
        and _backend_can_dispatch(backend, stacked, combined.dtype)
    ):
        with profile.track(ACTIVITY_LOOKUP):
            if backend.fill_combined(ids, stacked, combined):
                return
    if stacked is not None:
        # Fused path: chunked gather over all ELTs at once, terms
        # broadcast in place, rows summed into the combined vector.
        tdtype = stacked.dtype
        chunk = occ_chunk_for(stacked.n_elts, tdtype.itemsize)
        gross = pool.take((stacked.n_elts, min(chunk, max(n_occ, 1))), tdtype)
        try:
            for lo in range(0, n_occ, chunk):
                hi = min(lo + chunk, n_occ)
                block = gross[:, : hi - lo]
                with profile.track(ACTIVITY_LOOKUP):
                    stacked.gather(ids[lo:hi], out=block)
                with profile.track(ACTIVITY_FINANCIAL):
                    stacked.apply_terms_inplace(block)
                    np.sum(block, axis=0, out=combined[lo:hi])
        finally:
            pool.give(gross)
    else:
        # Fallback combine for non-stackable lookup kinds: still no
        # dense padding — per-ELT lookups run over the flat id array.
        combined[:] = 0.0
        work = combined.dtype
        for lookup in lookups or ():
            with profile.track(ACTIVITY_LOOKUP):
                gross_flat = lookup.lookup(ids)
            with profile.track(ACTIVITY_FINANCIAL):
                net = lookup.terms.apply(gross_flat)
                combined += net.astype(work, copy=False)


def _fill_combined_secondary(
    ids: np.ndarray,
    lookups: Sequence[LossLookup] | None,
    stacked: StackedDirectTable | None,
    combined: np.ndarray,
    uncertainty: SecondaryUncertainty,
    stream_key: int,
    occ_base: int,
    profile: ActivityProfile,
    pool: ScratchBufferPool,
) -> None:
    """:func:`_fill_combined` with per-(occurrence, ELT) multiplier draws.

    Multipliers are sampled into pooled scratch beside the gathered
    block, addressed by *global* occurrence index (``occ_base`` +
    offset), so the filled vector is invariant to how callers batch or
    chunk the occurrence space.
    """
    n_occ = ids.size
    work = combined.dtype
    n_elts = stacked.n_elts if stacked is not None else len(lookups or ())
    tdtype = stacked.dtype if stacked is not None else work
    table = uncertainty.quantile_table(dtype=tdtype)
    # Round the occurrence chunk to whole RNG tiles and align chunk
    # boundaries to *global* tile edges: every tile is then regenerated
    # at most once per batch instead of once per straddling chunk.
    chunk = occ_chunk_for(n_elts, tdtype.itemsize)
    chunk_tiles = max(1, chunk // SECONDARY_TILE)
    chunk = chunk_tiles * SECONDARY_TILE
    width = min(chunk, max(n_occ, 1))
    mult = pool.take((n_elts, width), tdtype)
    gross = pool.take((n_elts, width), tdtype) if stacked is not None else None
    try:
        if combined.size and stacked is None:
            combined[:] = 0.0
        lo = 0
        while lo < n_occ:
            g = occ_base + lo
            aligned_stop = (g // SECONDARY_TILE + chunk_tiles) * SECONDARY_TILE
            hi = min(n_occ, aligned_stop - occ_base)
            with profile.track(ACTIVITY_FINANCIAL):
                mblock = uncertainty.multipliers_for_span(
                    stream_key,
                    occ_base + lo,
                    occ_base + hi,
                    n_elts,
                    out=mult[:, : hi - lo],
                    table=table,
                    pool=pool,
                )
            if stacked is not None:
                block = gross[:, : hi - lo]
                with profile.track(ACTIVITY_LOOKUP):
                    stacked.gather(ids[lo:hi], out=block)
                with profile.track(ACTIVITY_FINANCIAL):
                    np.multiply(block, mblock, out=block)
                    stacked.apply_terms_inplace(block)
                    np.sum(block, axis=0, out=combined[lo:hi])
            else:
                # Fallback for non-stackable lookup kinds: per-ELT
                # lookups over the flat chunk, each row scaled by its
                # multiplier stream before the ELT's terms apply.
                for row, lookup in enumerate(lookups or ()):
                    with profile.track(ACTIVITY_LOOKUP):
                        gross_flat = lookup.lookup(ids[lo:hi])
                    with profile.track(ACTIVITY_FINANCIAL):
                        scaled = gross_flat * mblock[row]
                        net = lookup.terms.apply(scaled)
                        combined[lo:hi] += net.astype(work, copy=False)
            lo = hi
    finally:
        pool.give(gross)
        pool.give(mult)


def combined_occurrence_losses(
    event_ids: np.ndarray,
    lookups: Sequence[LossLookup] | None,
    stacked: StackedDirectTable | None = None,
    dtype: np.dtype | type = np.float64,
    out: np.ndarray | None = None,
    profile: ActivityProfile | None = None,
    pool: ScratchBufferPool | None = None,
    secondary: SecondaryUncertainty | None = None,
    stream_key: int = 0,
    occ_base: int = 0,
    backend: KernelBackend | str | None = None,
) -> np.ndarray:
    """Per-occurrence combined losses (steps 1–2) for a flat id block.

    The layer-term-independent prefix of the fused kernel, exposed so
    the :class:`~repro.pricing.realtime.QuoteService` can compute it
    once per ELT set and finish many candidate layers against the same
    vector (:func:`finish_layer_losses`).  ``out`` (shape ``(n_occ,)``
    in the working dtype) avoids allocating — the service passes slices
    of its cached full-YET vector, one per plan task.

    ``backend`` selects the kernel backend for the stacked path (see
    :func:`repro.backends.resolve_backend`); the secondary path always
    runs the oracle — its counter-based Philox streams are pinned
    bit-for-bit and are not worth re-deriving in a compiled kernel.
    """
    profile = profile if profile is not None else ActivityProfile()
    pool = pool if pool is not None else ScratchBufferPool()
    ids = np.asarray(event_ids)
    if ids.ndim != 1:
        raise ValueError(f"event_ids must be 1-D, got shape {ids.shape}")
    work = np.dtype(dtype)
    if out is None:
        out = np.empty(ids.size, dtype=work)
    elif out.shape != (ids.size,):
        raise ValueError(f"out shape {out.shape} != ({ids.size},)")
    if secondary is not None:
        _fill_combined_secondary(
            ids, lookups, stacked, out, secondary, stream_key,
            occ_base, profile, pool,
        )
    else:
        _fill_combined(
            ids, lookups, stacked, out, profile, pool,
            backend=resolve_backend(backend),
        )
    return out


def finish_layer_losses(
    combined: np.ndarray,
    offsets: np.ndarray,
    layer_terms: LayerTerms,
    profile: ActivityProfile | None = None,
) -> np.ndarray:
    """Steps 3–4: layer terms over an already-combined loss vector.

    **Mutates ``combined`` in place** (the occurrence clamp) — callers
    finishing against a cached vector must pass a scratch copy.  Returns
    the per-trial year losses in ``float64``; bit-identical to what the
    fused kernel produces, because it *is* the fused kernel's finishing
    pass.
    """
    profile = profile if profile is not None else ActivityProfile()
    with profile.track(ACTIVITY_LAYER):
        apply_occurrence_terms(combined, layer_terms, out=combined)
        totals = segment_sums(combined, offsets)
        year = apply_aggregate_terms_cumulative(totals, layer_terms, out=totals)
    return year


def layer_trial_batch_ragged(
    event_ids: np.ndarray,
    offsets: np.ndarray,
    lookups: Sequence[LossLookup] | None,
    layer_terms: LayerTerms,
    stacked: StackedDirectTable | None = None,
    profile: ActivityProfile | None = None,
    dtype: np.dtype | type = np.float64,
    pool: ScratchBufferPool | None = None,
    backend: KernelBackend | str | None = None,
) -> np.ndarray:
    """Steps 1–4 of Algorithm 1 over a ragged CSR trial block, fused.

    Parameters
    ----------
    event_ids, offsets:
        CSR arrays of the trial block (``offsets[i]:offsets[i+1]``
        delimits trial ``i``); typically views from
        :meth:`~repro.data.yet.YearEventTable.csr_block`.
    lookups:
        Per-ELT lookup structures — the fallback combine path for
        non-direct kinds.  Ignored when ``stacked`` is given.
    layer_terms:
        The layer's occurrence/aggregate XL terms.
    stacked:
        The layer's :class:`~repro.lookup.combined.StackedDirectTable`;
        when present, losses come from one fused gather per occurrence
        chunk with terms applied in place.
    dtype:
        Working precision of the accumulation.
    pool:
        Scratch-buffer pool for working arrays (a private throwaway pool
        is used if omitted — pass one to reuse buffers across batches).
    backend:
        Kernel backend for the stacked path (name, instance, or None →
        the :func:`repro.backends.resolve_backend` precedence).  A
        compiled backend runs all four steps in one pass over the CSR
        block; a decline — or a non-stacked layer, or a working dtype
        differing from the table's — runs the numpy oracle below.

    Returns
    -------
    numpy.ndarray
        1-D ``(n_trials,)`` year losses in ``float64``.
    """
    profile = profile if profile is not None else ActivityProfile()
    pool = pool if pool is not None else ScratchBufferPool()
    ids = np.asarray(event_ids)
    offs = np.asarray(offsets)
    if ids.ndim != 1:
        raise ValueError(f"event_ids must be 1-D, got shape {ids.shape}")
    if offs.ndim != 1 or offs.size < 1:
        raise ValueError("offsets must be 1-D with at least one entry")
    work = np.dtype(dtype)
    n_occ = ids.size

    backend_obj = resolve_backend(backend)
    if _backend_can_dispatch(backend_obj, stacked, work):
        with profile.track(ACTIVITY_LOOKUP):
            year = backend_obj.layer_losses(ids, offs, stacked, layer_terms)
        if year is not None:
            return np.asarray(year, dtype=np.float64)

    combined = pool.take((n_occ,), work)
    try:
        _fill_combined(ids, lookups, stacked, combined, profile, pool)
        year = finish_layer_losses(combined, offs, layer_terms, profile=profile)
    finally:
        pool.give(combined)
    return year


def layer_trial_batch_secondary_ragged(
    event_ids: np.ndarray,
    offsets: np.ndarray,
    lookups: Sequence[LossLookup] | None,
    layer_terms: LayerTerms,
    uncertainty: SecondaryUncertainty,
    stream_key: int,
    stacked: StackedDirectTable | None = None,
    occ_base: int = 0,
    profile: ActivityProfile | None = None,
    dtype: np.dtype | type = np.float64,
    pool: ScratchBufferPool | None = None,
    backend: KernelBackend | str | None = None,
) -> np.ndarray:
    """:func:`layer_trial_batch_ragged` with per-(occurrence, ELT) draws.

    ``backend`` is accepted for call-site uniformity but the secondary
    path always runs the numpy oracle: its counter-based Philox streams
    are pinned bit-for-bit and decomposition-invariant, properties a
    compiled re-derivation would have to reprove; the fallback *is* the
    contract here.

    The fused secondary-uncertainty kernel: damage-ratio multipliers are
    sampled **directly into pooled scratch** beside the gathered loss
    block (one Philox-counter inverse-transform draw per pair — see
    :meth:`SecondaryUncertainty.multipliers_for_span`) and applied inside
    the stacked-gather occurrence chunk, before the in-place financial
    terms.  No dense ``(trials, events)`` matrix — of losses *or* of
    multipliers — is ever materialised.

    Parameters beyond :func:`layer_trial_batch_ragged`'s
    ----------------------------------------------------
    uncertainty:
        The Beta damage-ratio model.
    stream_key:
        Base key of this layer's multiplier stream
        (:func:`~repro.core.secondary.layer_stream_key`).
    occ_base:
        Global index of ``event_ids[0]`` in the full YET's flat
        occurrence array.  Multipliers are addressed by *global*
        occurrence index, so any decomposition of the trial space — engine
        chunks, trial batches, occurrence chunks — reproduces identical
        draws per (occurrence, ELT) pair.
    """
    profile = profile if profile is not None else ActivityProfile()
    pool = pool if pool is not None else ScratchBufferPool()
    ids = np.asarray(event_ids)
    offs = np.asarray(offsets)
    if ids.ndim != 1:
        raise ValueError(f"event_ids must be 1-D, got shape {ids.shape}")
    if offs.ndim != 1 or offs.size < 1:
        raise ValueError("offsets must be 1-D with at least one entry")
    if occ_base < 0:
        raise ValueError(f"occ_base must be >= 0, got {occ_base}")
    work = np.dtype(dtype)
    n_occ = ids.size

    combined = pool.take((n_occ,), work)
    try:
        _fill_combined_secondary(
            ids,
            lookups,
            stacked,
            combined,
            uncertainty,
            stream_key,
            occ_base,
            profile,
            pool,
        )
        year = finish_layer_losses(combined, offs, layer_terms, profile=profile)
    finally:
        pool.give(combined)
    return year


def run_ragged(
    yet: YearEventTable,
    portfolio: Portfolio,
    catalog_size: int,
    lookup_kind: str = "direct",
    dtype: np.dtype | type = np.float64,
    batch_trials: int | None = None,
    profile: ActivityProfile | None = None,
    budget_bytes: int = DEFAULT_BATCH_BUDGET_BYTES,
    cache: LookupCache | None = None,
    pool: ScratchBufferPool | None = None,
    secondary: SecondaryUncertainty | None = None,
    secondary_seed: SeedLike = None,
    backend: KernelBackend | str | None = None,
) -> YearLossTable:
    """Full analysis with the fused ragged kernel, batched over trials.

    ``batch_trials=None`` (the default) invokes
    :func:`autotune_batch_trials` with ``budget_bytes`` — unlike the
    dense path, the default is a memory policy, not all-trials-at-once.
    Lookup builds go through ``cache`` (the process-wide
    :func:`~repro.lookup.factory.get_lookup_cache` by default) so layers
    sharing ELTs — and repeated runs — build each table once.

    Batches are double-buffered through
    :func:`~repro.utils.bufpool.stream_batches`: a background thread
    fetches batch ``N + 1``'s CSR slice and gather indices while batch
    ``N`` reduces — the paper's overlap of chunk fetch with compute, at
    host-batch granularity.  For the in-memory YET the fetch is
    zero-copy (no extra scratch); sources that must stage reads borrow
    from the streamer's two slot pools.

    ``secondary`` switches every batch to the fused secondary-uncertainty
    kernel (:func:`layer_trial_batch_secondary_ragged`).  Multiplier
    draws are keyed by ``secondary_seed`` and the *global* occurrence
    index, so results are reproducible for a given seed and invariant to
    batch size.

    Since the plan/execute split this is a thin veneer over the shared
    decomposition machinery: a single-slot
    :class:`~repro.plan.planner.Planner` plan (which owns the autotune
    policy) executed by :func:`~repro.plan.execute.execute_plan_cpu` —
    the same path every CPU engine runs.
    """
    # Deferred: repro.plan imports this module for the shared policy
    # helpers (autotune, occ_chunk_for), so the import cannot be at
    # module scope.
    from repro.plan.execute import execute_plan_cpu
    from repro.plan.planner import EngineCapabilities, Planner
    from repro.plan.scheduler import Scheduler

    cache = cache if cache is not None else get_lookup_cache()
    caps = EngineCapabilities(
        engine="run-ragged",
        n_slots=1,
        kernel=KERNEL_RAGGED,
        batch_trials=(
            None if batch_trials is None else max(1, int(batch_trials))
        ),
        budget_bytes=budget_bytes,
        dtype=np.dtype(dtype).str,
        secondary=secondary is not None,
    )
    plan = Planner().plan(yet, portfolio, caps)
    return execute_plan_cpu(
        yet,
        portfolio,
        catalog_size,
        plan,
        lookup_kind=lookup_kind,
        dtype=dtype,
        secondary=secondary,
        secondary_seed=secondary_seed,
        profile=profile,
        scheduler=Scheduler(max_workers=1),
        pools=None if pool is None else [pool],
        cache=cache,
        backend=backend,
    )
